"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so that offline environments without the ``wheel`` package can still do
an editable install through the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
