#!/usr/bin/env python3
"""Section VI schemes: vectorised and GPU-warp index recovery.

After collapsing, consecutive ``pc`` values map to original index tuples
that are *not* related by a simple innermost increment (they may hop across
rows of the triangle), so vector lanes and GPU warp threads cannot just add
one to ``j``.  The paper's answer is to pay the costly closed-form recovery
once per thread and to materialise the following tuples with the original
loop-nest incrementation.  This example runs both schemes on the correlation
nest and reports how many costly recoveries and cheap increments each one
performs.

Run with::

    python examples/vectorization_and_gpu.py [N]
"""

import sys

from repro import collapse
from repro.analysis import format_table
from repro.ir import Loop, LoopNest, enumerate_iterations
from repro.core import vectorize_collapsed, warp_schedule
from repro.openmp.schedule import static_schedule


def main(n: int = 64) -> None:
    nest = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"], name="correlation"
    )
    collapsed = collapse(nest)
    values = {"N": n}
    total = collapsed.total_iterations(values)
    original = list(enumerate_iterations(nest, values))
    print(f"correlation, N={n}: {total} collapsed iterations\n")

    print("=== Section VI-A: vectorised execution (vlength = 8, 4 threads) ===")
    rows = []
    covered = []
    for chunk in static_schedule(total, 4):
        execution = vectorize_collapsed(collapsed, values, chunk.first, chunk.last, vlength=8, thread=chunk.thread)
        covered.extend(execution.iterations())
        rows.append(
            [
                f"thread {chunk.thread}",
                str(execution.stats.iterations),
                str(len(execution.bodies)),
                str(execution.stats.costly_recoveries),
                str(execution.stats.increments),
            ]
        )
    assert covered == original, "vector lanes must cover the original iterations in order"
    print(format_table(["thread", "iterations", "vector bodies", "costly recoveries", "increments"], rows))
    print("every thread paid exactly one costly recovery; all lanes covered the domain — OK\n")

    print("=== Section VI-B: GPU warp execution (warp of 32 threads) ===")
    executions = warp_schedule(collapsed, values, warp_size=32)
    visited = sorted(it for execution in executions for it in execution.iterations)
    assert visited == sorted(original), "warp threads must cover the whole domain"
    busiest = max(executions, key=lambda e: len(e.iterations))
    rows = [
        ["warp size", "32"],
        ["iterations per thread (max)", str(len(busiest.iterations))],
        ["costly recoveries per thread", "1"],
        ["increments per executed iteration", str(busiest.warp_size)],
    ]
    print(format_table(["quantity", "value"], rows))
    print("consecutive pc values go to consecutive warp threads (memory coalescing), "
          "and each thread strides by the warp size with cheap increments — OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
