#!/usr/bin/env python3
"""Quickstart: collapse the paper's motivating example (Section II).

The script walks through the whole pipeline on the correlation nest of
Fig. 1:

1. parse the C-like source of the non-rectangular nest,
2. build its ranking Ehrhart polynomial (Section III),
3. invert it into closed-form index recoveries (Section IV),
4. print the generated OpenMP C code (Figures 3 and 4),
5. execute the generated Python code and check it visits exactly the same
   iterations, in the same order, as the original nest.

Run with::

    python examples/quickstart.py [N]
"""

import sys

from repro import (
    collapse,
    compile_collapsed_loop,
    generate_openmp_chunked,
    generate_openmp_collapsed,
    parse_loop_nest,
)
from repro.ir import enumerate_iterations

CORRELATION_SOURCE = """
#pragma omp parallel for private(j, k) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++)
    S(i, j);
"""


def main(n: int = 12) -> None:
    print("=== input loop nest (Fig. 1, outer two loops) ===")
    nest, pragma = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
    print(nest.source())
    print(f"\nOpenMP pragma found: schedule={pragma.schedule!r}, collapse={pragma.collapse}")

    print("\n=== collapse (Sections III and IV) ===")
    collapsed = collapse(nest)
    print(collapsed.describe())
    print(f"\ntrip count for N={n}: {collapsed.total_iterations({'N': n})}")

    print("\n=== a few recovered iterations ===")
    for pc in (1, 2, n - 1, n, collapsed.total_iterations({"N": n})):
        print(f"  pc={pc:>4} -> (i, j) = {collapsed.recover_indices(pc, {'N': n})}")

    print("\n=== generated OpenMP C, naive recovery (Fig. 3) ===")
    print(generate_openmp_collapsed(collapsed))

    print("=== generated OpenMP C, reduced-overhead recovery (Fig. 4) ===")
    print(generate_openmp_chunked(collapsed))

    print("=== executing the generated Python code ===")
    run = compile_collapsed_loop(collapsed)
    visited = []
    run(lambda i, j: visited.append((i, j)), N=n)
    reference = list(enumerate_iterations(nest, {"N": n}))
    assert visited == reference, "collapsed execution diverged from the original order!"
    print(f"collapsed execution visited all {len(visited)} iterations in the original order — OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
