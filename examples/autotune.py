#!/usr/bin/env python3
"""Online autotuning: the measure→schedule loop, cold to warm.

Every run of the runtime banks its measurements — whole-run elapsed and
per-chunk wall-clock, measured inside the executing substrate — in the
persistent profile store (``$REPRO_PROFILE_DIR``).  This example closes
the loop twice:

1. **Backend choice** (``backend="auto"``): on a cold store, auto
   *explores* each viable substrate (hybrid/native/engine, as the machine
   permits) one run at a time; once every candidate has a timing it
   *exploits* the measured-fastest.  We print the resolved backend after
   each run and watch the decision settle.
2. **Profile-guided re-cutting**: a rectangular nest runs a Python
   ``iteration_op`` whose cost is heavy in the first quarter of the
   ``i`` range.  The Ehrhart cost model sees a rectangular nest —
   constant per-iteration work — so the cold ``adaptive`` cut is an
   equal split.  After one measured run the adaptive policy re-cuts from
   the banked per-chunk seconds: the expensive region gets finer chunks,
   the cheap region coarser ones.

The store persists across processes: re-running this script starts warm
(delete the store directory, or set ``REPRO_PROFILE_DIR`` to a fresh
path, to see the cold behaviour again).

Run with::

    python examples/autotune.py [N]
"""

import sys
import time

import numpy as np

from repro.ir import Loop, LoopNest
from repro.kernels import get_kernel, run_original
from repro.native import native_available
from repro.runtime import (
    RuntimeSession,
    default_profile_store,
    profile_key,
    resolve_auto_backend,
)


def skewed_op(data, indices, parameter_values):
    """Per-iteration work the analytic model cannot see: the first quarter
    of the ``i`` range spins ~25x longer than the rest."""
    i, j = indices
    spins = 25 if i <= parameter_values["M"] // 4 else 1
    acc = 0.0
    for _ in range(8 * spins):
        acc += (i * 31 + j) % 7
    return acc


def main(n: int = 64) -> None:
    kernel = get_kernel("utma")
    values = {"N": n}
    expected = run_original(kernel, values)
    key = profile_key(kernel, values)
    store = default_profile_store()
    print(f"=== backend='auto' on utma N={n} ===")
    print(f"profile store: {store.root}")
    print(f"C compiler available: {native_available()}")
    print(f"store entry warm: {bool(store.load(key))}")

    # ---- 1. explore, then exploit ------------------------------------ #
    with RuntimeSession(workers=2) as session:
        for round_number in range(1, 5):
            started = time.perf_counter()
            result = session.run(kernel, values, backend="auto")
            elapsed = time.perf_counter() - started
            assert np.allclose(result["c"], expected["c"], atol=1e-9)
            resolved = resolve_auto_backend(kernel, values)
            print(f"run {round_number}: {elapsed * 1e3:7.2f} ms   "
                  f"(next auto run would pick: {resolved})")

    profiles = store.load(key)
    print("measured medians:")
    for backend, profile in sorted(profiles.items()):
        print(f"  {backend:>7}: {profile.median_elapsed * 1e3:7.2f} ms "
              f"over {profile.runs} run(s)")

    # ---- 2. profile-guided re-cutting -------------------------------- #
    print(f"\n=== profile-guided adaptive re-cut (skewed nest, M={n}) ===")
    nest = LoopNest(
        [Loop.make("i", 0, "M"), Loop.make("j", 0, "M")],
        parameters=["M"],
        name="autotune_example_skew",
    )
    with RuntimeSession(workers=2) as session:
        plan = session.plan_for(nest, {"M": n}, schedule="adaptive",
                                iteration_op=skewed_op)
        cold = plan.chunks(2)
        session.execute(plan)       # measures, and banks the chunk seconds
        warm = plan.chunks(2)       # re-cut from the measured profile
    print(f"cold (analytic) chunk sizes: {[c.size for c in cold]}")
    print(f"warm (measured) chunk sizes: {[c.size for c in warm]}")
    if [c.size for c in warm] != [c.size for c in cold]:
        print("the measured skew re-cut the schedule: finer chunks where the "
              "work is, coarser where it is not")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
