#!/usr/bin/env python3
"""Hybrid native chunk dispatch: adaptive scheduling at compiled speed.

The paper's promise is *both* halves at once — a perfectly balanced
schedule over the collapsed ``pc`` loop *and* compiled-speed iteration.
This example walks the fusion on the imbalanced lower-triangular matrix
product ``ltmp`` (whose non-collapsed inner ``k`` loop leaves per-``pc``
work growing with ``i``):

1. run the kernel on the pure-Python persistent engine
   (``backend="engine"``, cost-model ``adaptive`` chunks),
2. run the whole-range compiled C/OpenMP backend (``backend="native"``,
   ``schedule(static)`` — C speed, equal-iteration imbalance),
3. run the hybrid backend (``backend="hybrid"``): the same adaptive
   chunks, each executed by an engine worker through one foreign call
   into the translation unit's serial ``repro_run_range``,
4. show that a nest *parsed from C-like text* with an array-assignment
   statement carries its own native body.

Machines without a C compiler still run everything: step 2 is skipped and
step 3 transparently falls back to the engine — the printed results stay
element-wise identical either way.

Run with::

    python examples/hybrid_backend.py [N]
"""

import sys
import time

import numpy as np

from repro.ir import native_body, parse_loop_nest
from repro.kernels import get_kernel, run_original
from repro.native import NativeUnavailable, native_available
from repro.runtime import RuntimeSession


def main(n: int = 200) -> None:
    kernel = get_kernel("ltmp")
    values = {"N": n}
    expected = run_original(kernel, values)
    print(f"=== ltmp N={n}: {kernel.collapsed().total_iterations(values)} collapsed iterations ===")
    print(f"C compiler available: {native_available()}")

    with RuntimeSession(workers=2) as session:
        started = time.perf_counter()
        engine = session.run(kernel, values, schedule="adaptive")
        print(f"engine (Python chunks, adaptive): {time.perf_counter() - started:.3f}s")

        try:
            started = time.perf_counter()
            native = session.run(kernel, values, backend="native")
            print(f"native (whole range, one OpenMP call): {time.perf_counter() - started:.3f}s")
            assert np.allclose(native["c"], expected["c"], atol=1e-9)
        except NativeUnavailable as error:
            print(f"native backend unavailable here ({error}); skipping the whole-range run")

        started = time.perf_counter()
        hybrid = session.run(kernel, values, backend="hybrid", schedule="adaptive")
        print(f"hybrid (adaptive chunks, native execution): {time.perf_counter() - started:.3f}s")
        started = time.perf_counter()
        hybrid = session.run(kernel, values, backend="hybrid", schedule="adaptive")
        print(f"hybrid again (warm plan + warm pool):       {time.perf_counter() - started:.3f}s")

    assert np.allclose(engine["c"], expected["c"], atol=1e-9)
    assert np.allclose(hybrid["c"], expected["c"], atol=1e-9)
    print("hybrid backend demo: results identical across backends")

    # --- parsed nests carry their own native bodies ------------------- #
    nest, _ = parse_loop_nest(
        """
        #pragma omp parallel for collapse(2) schedule(static)
        for (i = 0; i < N; i++)
          for (j = i; j < N; j++)
            visits(i, j) += 1.0;
        """,
        parameters=["N"],
        name="triangle_text",
    )
    body, arrays = native_body(nest)
    print(f"\n=== parsed nest '{nest.name}': native body {body!r} over arrays {list(arrays)} ===")
    data = {"visits": np.zeros((16, 16))}
    with RuntimeSession(workers=2) as session:
        try:
            result = session.run(nest, {"N": 16}, data=data, backend="native")
            print(f"parsed nest ran natively: {sum(result.results)} iterations, "
                  f"{result.workers} OpenMP threads")
        except NativeUnavailable:
            print("no compiler: the parsed nest would need the engine with Python ops")
    assert data["visits"].sum() in (0.0, 16 * 17 / 2)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
