#!/usr/bin/env python3
"""Collapsing Pluto-transformed loops: skewed stencils and tiled triangles.

The paper applies its tool to nests that the Pluto compiler has already
transformed, because those transformations (skewing, tiling) routinely
produce non-rectangular loops.  This example regenerates both situations
with the Pluto-lite transforms of :mod:`repro.transforms`:

1. a 1-d stencil whose inner loop is skewed by the time loop — the resulting
   rhomboid is collapsed and validated;
2. the correlation triangle tiled 32x32 — the triangular *tile* domain, with
   its partially-full boundary tiles, is collapsed and the three schedules of
   Fig. 9 are compared on it.

Run with::

    python examples/pluto_tiled_and_skewed.py [N]
"""

import sys

from repro import collapse, generate_openmp_chunked
from repro.analysis import format_table, gain
from repro.ir import Loop, LoopNest, Statement, enumerate_iterations
from repro.kernels import get_tiled_kernel
from repro.openmp import ScheduleKind, simulate_collapsed_static, simulate_outer_parallel
from repro.transforms import skew

THREADS = 12


def skewed_stencil_demo() -> None:
    print("=== 1. skewing a stencil (wavefront parallelism) ===")
    nest = LoopNest(
        [Loop.make("t", 0, "T"), Loop.make("x", 1, "N - 1")],
        statements=[Statement("update")],
        parameters=["T", "N"],
        name="stencil",
    )
    print("original nest:")
    print(nest.source())
    skewed = skew(nest, target="x", source="t", factor=1)
    print("\nafter skewing x by t (Pluto-style wavefront):")
    print(skewed.source())

    collapsed = collapse(skewed, 2)
    values = {"T": 8, "N": 12}
    assert collapsed.validate(values)
    print("\ncollapsed trip count:", collapsed.total_polynomial)
    print("first iterations:", [collapsed.recover_indices(pc, values) for pc in range(1, 6)])
    print("matches the original order:", list(enumerate_iterations(skewed, values))[:5])


def tiled_correlation_demo(n: int) -> None:
    print("\n=== 2. collapsing the tile loops of the tiled correlation ===")
    tiled = get_tiled_kernel("correlation_tiled")
    values = {"N": n}
    tile_values = tiled.tile_parameters(values)
    print(f"tile size {tiled.tiled.tile_size}, tile domain parameters: {tile_values}")
    print(tiled.tile_nest.source())

    collapsed = tiled.collapsed()
    print("\ncollapsed tile loop:")
    print(collapsed.describe())
    print("\ngenerated OpenMP C for the tile loops:")
    print(generate_openmp_chunked(collapsed))

    static = simulate_outer_parallel(
        tiled.tile_nest, tile_values, THREADS, ScheduleKind.STATIC,
        work_function=tiled.outer_work_function(values),
    )
    dynamic = simulate_outer_parallel(
        tiled.tile_nest, tile_values, THREADS, ScheduleKind.DYNAMIC, chunk_size=1,
        work_function=tiled.outer_work_function(values),
    )
    ours = simulate_collapsed_static(
        collapsed, tile_values, THREADS, work_function=tiled.work_function(values)
    )
    rows = [
        ["schedule(static) on tile rows", f"{static.makespan:.0f}", "-"],
        ["schedule(dynamic) on tile rows", f"{dynamic.makespan:.0f}", f"{gain(dynamic.makespan, ours.makespan):+.1%} gain for collapsing"],
        ["collapsed tile loops, static", f"{ours.makespan:.0f}", f"{gain(static.makespan, ours.makespan):+.1%} gain vs static"],
    ]
    print(format_table(["configuration", "simulated time", "note"], rows, title=f"tiled correlation, N={n}, {THREADS} threads"))


def main(n: int = 400) -> None:
    skewed_stencil_demo()
    tiled_correlation_demo(n)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
