#!/usr/bin/env python3
"""Triangular-matrix workloads: utma and ltmp (Section VII's handwritten programs).

The example reproduces, at laptop scale, the story the paper tells about its
two handwritten kernels:

* ``utma`` (upper-triangular matrix add) — the whole nest is collapsed; the
  collapsed static schedule balances the triangle perfectly while the
  original static schedule leaves the first thread with twice the work.
* ``ltmp`` (lower-triangular matrix product) — the inner reduction loop
  cannot be collapsed; the collapsed loop keeps some imbalance and the
  dynamic schedule wins (the one negative bar of Fig. 9).

The numerical results of the collapsed executions are checked against the
original loop order and a vectorised NumPy formula before anything is timed.

Run with::

    python examples/triangular_matrix_operations.py [N]
"""

import sys

from repro.analysis import GainRow, format_table, iteration_distribution, load_balance_report
from repro.kernels import get_kernel, verify_kernel
from repro.openmp import ScheduleKind, simulate_collapsed_static, simulate_outer_parallel

THREADS = 12


def analyse(name: str, n: int) -> GainRow:
    kernel = get_kernel(name)
    values = {"N": n}

    print(f"\n=== {name}: {kernel.description} ===")
    print(kernel.nest.source())

    print("\ncorrectness: original order == collapsed chunks == NumPy reference ...", end=" ")
    ok = verify_kernel(kernel, {"N": min(n, 120)}, threads=THREADS)
    print("OK" if ok else "FAILED")
    if not ok:
        raise SystemExit(1)

    distribution = iteration_distribution(kernel.nest, values, THREADS)
    report = load_balance_report(distribution)
    print(
        f"static split of the outer loop over {THREADS} threads: "
        f"max/mean load = {report.imbalance:.2f} (1.00 would be balanced)"
    )

    cost_model = kernel.cost_model()
    static = simulate_outer_parallel(kernel.nest, values, THREADS, ScheduleKind.STATIC, cost_model=cost_model)
    dynamic = simulate_outer_parallel(
        kernel.nest, values, THREADS, ScheduleKind.DYNAMIC, chunk_size=kernel.dynamic_chunk, cost_model=cost_model
    )
    collapsed = simulate_collapsed_static(kernel.collapsed(), values, THREADS, cost_model=cost_model)
    return GainRow(
        program=name,
        time_static=static.makespan,
        time_dynamic=dynamic.makespan,
        time_collapsed=collapsed.makespan,
    )


def main(n: int = 300) -> None:
    rows = [analyse("utma", n), analyse("ltmp", max(80, n // 2))]
    print()
    print(
        format_table(
            ["program", "t(static)", "t(dynamic)", "t(collapsed)", "gain vs static", "gain vs dynamic"],
            [row.as_table_row() for row in rows],
            title=f"simulated execution times ({THREADS} threads, arbitrary units)",
        )
    )
    print(
        "\nas in the paper: utma gains strongly over the static baseline, while for ltmp the\n"
        "non-collapsible inner reduction keeps an imbalance and schedule(dynamic) stays ahead."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
