"""Unit and property tests for :mod:`repro.symbolic.polynomial`."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import Monomial, Polynomial


def P(name):
    return Polynomial.variable(name)


class TestConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert str(Polynomial.zero()) == "0"

    def test_constant(self):
        p = Polynomial.constant(Fraction(3, 2))
        assert p.is_constant()
        assert p.constant_value() == Fraction(3, 2)

    def test_variable(self):
        p = P("i")
        assert p.variables() == {"i"}
        assert p.degree_in("i") == 1

    def test_zero_coefficients_dropped(self):
        p = Polynomial({Monomial.variable("i"): 0, Monomial.one(): 5})
        assert p.variables() == frozenset()
        assert p.constant_value() == 5

    def test_from_coefficients(self):
        p = Polynomial.from_coefficients("x", [1, 0, 3])
        assert p == Polynomial.constant(1) + 3 * P("x") ** 2

    def test_affine(self):
        p = Polynomial.affine({"i": 2, "j": -1}, 5)
        assert p == 2 * P("i") - P("j") + 5
        assert p.is_affine()

    def test_rejects_float_coefficients(self):
        with pytest.raises(TypeError):
            Polynomial({Monomial.one(): 0.5})

    def test_rejects_non_monomial_keys(self):
        with pytest.raises(TypeError):
            Polynomial({"i": 1})


class TestArithmetic:
    def test_addition(self):
        assert P("i") + P("i") == 2 * P("i")

    def test_addition_with_int(self):
        assert (P("i") + 1).coefficient(Monomial.one()) == 1

    def test_subtraction_cancels(self):
        assert (P("i") - P("i")).is_zero()

    def test_rsub(self):
        assert 1 - P("i") == Polynomial.constant(1) - P("i")

    def test_multiplication_expands(self):
        # (i + j)^2 = i^2 + 2ij + j^2
        sq = (P("i") + P("j")) ** 2
        assert sq == P("i") ** 2 + 2 * P("i") * P("j") + P("j") ** 2

    def test_scalar_division(self):
        assert (2 * P("i")) / 2 == P("i")

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            P("i") / 0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            P("i") ** -1

    def test_power_zero_is_one(self):
        assert (P("i") + 3) ** 0 == Polynomial.constant(1)

    def test_equality_with_scalar(self):
        assert Polynomial.constant(4) == 4
        assert Polynomial.constant(4) != 5

    def test_hash_consistency(self):
        assert hash(P("i") + 1) == hash(1 + P("i"))


class TestQueries:
    def test_total_degree(self):
        assert (P("i") ** 2 * P("j") + P("k")).total_degree == 3

    def test_degree_in(self):
        p = P("i") ** 2 * P("j") + P("j") ** 3
        assert p.degree_in("i") == 2
        assert p.degree_in("j") == 3
        assert p.degree_in("z") == 0

    def test_is_affine(self):
        assert Polynomial.affine({"i": 1}, 7).is_affine()
        assert not (P("i") * P("j")).is_affine()

    def test_constant_value_raises_for_nonconstant(self):
        with pytest.raises(ValueError):
            P("i").constant_value()

    def test_integer_valuedness_of_ranking_like_polynomial(self):
        # (i^2 + i) / 2 is integer on integers even though coefficients are not
        p = (P("i") ** 2 + P("i")) / 2
        assert p.is_integer_valued_on_integers()

    def test_non_integer_valued_detected(self):
        p = P("i") / 2
        assert not p.is_integer_valued_on_integers()


class TestSubstitutionEvaluation:
    def test_substitute_polynomial(self):
        p = P("i") ** 2 + P("j")
        q = p.substitute({"i": P("a") + 1})
        assert q == (P("a") + 1) ** 2 + P("j")

    def test_substitute_leaves_missing_variables(self):
        p = P("i") + P("j")
        assert p.substitute({"i": Polynomial.constant(0)}) == P("j")

    def test_evaluate_exact(self):
        p = (P("i") ** 2 + 3 * P("j")) / 2
        assert p.evaluate({"i": 4, "j": 2}) == Fraction(11)

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            P("i").evaluate({})

    def test_evaluate_partial(self):
        p = P("i") * P("N") + P("j")
        assert p.evaluate_partial({"N": 10}) == 10 * P("i") + P("j")

    def test_coefficients_in_groups_by_power(self):
        p = P("x") ** 2 * P("N") + 3 * P("x") + 7
        grouped = p.coefficients_in("x")
        assert grouped[2] == P("N")
        assert grouped[1] == Polynomial.constant(3)
        assert grouped[0] == Polynomial.constant(7)

    def test_derivative(self):
        p = P("x") ** 3 + 2 * P("x") * P("y")
        assert p.derivative("x") == 3 * P("x") ** 2 + 2 * P("y")
        assert p.derivative("z").is_zero()


class TestPrinting:
    def test_str_orders_by_degree(self):
        text = str(P("i") ** 2 + P("i") + 1)
        assert text.index("i^2") < text.index("+ i") < text.index("1")

    def test_python_source_round_trips(self):
        p = (2 * P("i") * P("N") + 2 * P("j") - P("i") ** 2 - 3 * P("i")) / 2
        source = p.to_python_source()
        value = eval(source, {}, {"i": 3, "N": 10, "j": 5})
        assert value == p.evaluate({"i": 3, "N": 10, "j": 5})

    def test_c_source_mentions_double_division_for_fractions(self):
        p = P("i") / 2
        assert "/ 2" in p.to_c_source()

    def test_zero_sources(self):
        assert Polynomial.zero().to_python_source() == "0"
        assert Polynomial.zero().to_c_source() == "0"


# ---------------------------------------------------------------------- #
# property-based tests: ring axioms checked through random evaluation
# ---------------------------------------------------------------------- #
variables = st.sampled_from(["i", "j", "k", "N"])


@st.composite
def polynomials(draw, max_terms=4, max_exp=3):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        monomial = Monomial.from_mapping(
            draw(st.dictionaries(variables, st.integers(0, max_exp), max_size=3))
        )
        coefficient = Fraction(draw(st.integers(-6, 6)), draw(st.integers(1, 4)))
        terms[monomial] = terms.get(monomial, Fraction(0)) + coefficient
    return Polynomial(terms)


POINT = {"i": Fraction(2), "j": Fraction(-3), "k": Fraction(5), "N": Fraction(7, 2)}


@settings(max_examples=60)
@given(a=polynomials(), b=polynomials())
def test_property_addition_is_commutative_and_matches_evaluation(a, b):
    assert a + b == b + a
    assert (a + b).evaluate(POINT) == a.evaluate(POINT) + b.evaluate(POINT)


@settings(max_examples=60)
@given(a=polynomials(), b=polynomials(), c=polynomials())
def test_property_multiplication_distributes_over_addition(a, b, c):
    assert a * (b + c) == a * b + a * c


@settings(max_examples=60)
@given(a=polynomials(), b=polynomials())
def test_property_multiplication_matches_evaluation(a, b):
    assert (a * b).evaluate(POINT) == a.evaluate(POINT) * b.evaluate(POINT)


@settings(max_examples=40)
@given(a=polynomials())
def test_property_subtraction_of_self_is_zero(a):
    assert (a - a).is_zero()


@settings(max_examples=40)
@given(a=polynomials())
def test_property_coefficients_in_reconstructs_polynomial(a):
    """Regrouping by any variable and expanding back is the identity."""
    regrouped = Polynomial.zero()
    x = Polynomial.variable("i")
    for power, coefficient in a.coefficients_in("i").items():
        regrouped = regrouped + coefficient * x ** power
    assert regrouped == a


@settings(max_examples=40)
@given(a=polynomials())
def test_property_substitution_matches_composition(a):
    """p(i -> i+1) evaluated at i=t equals p evaluated at i=t+1."""
    shifted = a.substitute({"i": Polynomial.variable("i") + 1})
    point = dict(POINT)
    point_shift = dict(POINT)
    point_shift["i"] = POINT["i"] + 1
    assert shifted.evaluate(point) == a.evaluate(point_shift)
