"""Tests for Bernoulli numbers, Faulhaber polynomials and symbolic summation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    Polynomial,
    bernoulli_number,
    faulhaber_polynomial,
    sum_over_range,
)
from repro.symbolic.summation import nested_sum, sum_power_between


def P(name):
    return Polynomial.variable(name)


class TestBernoulli:
    def test_known_values_plus_convention(self):
        expected = {
            0: Fraction(1),
            1: Fraction(1, 2),
            2: Fraction(1, 6),
            3: Fraction(0),
            4: Fraction(-1, 30),
            5: Fraction(0),
            6: Fraction(1, 42),
            8: Fraction(-1, 30),
            10: Fraction(5, 66),
        }
        for n, value in expected.items():
            assert bernoulli_number(n) == value, n

    def test_odd_bernoulli_numbers_vanish_above_one(self):
        for n in (3, 5, 7, 9, 11):
            assert bernoulli_number(n) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_number(-1)


class TestFaulhaber:
    def test_power_zero(self):
        assert faulhaber_polynomial(0) == P("n") + 1

    def test_power_one(self):
        assert faulhaber_polynomial(1) == (P("n") ** 2 + P("n")) / 2

    def test_power_two(self):
        n = P("n")
        assert faulhaber_polynomial(2) == (2 * n ** 3 + 3 * n ** 2 + n) / 6

    def test_power_three_is_square_of_power_one(self):
        assert faulhaber_polynomial(3) == faulhaber_polynomial(1) ** 2

    @pytest.mark.parametrize("power", range(0, 7))
    @pytest.mark.parametrize("upper", [0, 1, 2, 5, 13])
    def test_matches_brute_force(self, power, upper):
        closed = faulhaber_polynomial(power).evaluate({"n": upper})
        brute = sum(x ** power for x in range(upper + 1))
        assert closed == brute

    def test_custom_variable_name(self):
        assert faulhaber_polynomial(1, "m").variables() == {"m"}

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            faulhaber_polynomial(-2)


class TestSumPowerBetween:
    @pytest.mark.parametrize("low,high", [(0, 5), (2, 7), (3, 3), (4, 3)])
    def test_numeric_ranges(self, low, high):
        closed = sum_power_between(2, Polynomial.constant(low), Polynomial.constant(high))
        assert closed.constant_value() == sum(x ** 2 for x in range(low, high + 1))

    def test_empty_range_is_zero(self):
        # upper == lower - 1 must give exactly zero, the Ehrhart boundary case
        closed = sum_power_between(3, P("l"), P("l") - 1)
        assert closed.is_zero()


class TestSumOverRange:
    def test_constant_summand_counts_range(self):
        count = sum_over_range(Polynomial.constant(1), "x", Polynomial.constant(0), P("n"))
        assert count == P("n") + 1

    def test_triangular_count(self):
        # sum_{x=0}^{n} x = n(n+1)/2
        total = sum_over_range(P("x"), "x", 0, P("n"))
        assert total == (P("n") ** 2 + P("n")) / 2

    def test_parametric_lower_bound(self):
        # trip count of  for (j = i+1; j < N; j++)  is N - 1 - i
        count = sum_over_range(Polynomial.constant(1), "j", P("i") + 1, P("N") - 1)
        assert count == P("N") - 1 - P("i")

    def test_summand_with_other_variables(self):
        # sum_{x=0}^{n} (a*x + b) = a*n(n+1)/2 + b*(n+1)
        total = sum_over_range(P("a") * P("x") + P("b"), "x", 0, P("n"))
        expected = P("a") * (P("n") ** 2 + P("n")) / 2 + P("b") * (P("n") + 1)
        assert total == expected

    def test_bound_involving_summation_variable_rejected(self):
        with pytest.raises(ValueError):
            sum_over_range(P("x"), "x", 0, P("x"))

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 11])
    def test_matches_brute_force_quadratic_summand(self, n):
        summand = 3 * P("x") ** 2 - P("x") + 2
        closed = sum_over_range(summand, "x", 0, Polynomial.constant(n))
        brute = sum(3 * x * x - x + 2 for x in range(n + 1))
        assert closed.constant_value() == brute


class TestNestedSum:
    def test_correlation_trip_count(self):
        # for (i=0;i<N-1;i++) for (j=i+1;j<N;j++)  ->  (N-1)N/2
        N = P("N")
        total = nested_sum([("i", Polynomial.constant(0), N - 2), ("j", P("i") + 1, N - 1)])
        assert total == (N * (N - 1)) / 2

    def test_tetrahedral_trip_count(self):
        # Figure 6 of the paper: total = (N^3 - N) / 6
        N = P("N")
        total = nested_sum(
            [
                ("i", Polynomial.constant(0), N - 2),
                ("j", Polynomial.constant(0), P("i")),
                ("k", P("j"), P("i")),
            ]
        )
        assert total == (N ** 3 - N) / 6

    def test_rectangular_trip_count(self):
        N, M = P("N"), P("M")
        total = nested_sum([("i", Polynomial.constant(0), N - 1), ("j", Polynomial.constant(0), M - 1)])
        assert total == N * M

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_matches_brute_force_enumeration(self, n):
        N = P("N")
        total = nested_sum(
            [
                ("i", Polynomial.constant(0), N - 2),
                ("j", P("i") + 1, N - 1),
            ]
        )
        brute = sum(1 for i in range(n - 1) for j in range(i + 1, n))
        assert total.evaluate({"N": n}) == brute


@settings(max_examples=50)
@given(
    power=st.integers(min_value=0, max_value=5),
    low=st.integers(min_value=-3, max_value=6),
    width=st.integers(min_value=0, max_value=12),
)
def test_property_faulhaber_difference_equals_brute_force(power, low, width):
    """sum_over_range agrees with explicit summation on arbitrary integer ranges."""
    high = low + width
    closed = sum_over_range(
        Polynomial.variable("x") ** power, "x", Polynomial.constant(low), Polynomial.constant(high)
    )
    assert closed.constant_value() == sum(x ** power for x in range(low, high + 1))


@settings(max_examples=50)
@given(n=st.integers(min_value=0, max_value=9), m=st.integers(min_value=0, max_value=9))
def test_property_nested_sum_triangular_dependence(n, m):
    """Trip count of  for(i=0;i<=n) for(j=0;j<=i+m)  matches enumeration."""
    N, M = Polynomial.variable("N"), Polynomial.variable("M")
    closed = nested_sum(
        [("i", Polynomial.constant(0), N), ("j", Polynomial.constant(0), Polynomial.variable("i") + M)]
    )
    brute = sum(1 for i in range(n + 1) for j in range(i + m + 1))
    assert closed.evaluate({"N": n, "M": m}) == brute
