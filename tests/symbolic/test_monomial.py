"""Unit tests for :mod:`repro.symbolic.monomial`."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.symbolic import Monomial


class TestConstruction:
    def test_from_mapping_drops_zero_exponents(self):
        m = Monomial.from_mapping({"i": 2, "j": 0})
        assert m.as_dict() == {"i": 2}

    def test_one_is_empty(self):
        assert Monomial.one().as_dict() == {}
        assert Monomial.one().is_constant()

    def test_variable_default_exponent(self):
        assert Monomial.variable("i").as_dict() == {"i": 1}

    def test_variable_with_exponent(self):
        assert Monomial.variable("i", 3).as_dict() == {"i": 3}

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial.from_mapping({"i": -1})

    def test_non_integer_exponent_rejected(self):
        with pytest.raises(TypeError):
            Monomial.from_mapping({"i": 1.5})

    def test_direct_construction_validates_order(self):
        with pytest.raises(ValueError):
            Monomial((("j", 1), ("i", 1)))

    def test_direct_construction_rejects_zero_power(self):
        with pytest.raises(ValueError):
            Monomial((("i", 0),))


class TestQueries:
    def test_total_degree(self):
        assert Monomial.from_mapping({"i": 2, "j": 3}).total_degree == 5

    def test_degree_in_present_and_absent(self):
        m = Monomial.from_mapping({"i": 2})
        assert m.degree_in("i") == 2
        assert m.degree_in("j") == 0

    def test_variables(self):
        assert Monomial.from_mapping({"i": 1, "j": 4}).variables() == {"i", "j"}

    def test_is_constant_false_for_nonempty(self):
        assert not Monomial.variable("i").is_constant()


class TestAlgebra:
    def test_multiplication_merges_exponents(self):
        a = Monomial.from_mapping({"i": 1, "j": 2})
        b = Monomial.from_mapping({"j": 1, "k": 1})
        assert (a * b).as_dict() == {"i": 1, "j": 3, "k": 1}

    def test_multiplication_with_one_is_identity(self):
        a = Monomial.from_mapping({"i": 2})
        assert a * Monomial.one() == a

    def test_power(self):
        assert (Monomial.from_mapping({"i": 2, "j": 1}) ** 3).as_dict() == {"i": 6, "j": 3}

    def test_power_zero_gives_one(self):
        assert Monomial.variable("i") ** 0 == Monomial.one()

    def test_power_negative_rejected(self):
        with pytest.raises(ValueError):
            Monomial.variable("i") ** -1

    def test_divides(self):
        a = Monomial.from_mapping({"i": 1})
        b = Monomial.from_mapping({"i": 2, "j": 1})
        assert a.divides(b)
        assert not b.divides(a)

    def test_divide_by(self):
        a = Monomial.from_mapping({"i": 3, "j": 1})
        b = Monomial.from_mapping({"i": 1})
        assert a.divide_by(b).as_dict() == {"i": 2, "j": 1}

    def test_divide_by_non_divisor_raises(self):
        with pytest.raises(ValueError):
            Monomial.variable("i").divide_by(Monomial.variable("j"))

    def test_without_removes_variable(self):
        m = Monomial.from_mapping({"i": 2, "j": 1})
        assert m.without("i").as_dict() == {"j": 1}
        assert m.without("z") == m


class TestEvaluation:
    def test_evaluate_exact(self):
        m = Monomial.from_mapping({"i": 2, "j": 1})
        assert m.evaluate({"i": 3, "j": 5}) == 45

    def test_evaluate_fraction(self):
        m = Monomial.variable("i", 2)
        assert m.evaluate({"i": Fraction(1, 2)}) == Fraction(1, 4)

    def test_evaluate_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Monomial.variable("i").evaluate({})

    def test_str_formats(self):
        assert str(Monomial.one()) == "1"
        assert str(Monomial.from_mapping({"i": 1, "j": 2})) == "i*j^2"


@given(
    exps_a=st.dictionaries(st.sampled_from("ijkNn"), st.integers(min_value=0, max_value=5), max_size=4),
    exps_b=st.dictionaries(st.sampled_from("ijkNn"), st.integers(min_value=0, max_value=5), max_size=4),
)
def test_property_multiplication_matches_evaluation(exps_a, exps_b):
    """(a*b)(x) == a(x) * b(x) on integer points."""
    a = Monomial.from_mapping(exps_a)
    b = Monomial.from_mapping(exps_b)
    point = {v: 3 for v in "ijkNn"}
    assert (a * b).evaluate(point) == a.evaluate(point) * b.evaluate(point)


@given(
    exps=st.dictionaries(st.sampled_from("ijk"), st.integers(min_value=0, max_value=4), max_size=3),
    power=st.integers(min_value=0, max_value=4),
)
def test_property_power_matches_repeated_multiplication(exps, power):
    m = Monomial.from_mapping(exps)
    expected = Monomial.one()
    for _ in range(power):
        expected = expected * m
    assert m ** power == expected
