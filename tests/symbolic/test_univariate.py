"""Tests for the univariate polynomial view used by the inversion step."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import Polynomial, UnivariatePolynomial


def P(name):
    return Polynomial.variable(name)


def correlation_ranking() -> Polynomial:
    i, j, N = P("i"), P("j"), P("N")
    return (2 * i * N + 2 * j - i ** 2 - 3 * i) / 2


class TestConstruction:
    def test_from_polynomial_groups_powers(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        assert uni.degree == 2
        assert uni.coefficient(2) == Polynomial.constant(Fraction(-1, 2))
        assert uni.coefficient(1) == P("N") - Fraction(3, 2)
        assert uni.coefficient(0) == P("j")

    def test_round_trip_to_polynomial(self):
        poly = correlation_ranking()
        uni = UnivariatePolynomial.from_polynomial(poly, "i")
        assert uni.to_polynomial() == poly

    def test_rejects_coefficient_containing_main_var(self):
        with pytest.raises(ValueError):
            UnivariatePolynomial("x", {1: P("x")})

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            UnivariatePolynomial("x", {-1: Polynomial.constant(1)})

    def test_scalar_coefficients_accepted(self):
        uni = UnivariatePolynomial("x", [1, 2, 3])
        assert uni.degree == 2
        assert uni.coefficient(1) == Polynomial.constant(2)

    def test_zero_polynomial(self):
        uni = UnivariatePolynomial("x", {})
        assert uni.is_zero()
        assert uni.degree == 0


class TestQueries:
    def test_coefficients_list_is_dense(self):
        uni = UnivariatePolynomial("x", {0: Polynomial.constant(1), 3: Polynomial.constant(2)})
        dense = uni.coefficients_list()
        assert len(dense) == 4
        assert dense[1].is_zero() and dense[2].is_zero()

    def test_leading_coefficient(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        assert uni.leading_coefficient() == Polynomial.constant(Fraction(-1, 2))

    def test_other_variables(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        assert uni.other_variables() == {"N", "j"}

    def test_derivative(self):
        uni = UnivariatePolynomial("x", [0, 0, 1])  # x^2
        derivative = uni.derivative()
        assert derivative.degree == 1
        assert derivative.coefficient(1) == Polynomial.constant(2)


class TestEvaluation:
    def test_evaluate_with_assignment(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        # r(i=2, j=4, N=10) = (2*2*10 + 2*4 - 4 - 6)/2 = 19
        assert uni.evaluate(2, {"N": 10, "j": 4}) == 19

    def test_substitute_coefficients(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        fixed = uni.substitute_coefficients({"N": 10, "j": 4})
        assert fixed.other_variables() == frozenset()
        assert fixed.evaluate(2) == 19

    def test_numeric_coefficients(self):
        uni = UnivariatePolynomial.from_polynomial(correlation_ranking(), "i")
        coefficients = uni.numeric_coefficients({"N": 10, "j": 4})
        assert coefficients == [Fraction(4), Fraction(17, 2), Fraction(-1, 2)]


class TestBisection:
    def test_bisect_finds_floor_of_root(self):
        # p(x) = x^2 - 10: largest integer with p(x) <= 0 is 3
        uni = UnivariatePolynomial("x", [-10, 0, 1])
        assert uni.bisect_root(0, 100, {}) == 3

    def test_bisect_on_ranking_polynomial(self):
        """The bisection unranker recovers the outer index of the correlation nest."""
        N = 12
        r = correlation_ranking()
        # rank at the first iteration of row x: r(x, x+1)
        first_of_row = r.substitute({"j": P("i") + 1})
        pc = 0
        for i in range(N - 1):
            for j in range(i + 1, N):
                pc += 1
                shifted = first_of_row - pc
                uni = UnivariatePolynomial.from_polynomial(shifted, "i")
                assert uni.bisect_root(0, N - 2, {"N": N}) == i

    def test_bisect_rejects_empty_bracket(self):
        uni = UnivariatePolynomial("x", [-10, 0, 1])
        with pytest.raises(ValueError):
            uni.bisect_root(5, 4, {})

    def test_bisect_rejects_bracket_without_root(self):
        uni = UnivariatePolynomial("x", [10, 0, 1])  # always positive
        with pytest.raises(ValueError):
            uni.bisect_root(0, 10, {})


@settings(max_examples=60)
@given(
    coefficients=st.lists(st.integers(-9, 9), min_size=1, max_size=5),
    x=st.integers(-6, 6),
)
def test_property_univariate_evaluation_matches_horner(coefficients, x):
    uni = UnivariatePolynomial("x", [Polynomial.constant(c) for c in coefficients])
    expected = sum(c * x ** k for k, c in enumerate(coefficients))
    assert uni.evaluate(x) == expected


@settings(max_examples=40)
@given(target=st.integers(min_value=0, max_value=400))
def test_property_bisection_inverts_monotone_quadratic(target):
    """bisect_root is the exact integer inverse of a monotone quadratic."""
    # p(x) = x^2 + x - target, increasing on x >= 0
    uni = UnivariatePolynomial("x", [-target, 1, 1])
    root = uni.bisect_root(0, target + 1, {})
    assert root * root + root <= target < (root + 1) ** 2 + root + 1
