"""Tests for the expression/polynomial compiler (repro.symbolic.compile)."""

import random
from fractions import Fraction

import numpy as np
import pytest

from repro.symbolic import (
    Add,
    CompileError,
    Const,
    Monomial,
    Mul,
    Polynomial,
    Pow,
    Var,
    compile_expr,
    compile_polynomial,
    expr_from_polynomial,
)
from repro.symbolic.expression import Floor, RealPart


def random_polynomial(rng: random.Random, variables, terms: int = 6) -> Polynomial:
    """A random sparse polynomial with rational coefficients."""
    result = Polynomial.zero()
    for _ in range(terms):
        coefficient = Fraction(rng.randint(-12, 12), rng.randint(1, 6))
        monomial = Monomial.one()
        for var in variables:
            monomial = monomial * Monomial.variable(var, rng.randint(0, 3))
        result = result + Polynomial({monomial: coefficient})
    return result


class TestCompiledPolynomial:
    def test_matches_tree_evaluation_on_random_polynomials(self):
        rng = random.Random(1234)
        variables = ("x", "y", "N")
        for _ in range(25):
            poly = random_polynomial(rng, variables)
            compiled = compile_polynomial(poly, variables)
            for _ in range(10):
                point = {var: rng.randint(-8, 8) for var in variables}
                assert compiled.evaluate(point) == poly.evaluate(point)

    def test_fraction_exactness_at_integer_points(self):
        # 1/2*x^2 + 1/2*x is integer-valued on integers; the compiled scalar
        # form must reproduce the exact Fractions, not float approximations
        poly = Polynomial.from_coefficients("x", [0, Fraction(1, 2), Fraction(1, 2)])
        compiled = compile_polynomial(poly)
        for x in range(-50, 51):
            value = compiled(x)
            assert isinstance(value, Fraction)
            assert value == poly.evaluate({"x": x})
            assert value.denominator == 1

    def test_fraction_inputs_stay_exact(self):
        poly = random_polynomial(random.Random(7), ("x", "y"))
        compiled = compile_polynomial(poly, ("x", "y"))
        point = {"x": Fraction(3, 7), "y": Fraction(-5, 2)}
        assert compiled.evaluate(point) == poly.evaluate(point)

    def test_numpy_mode_is_elementwise(self):
        rng = random.Random(99)
        poly = random_polynomial(rng, ("x", "N"))
        compiled = compile_polynomial(poly, ("x", "N"), mode="numpy")
        xs = np.arange(-20, 21)
        values = compiled(xs, 9)
        reference = np.array([float(poly.evaluate({"x": int(x), "N": 9})) for x in xs])
        assert values.shape == xs.shape
        assert np.allclose(values, reference)

    def test_zero_and_constant_polynomials(self):
        assert compile_polynomial(Polynomial.zero())() == 0
        assert compile_polynomial(Polynomial.constant(Fraction(7, 3)))() == Fraction(7, 3)

    def test_explicit_signature_order(self):
        poly = Polynomial.variable("a") - Polynomial.variable("b")
        compiled = compile_polynomial(poly, ("b", "a"))
        assert compiled(1, 10) == 9

    def test_missing_variable_in_signature_raises(self):
        poly = Polynomial.variable("a") * Polynomial.variable("b")
        with pytest.raises(CompileError):
            compile_polynomial(poly, ("a",))

    def test_unknown_mode_raises(self):
        with pytest.raises(CompileError):
            compile_polynomial(Polynomial.variable("x"), mode="torch")


class TestCompiledExpr:
    def radical(self) -> "Add":
        # (-1/2 + sqrt((N - 1/2)^2 + 2*(1 - pc))) / 1, shaped like a real
        # quadratic recovery root: negative radicands appear for large pc
        n = Var("N")
        pc = Var("pc")
        inner = (n - Fraction(1, 2)) * (n - Fraction(1, 2)) + 2 * (1 - pc)
        return Const(Fraction(-1, 2)) + Pow(inner, Fraction(1, 2))

    def test_matches_tree_evaluation(self):
        expr = self.radical()
        compiled = compile_expr(expr)
        for n in (3, 10, 17):
            for pc in (1, 5, 60, 400):
                point = {"N": n, "pc": pc}
                assert compiled.evaluate(point) == pytest.approx(expr.evaluate(point))

    def test_negative_radicand_stays_complex_in_numpy_mode(self):
        expr = self.radical()
        compiled = compile_expr(expr, mode="numpy")
        pcs = np.arange(1, 401)  # radicand goes negative well before pc=400
        values = compiled.evaluate({"N": 3, "pc": pcs})
        reference = np.array([expr.evaluate({"N": 3, "pc": int(pc)}) for pc in pcs])
        assert not np.isnan(values).any()
        assert np.allclose(values, reference)

    def test_negative_constant_under_sqrt_numpy(self):
        # regression: a *constant* negative radicand must also go complex
        expr = Mul((Pow(Const(Fraction(-3)), Fraction(1, 2)), Var("x")))
        compiled = compile_expr(expr, mode="numpy")
        xs = np.arange(1.0, 4.0)
        reference = np.array([expr.evaluate({"x": float(x)}) for x in xs])
        assert np.allclose(compiled(xs), reference)

    def test_cube_root_and_reciprocal(self):
        expr = Pow(Var("x"), Fraction(1, 3)) + Pow(Var("x"), Fraction(-1))
        compiled = compile_expr(expr)
        compiled_np = compile_expr(expr, mode="numpy")
        for x in (1, 8, -27, 5):
            assert compiled(x) == pytest.approx(expr.evaluate({"x": x}))
        xs = np.array([1, 8, -27, 5])
        reference = np.array([expr.evaluate({"x": int(x)}) for x in xs])
        assert np.allclose(compiled_np(xs), reference)

    def test_floor_and_realpart_nodes(self):
        expr = Floor(RealPart(Pow(Var("x"), Fraction(1, 2))))
        compiled = compile_expr(expr)
        compiled_np = compile_expr(expr, mode="numpy")
        for x in (0, 1, 2, 15, 16, 17):
            assert compiled(x) == expr.evaluate({"x": x})
        xs = np.arange(0, 20)
        assert np.allclose(
            np.real(compiled_np(xs)), [expr.evaluate({"x": int(x)}).real for x in xs]
        )

    def test_shared_subtrees_emitted_once(self):
        shared = Pow(Var("x"), Fraction(1, 2))
        expr = Add((shared, shared, shared))
        compiled = compile_expr(expr)
        assert compiled.source.count("_sqrt(") == 1
        assert compiled(4) == pytest.approx(6.0)

    def test_compiled_roots_of_a_real_collapse(self):
        from repro.core import collapse
        from repro.ir import Loop, LoopNest

        nest = LoopNest(
            [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
            parameters=["N"],
            name="corr_compile",
        )
        collapsed = collapse(nest)
        root = collapsed.unranking.recoveries[0].expression
        compiled = compile_expr(root, mode="numpy")
        pcs = np.arange(1, 67)
        values = compiled.evaluate({"N": 12, "pc": pcs})
        reference = np.array([root.evaluate({"N": 12, "pc": int(pc)}) for pc in pcs])
        assert np.allclose(values, reference)

    def test_polynomial_expression_round_trip(self):
        poly = random_polynomial(random.Random(11), ("x", "y"))
        expr = expr_from_polynomial(poly)
        compiled = compile_expr(expr)
        for x in range(-3, 4):
            point = {"x": x, "y": 2}
            assert compiled.evaluate(point) == pytest.approx(complex(poly.evaluate(point)))
