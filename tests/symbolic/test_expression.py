"""Tests for the radical expression trees and their printers."""

import cmath
import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    Add,
    Const,
    Expr,
    Floor,
    Mul,
    Polynomial,
    Pow,
    RealPart,
    Var,
    expr_from_polynomial,
    simplify,
)


class TestConstAndVar:
    def test_const_evaluates_to_complex(self):
        assert Const(Fraction(3, 2)).evaluate({}) == 1.5 + 0j

    def test_const_sources(self):
        assert Const(Fraction(3)).to_python() == "(3)"
        assert Const(Fraction(1, 2)).to_python() == "(1 / 2)"
        assert Const(Fraction(1, 2)).to_c() == "(1.0 / 2.0)"

    def test_var_evaluation(self):
        assert Var("pc").evaluate({"pc": 7}) == 7 + 0j

    def test_var_missing_raises(self):
        with pytest.raises(KeyError):
            Var("pc").evaluate({})

    def test_var_c_source_casts_to_double(self):
        assert Var("pc").to_c() == "(double)pc"


class TestOperatorSugar:
    def test_add_sub_mul_div(self):
        expr = (Var("x") + 1) * 2 - Var("y") / 4
        value = expr.evaluate({"x": 3, "y": 8})
        assert value == complex((3 + 1) * 2 - 2)

    def test_neg(self):
        assert (-Var("x")).evaluate({"x": 5}) == -5 + 0j

    def test_pow_rational(self):
        expr = Var("x") ** Fraction(1, 2)
        assert expr.evaluate({"x": 9}).real == pytest.approx(3.0)

    def test_pow_rejects_float_exponent(self):
        with pytest.raises(TypeError):
            Var("x") ** 0.5

    def test_rsub_rdiv(self):
        assert (1 - Var("x")).evaluate({"x": 3}) == -2 + 0j
        assert (6 / Var("x")).evaluate({"x": 3}) == 2 + 0j


class TestComplexBehaviour:
    def test_sqrt_of_negative_is_complex_not_nan(self):
        """Section IV-C: negative radicands must go through complex arithmetic."""
        expr = Pow(Const(Fraction(-1)), Fraction(1, 2))
        value = expr.evaluate({})
        assert value == pytest.approx(1j)
        assert not math.isnan(value.real)

    def test_complex_intermediate_with_real_result(self):
        # (sqrt(-1))^2 + 1 == 0 exactly, even though the intermediate is imaginary
        expr = Pow(Pow(Const(Fraction(-1)), Fraction(1, 2)), Fraction(2)) + 1
        assert abs(expr.evaluate({})) == pytest.approx(0.0)

    def test_zero_to_negative_power_raises(self):
        with pytest.raises(ZeroDivisionError):
            Pow(Const(Fraction(0)), Fraction(-1)).evaluate({})

    def test_floor_takes_real_part(self):
        expr = Floor(Const(Fraction(7, 2)) + Pow(Const(Fraction(-9)), Fraction(1, 2)))
        assert expr.evaluate({}) == 3 + 0j

    def test_real_part(self):
        expr = RealPart(Pow(Const(Fraction(-4)), Fraction(1, 2)))
        assert expr.evaluate({}) == 0 + 0j


class TestPrinters:
    def _eval_python(self, expr: Expr, env=None):
        source = expr.to_python()
        return eval(source, {"cmath": cmath, "math": math}, env or {})

    def test_python_source_matches_evaluation(self):
        expr = Floor((Var("pc") * 8 + 1) ** Fraction(1, 2) / 2)
        for pc in range(1, 30):
            assert self._eval_python(expr, {"pc": pc}) == expr.evaluate({"pc": pc}).real

    def test_python_source_of_sqrt_uses_cmath(self):
        expr = Pow(Var("x"), Fraction(1, 2))
        assert "cmath.sqrt" in expr.to_python()

    def test_c_source_uses_complex_functions(self):
        expr = Floor(Pow(Var("pc"), Fraction(1, 3)))
        text = expr.to_c()
        assert "cpow" in text
        assert "creal" in text
        assert "floor" in text

    def test_c_source_of_sqrt_uses_csqrt(self):
        assert "csqrt" in Pow(Var("x"), Fraction(1, 2)).to_c()

    def test_reciprocal_printers(self):
        expr = Pow(Var("x"), Fraction(-1))
        assert expr.to_python() == "(1 / (x))"
        assert expr.to_c() == "(1.0 / ((double)x))"


class TestConversionFromPolynomial:
    def test_constant_polynomial(self):
        expr = expr_from_polynomial(Polynomial.constant(Fraction(5, 3)))
        assert expr.evaluate({}) == pytest.approx(5 / 3)

    def test_zero_polynomial(self):
        assert expr_from_polynomial(Polynomial.zero()).evaluate({}) == 0

    def test_multivariate_polynomial_matches(self):
        i, n = Polynomial.variable("i"), Polynomial.variable("N")
        poly = (2 * i * n - i ** 2 - 3 * i) / 2 + 7
        expr = expr_from_polynomial(poly)
        env = {"i": 4, "N": 11}
        assert expr.evaluate(env).real == pytest.approx(float(poly.evaluate(env)))

    def test_variables_preserved(self):
        poly = Polynomial.variable("pc") * Polynomial.variable("N")
        assert expr_from_polynomial(poly).variables() == {"pc", "N"}


class TestSimplify:
    def test_flattens_nested_sums(self):
        expr = Add((Add((Var("x"), Const(Fraction(1)))), Const(Fraction(2))))
        result = simplify(expr)
        assert isinstance(result, Add)
        assert result.evaluate({"x": 5}) == 8 + 0j

    def test_folds_constant_product(self):
        expr = Mul((Const(Fraction(2)), Const(Fraction(3)), Var("x")))
        result = simplify(expr)
        assert result.evaluate({"x": 4}) == 24 + 0j

    def test_multiplication_by_zero_collapses(self):
        expr = Mul((Const(Fraction(0)), Var("x")))
        assert simplify(expr) == Const(Fraction(0))

    def test_pow_of_constant_folds(self):
        assert simplify(Pow(Const(Fraction(3)), Fraction(2))) == Const(Fraction(9))

    def test_simplify_preserves_value(self):
        expr = Floor(
            Mul(
                (
                    Const(Fraction(-1, 2)),
                    Add(
                        (
                            Pow(Add((Mul((Const(Fraction(8)), Var("pc"))), Const(Fraction(1)))), Fraction(1, 2)),
                            Const(Fraction(-1)),
                        )
                    ),
                )
            )
        )
        simplified = simplify(expr)
        for pc in (1, 5, 17):
            assert simplified.evaluate({"pc": pc}) == expr.evaluate({"pc": pc})


@settings(max_examples=50)
@given(
    a=st.integers(-20, 20),
    b=st.integers(-20, 20),
    x=st.integers(-10, 10),
)
def test_property_expression_arithmetic_matches_python(a, b, x):
    expr = Var("x") * a + b
    assert expr.evaluate({"x": x}) == complex(a * x + b)


@settings(max_examples=50)
@given(value=st.integers(min_value=0, max_value=10_000))
def test_property_python_and_c_style_sqrt_agree_with_math(value):
    expr = Pow(Const(Fraction(value)), Fraction(1, 2))
    assert expr.evaluate({}).real == pytest.approx(math.sqrt(value))
