"""Tests for the symbolic root formulas (degrees 1-4)."""

import math
from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.symbolic import Polynomial, UnivariatePolynomial, SolveError, solve_univariate_symbolic
from repro.symbolic.solve import solve_cubic, solve_linear, solve_quadratic, solve_quartic


def P(name):
    return Polynomial.variable(name)


def roots_of(coefficients, env=None):
    """Evaluate the symbolic root candidates of sum c_k x^k numerically.

    Candidates whose branch degenerates for this instantiation (division by a
    vanishing radical) are skipped — the unranker performs the same
    validation-based selection.
    """
    degree = len(coefficients) - 1
    solver = {1: solve_linear, 2: solve_quadratic, 3: solve_cubic, 4: solve_quartic}[degree]
    exprs = solver([Polynomial.constant(c) if isinstance(c, (int, Fraction)) else c for c in coefficients])
    values = []
    for expr in exprs:
        try:
            values.append(expr.evaluate(env or {}))
        except ZeroDivisionError:
            continue
    return values


def assert_roots_match(computed, expected, tol=1e-7):
    """Each expected root must be approximated by some computed root."""
    for target in expected:
        assert any(abs(root - target) < tol for root in computed), (computed, expected)


class TestLinear:
    def test_simple(self):
        assert_roots_match(roots_of([6, -2]), [3])

    def test_symbolic_coefficients(self):
        roots = solve_linear([P("b"), P("a")])
        assert roots[0].evaluate({"a": 2, "b": -10}) == pytest.approx(5)


class TestQuadratic:
    def test_integer_roots(self):
        # (x-2)(x-5) = x^2 -7x + 10
        assert_roots_match(roots_of([10, -7, 1]), [2, 5])

    def test_double_root(self):
        assert_roots_match(roots_of([9, -6, 1]), [3, 3])

    def test_complex_roots(self):
        # x^2 + 1
        assert_roots_match(roots_of([1, 0, 1]), [1j, -1j])

    def test_correlation_inversion_formula(self):
        """The paper's closed form for the correlation outer index (Section II).

        Solving r(x, x+1) - pc = 0 must give
        i = -(sqrt(4N^2 - 4N - 8pc + 9) - 2N + 1) / 2  as one of the roots.
        """
        N, pc = P("N"), P("pc")
        r = (2 * P("x") * N + 2 * (P("x") + 1) - P("x") ** 2 - 3 * P("x")) / 2 - pc
        uni = UnivariatePolynomial.from_polynomial(r, "x")
        roots = solve_univariate_symbolic(uni)
        n_value = 50
        for pc_value in (1, 2, 49, 50, 100, 1224, 1225):
            paper = -(math.sqrt(4 * n_value ** 2 - 4 * n_value - 8 * pc_value + 9) - 2 * n_value + 1) / 2
            values = [root.evaluate({"N": n_value, "pc": pc_value}) for root in roots]
            assert any(abs(value.real - paper) < 1e-9 and abs(value.imag) < 1e-9 for value in values)


class TestCubic:
    def test_three_real_integer_roots(self):
        # (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        assert_roots_match(roots_of([-6, 11, -6, 1]), [1, 2, 3])

    def test_one_real_two_complex(self):
        # x^3 - 1 has roots 1, w, w^2
        expected = [1, complex(-0.5, math.sqrt(3) / 2), complex(-0.5, -math.sqrt(3) / 2)]
        assert_roots_match(roots_of([-1, 0, 0, 1]), expected)

    def test_casus_irreducibilis(self):
        """Three real roots that *require* complex radicals (the Section IV-C case)."""
        # x^3 - 7x + 6 = (x-1)(x-2)(x+3)
        assert_roots_match(roots_of([6, -7, 0, 1]), [1, 2, -3])

    def test_depth3_nest_root_behaviour_at_pc_1(self):
        """Mirror of the paper's Figure 6/7 observation: at pc=1 the radicand is
        negative (complex intermediate) but the root value is the real 0."""
        N, pc = P("N"), P("pc")
        x = P("x")
        # r(x, 0, 0) - pc with r from Section IV-C
        r = (x ** 3 + 3 * x ** 2 + 2 * x + 6) / 6 - pc
        uni = UnivariatePolynomial.from_polynomial(r, "x")
        roots = solve_univariate_symbolic(uni)
        values = [root.evaluate({"pc": 1, "N": 100}) for root in roots]
        assert any(abs(value) < 1e-9 for value in values)

    def test_symbolic_cubic_with_parameter(self):
        # x^3 = a  =>  root cbrt(a)
        roots = solve_cubic([-P("a"), Polynomial.zero(), Polynomial.zero(), Polynomial.constant(1)])
        values = [root.evaluate({"a": 27}) for root in roots]
        assert any(abs(value - 3) < 1e-9 for value in values)


class TestQuartic:
    def test_four_integer_roots(self):
        # (x-1)(x-2)(x-3)(x-4) = x^4 - 10x^3 + 35x^2 - 50x + 24
        assert_roots_match(roots_of([24, -50, 35, -10, 1]), [1, 2, 3, 4])

    def test_biquadratic(self):
        # x^4 - 5x^2 + 4 = (x^2-1)(x^2-4)
        assert_roots_match(roots_of([4, 0, -5, 0, 1]), [1, -1, 2, -2])

    def test_complex_pairs(self):
        # x^4 + 1: four complex 8th roots of unity
        expected = [complex(math.cos(a), math.sin(a)) for a in (math.pi / 4, 3 * math.pi / 4, 5 * math.pi / 4, 7 * math.pi / 4)]
        assert_roots_match(roots_of([1, 0, 0, 0, 1]), expected)

    def test_quartic_ranking_inversion(self):
        """Invert the ranking polynomial of a 4-deep simplex-like nest.

        for (i=0; i<N; i++) for (j=0; j<=i; j++) for (k=0; k<=j; k++)
        for (l=0; l<=k; l++)  — the rank of the first iteration of row i is a
        quartic in i; the symbolic quartic solver must recover i for every pc.
        """
        from repro.symbolic.summation import nested_sum

        N = 9
        x = P("x")
        # iterations strictly before row i: nested sum over rows 0..i-1
        before = nested_sum(
            [
                ("a", Polynomial.constant(0), x - 1),
                ("b", Polynomial.constant(0), P("a")),
                ("c", Polynomial.constant(0), P("b")),
                ("d", Polynomial.constant(0), P("c")),
            ]
        )
        rank_first_of_row = before + 1
        equation = rank_first_of_row - P("pc")
        uni = UnivariatePolynomial.from_polynomial(equation, "x")
        roots = solve_univariate_symbolic(uni)

        # enumerate the real nest and check that some root recovers i at
        # the first pc of every row
        pc = 0
        first_pc_of_row = {}
        for i in range(N):
            for j in range(i + 1):
                for k in range(j + 1):
                    for l in range(k + 1):
                        pc += 1
                        first_pc_of_row.setdefault(i, pc)
        for i, pc_value in first_pc_of_row.items():
            values = [root.evaluate({"pc": pc_value}) for root in roots]
            assert any(
                abs(value.imag) < 1e-6 and abs(value.real - i) < 1e-6 for value in values
            ), (i, pc_value, values)


class TestSolveDispatch:
    def test_degree_zero_raises(self):
        with pytest.raises(SolveError):
            solve_univariate_symbolic(UnivariatePolynomial("x", [Polynomial.constant(3)]))

    def test_degree_five_raises(self):
        uni = UnivariatePolynomial("x", {5: Polynomial.constant(1), 0: Polynomial.constant(-1)})
        with pytest.raises(SolveError):
            solve_univariate_symbolic(uni)

    def test_dispatch_returns_enough_candidates(self):
        # degrees 1-3 return exactly `degree` roots; the quartic returns the
        # candidates of all three resolvent cube-root branches (see solve_quartic)
        for degree in (1, 2, 3, 4):
            coefficients = {degree: Polynomial.constant(1), 0: Polynomial.constant(-1)}
            roots = solve_univariate_symbolic(UnivariatePolynomial("x", coefficients))
            assert len(roots) >= degree


def _poly_value(coefficients, x):
    return sum(c * x ** k for k, c in enumerate(coefficients))


@settings(max_examples=60, deadline=None)
@given(
    roots=st.lists(st.integers(-6, 6), min_size=2, max_size=2),
    leading=st.integers(1, 3),
)
def test_property_quadratic_from_factored_form(roots, leading):
    """Expanding (x-r1)(x-r2) and solving recovers the roots."""
    r1, r2 = roots
    coefficients = [leading * r1 * r2, -leading * (r1 + r2), leading]
    computed = roots_of(coefficients)
    assert_roots_match(computed, [r1, r2])


@settings(max_examples=40, deadline=None)
@given(roots=st.lists(st.integers(-5, 5), min_size=3, max_size=3))
def test_property_cubic_from_factored_form(roots):
    r1, r2, r3 = roots
    coefficients = [
        -r1 * r2 * r3,
        r1 * r2 + r1 * r3 + r2 * r3,
        -(r1 + r2 + r3),
        1,
    ]
    computed = roots_of(coefficients)
    assert_roots_match(computed, roots, tol=1e-5)


@settings(max_examples=30, deadline=None)
@given(roots=st.lists(st.integers(-4, 4), min_size=4, max_size=4))
def test_property_quartic_candidates_cover_all_roots(roots):
    """Every true root of the quartic appears among Ferrari's candidates."""
    r1, r2, r3, r4 = roots
    e1 = r1 + r2 + r3 + r4
    e2 = r1 * r2 + r1 * r3 + r1 * r4 + r2 * r3 + r2 * r4 + r3 * r4
    e3 = r1 * r2 * r3 + r1 * r2 * r4 + r1 * r3 * r4 + r2 * r3 * r4
    e4 = r1 * r2 * r3 * r4
    coefficients = [e4, -e3, e2, -e1, 1]
    computed = roots_of(coefficients)
    assert_roots_match(computed, roots, tol=1e-4)
