"""Suite-wide fixtures shared across the per-directory test packages."""

import math
from fractions import Fraction

import pytest


# ---------------------------------------------------------------------- #
# profile-store isolation
# ---------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def _isolated_profile_store(tmp_path, monkeypatch):
    """Point ``$REPRO_PROFILE_DIR`` at a per-test directory.

    Every session run banks timings in the persistent profile store, and
    ``backend="auto"``/adaptive re-cutting *read* it — a store shared with
    the developer's ``~/.cache/repro-profile`` (or between two tests) would
    make test outcomes depend on what happened to run before.  Tests that
    exercise store persistence across runs simply reuse the fixture's
    directory within their test.
    """
    monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "profile-store"))


# ---------------------------------------------------------------------- #
# shared exact-recovery cross-validation helper
# ---------------------------------------------------------------------- #
def _exact_reference_unrank(collapsed, pc, parameter_values):
    """Independent big-int unranker: Fraction brackets + bisection.

    Deliberately shares no code with the shipped recovery paths (no
    integer_form, no compiled polynomials, no float seeds), so agreement
    with it is cross-validation rather than self-consistency.  Used by the
    exact-recovery pins in tests/core, tests/native and tests/integration.
    """
    environment = dict(parameter_values)
    indices = []
    for recovery in collapsed.unranking.recoveries:
        lo = math.ceil(recovery.lower.evaluate(environment))
        hi = math.ceil(recovery.upper.evaluate(environment)) - 1

        def bracket(x):
            point = dict(environment)
            point[recovery.iterator] = x
            value = recovery.bracket.evaluate(point)
            return value if isinstance(value, Fraction) else Fraction(value)

        assert bracket(lo) <= pc, "pc below the first rank of the level"
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if bracket(mid) <= pc:
                lo = mid
            else:
                hi = mid - 1
        environment[recovery.iterator] = lo
        indices.append(lo)
    return tuple(indices)


@pytest.fixture(scope="session")
def exact_reference_recover():
    """The shared independent unranker, as a session fixture (one source of
    truth across the tests/core, tests/native and tests/integration pins)."""
    return _exact_reference_unrank
