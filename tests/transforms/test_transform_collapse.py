"""Transform × collapse composition: the paper's transformed nests must be
first-class citizens of the ranking machinery.

The paper applies collapse *after* classic loop transformations — its
``*_tiled`` kernels come out of Pluto, and the skewed stencil of the
introduction is a wavefront transformation.  These tests pin the
composition: a nest produced by :func:`repro.transforms.skew` or the
tile loops of :func:`repro.transforms.tile_triangular` must (a) count
exactly as many iterations under the ranking polynomial as brute-force
enumeration visits, and (b) round-trip every single rank — ``pc →
recover_indices → rank_of → pc`` — with scalar and batch recovery in
agreement across the whole transformed domain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import batch_recovery, collapse
from repro.ir import Loop, LoopNest, enumerate_iterations, iteration_count
from repro.transforms import skew, tile_triangular


def _rectangle() -> LoopNest:
    return LoopNest(
        [Loop.make("t", 0, "T"), Loop.make("x", 0, "N")],
        parameters=["T", "N"],
        name="rect",
    )


def _triangle() -> LoopNest:
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="triangle",
    )


def _skewed_cases():
    """(name, transformed nest, parameter values) for the skewing axis."""
    return [
        pytest.param(skew(_rectangle(), target="x", source="t", factor=1),
                     {"T": 5, "N": 7}, id="rect-factor1"),
        pytest.param(skew(_rectangle(), target="x", source="t", factor=2),
                     {"T": 4, "N": 6}, id="rect-factor2"),
        pytest.param(skew(_rectangle(), target="x", source="t", factor=3),
                     {"T": 3, "N": 11}, id="rect-factor3"),
    ]


def _tiled_cases():
    """(tiled nest, tile-nest parameter values) for the tiling axis."""
    cases = []
    for n, tile_size in ((16, 4), (17, 4), (24, 5), (9, 3)):
        tiled = tile_triangular(_triangle(), tile_size=tile_size)
        cases.append(
            pytest.param(tiled, tiled.tile_parameters({"N": n}), {"N": n},
                         id=f"N{n}-ts{tile_size}")
        )
    return cases


# ---------------------------------------------------------------------- #
# trip-count equality vs brute-force enumeration
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("nest, values", _skewed_cases())
def test_skewed_trip_count_matches_brute_force(nest, values):
    brute_force = len(list(enumerate_iterations(nest, values)))
    assert brute_force > 0
    assert iteration_count(nest, values) == brute_force
    assert collapse(nest).total_iterations(values) == brute_force


@pytest.mark.parametrize("factor", [1, 2, 3])
def test_skewing_preserves_the_iteration_volume(factor):
    """Skewing slides rows; it must never create or destroy iterations."""
    values = {"T": 6, "N": 5}
    base = _rectangle()
    skewed = skew(base, target="x", source="t", factor=factor)
    assert iteration_count(skewed, values) == iteration_count(base, values)


@pytest.mark.parametrize("tiled, tile_values, original_values", _tiled_cases())
def test_tiled_trip_count_matches_brute_force(tiled, tile_values, original_values):
    nest = tiled.tile_nest
    brute_force = len(list(enumerate_iterations(nest, tile_values)))
    tiles = tile_values["NT"]
    assert brute_force == tiles * (tiles + 1) // 2  # upper-triangular incl. diagonal
    assert iteration_count(nest, tile_values) == brute_force
    assert collapse(nest).total_iterations(tile_values) == brute_force


@pytest.mark.parametrize("tiled, tile_values, original_values", _tiled_cases())
def test_tiling_conserves_work_over_the_collapsed_tile_space(tiled, tile_values, original_values):
    """Walking the *collapsed* tile space and summing each tile's inner work
    must reproduce the untiled nest's iteration count exactly — points in
    boundary tiles included, no tile visited twice."""
    collapsed = collapse(tiled.tile_nest)
    total_tiles = collapsed.total_iterations(tile_values)
    work = sum(
        tiled.tile_work(*collapsed.recover_indices(pc, tile_values), original_values)
        for pc in range(1, total_tiles + 1)
    )
    assert work == iteration_count(tiled.original, original_values)


# ---------------------------------------------------------------------- #
# rank-recovery round-trips on the transformed domains
# ---------------------------------------------------------------------- #
def _assert_round_trips(nest, values):
    collapsed = collapse(nest)
    total = collapsed.total_iterations(values)
    expected = list(enumerate_iterations(nest, values))

    recovered = [collapsed.recover_indices(pc, values) for pc in range(1, total + 1)]
    assert [tuple(indices) for indices in recovered] == expected

    for pc, indices in enumerate(recovered, start=1):
        assert collapsed.rank_of(indices, values) == pc

    batch = batch_recovery(collapsed).recover_range(1, total, values)
    assert np.array_equal(batch, np.array(expected, dtype=np.int64))


@pytest.mark.parametrize("nest, values", _skewed_cases())
def test_skewed_rank_recovery_round_trips(nest, values):
    _assert_round_trips(nest, values)


@pytest.mark.parametrize("tiled, tile_values, original_values", _tiled_cases())
def test_tiled_rank_recovery_round_trips(tiled, tile_values, original_values):
    _assert_round_trips(tiled.tile_nest, tile_values)


def test_skewed_wavefront_invariant_holds_across_recovery():
    """The recovered indices of a skewed nest satisfy the wavefront
    invariant the transformation establishes (``x >= t`` after a factor-1
    skew) — i.e. recovery lands in the *transformed* domain, not the
    original one."""
    skewed = skew(_rectangle(), target="x", source="t", factor=1)
    values = {"T": 4, "N": 5}
    collapsed = collapse(skewed, 2)
    walked = [
        tuple(collapsed.recover_indices(pc, values))
        for pc in range(1, collapsed.total_iterations(values) + 1)
    ]
    assert walked == list(enumerate_iterations(skewed, values))
    # every skewed x satisfies the wavefront invariant x >= t
    assert all(x >= t for t, x in walked)
