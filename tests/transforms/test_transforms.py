"""Tests for the Pluto-lite transformations (skewing and tiling)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import collapse
from repro.ir import ArrayAccess, Loop, LoopNest, Statement, enumerate_iterations
from repro.openmp import CostModel
from repro.transforms import skew, tile_triangular
from repro.transforms.tiling import TILE_COUNT_PARAMETER


def rectangular_stencil_nest():
    return LoopNest(
        [Loop.make("t", 0, "T"), Loop.make("x", 1, "N - 1")],
        statements=[
            Statement(
                "stencil",
                (ArrayAccess.write("A", "t", "x"), ArrayAccess.read("A", "t", "x - 1")),
            )
        ],
        parameters=["T", "N"],
        name="stencil",
    )


def correlation_pair():
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="correlation_pair",
    )


class TestSkew:
    def test_skewed_bounds_slide_with_outer_iterator(self):
        skewed = skew(rectangular_stencil_nest(), target="x", source="t", factor=2)
        assert str(skewed.loop("x").lower) in ("2*t + 1", "1 + 2*t")
        assert skewed.loop("x").lower.coefficient("t") == 2
        assert skewed.loop("x").upper.coefficient("t") == 2

    def test_skewing_preserves_the_iteration_multiset(self):
        nest = rectangular_stencil_nest()
        skewed = skew(nest, "x", "t", 1)
        values = {"T": 5, "N": 8}
        original = [(t, x) for t, x in enumerate_iterations(nest, values)]
        recovered = [(t, x - t) for t, x in enumerate_iterations(skewed, values)]
        assert recovered == original

    def test_accesses_are_rewritten(self):
        skewed = skew(rectangular_stencil_nest(), "x", "t", 3)
        write = skewed.statements[0].writes()[0]
        # A[t][x] becomes A[t][x - 3t]
        assert write.subscripts[1].coefficient("t") == -3

    def test_zero_factor_is_identity(self):
        nest = rectangular_stencil_nest()
        assert skew(nest, "x", "t", 0) is nest

    def test_skewed_nest_is_collapsible(self):
        skewed = skew(rectangular_stencil_nest(), "x", "t", 1)
        collapsed = collapse(skewed, 2)
        assert collapsed.validate({"T": 5, "N": 7})

    def test_invalid_source_position(self):
        with pytest.raises(ValueError):
            skew(rectangular_stencil_nest(), target="t", source="x", factor=1)

    def test_unknown_iterator(self):
        with pytest.raises(ValueError):
            skew(rectangular_stencil_nest(), "z", "t", 1)

    def test_name_suffix(self):
        assert skew(rectangular_stencil_nest(), "x", "t", 1).name == "stencil_skewed"


class TestTileTriangular:
    def test_tile_nest_shape(self):
        tiled = tile_triangular(correlation_pair(), tile_size=8)
        assert tiled.tile_nest.iterators == ("it", "jt")
        assert tiled.tile_nest.parameters == (TILE_COUNT_PARAMETER,)
        assert str(tiled.tile_nest.loop("jt").lower) == "it"

    def test_tile_parameters(self):
        tiled = tile_triangular(correlation_pair(), tile_size=8)
        assert tiled.tile_parameters({"N": 64}) == {TILE_COUNT_PARAMETER: 8}
        assert tiled.tile_parameters({"N": 65}) == {TILE_COUNT_PARAMETER: 9}

    def test_total_work_is_preserved(self):
        """Summing the per-tile point counts over all tiles must give the
        exact number of points of the original triangular domain."""
        nest = correlation_pair()
        tiled = tile_triangular(nest, tile_size=7)
        for n in (20, 33, 50):
            assert tiled.total_work({"N": n}) == n * (n - 1) / 2

    def test_boundary_tiles_are_partial(self):
        tiled = tile_triangular(correlation_pair(), tile_size=8)
        values = {"N": 20}
        # diagonal tile (0, 0) is half-full, interior tile (0, 1) is full
        assert tiled.tile_work(0, 0, values) < 64
        assert tiled.tile_work(0, 1, values) == 64

    def test_point_work_weighting(self):
        tiled = tile_triangular(correlation_pair(), tile_size=8, point_work=lambda i, j, v: 2.0)
        plain = tile_triangular(correlation_pair(), tile_size=8)
        values = {"N": 24}
        assert tiled.tile_work(0, 1, values) == 2 * plain.tile_work(0, 1, values)

    def test_tile_nest_is_collapsible(self):
        tiled = tile_triangular(correlation_pair(), tile_size=8)
        collapsed = collapse(tiled.tile_nest, 2)
        assert collapsed.validate({TILE_COUNT_PARAMETER: 6})

    def test_rejects_non_triangular_patterns(self):
        lower_triangle = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1")], parameters=["N"], name="lower"
        )
        with pytest.raises(ValueError):
            tile_triangular(lower_triangle, 8)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            tile_triangular(correlation_pair(), 0)

    def test_rejects_single_loop(self):
        nest = LoopNest([Loop.make("i", 0, "N")], parameters=["N"], name="one")
        with pytest.raises(ValueError):
            tile_triangular(nest, 4)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=40), tile=st.integers(min_value=1, max_value=9))
def test_property_tiling_conserves_point_count(n, tile):
    tiled = tile_triangular(correlation_pair(), tile_size=tile)
    assert tiled.total_work({"N": n}) == n * (n - 1) / 2


@settings(max_examples=20, deadline=None)
@given(factor=st.integers(min_value=0, max_value=3), t=st.integers(min_value=1, max_value=6), n=st.integers(min_value=3, max_value=9))
def test_property_skew_preserves_iteration_count(factor, t, n):
    nest = rectangular_stencil_nest()
    skewed = skew(nest, "x", "t", factor)
    values = {"T": t, "N": n}
    assert len(list(enumerate_iterations(skewed, values))) == len(list(enumerate_iterations(nest, values)))
