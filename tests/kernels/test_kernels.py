"""Tests for the kernel suite: registry, shapes, preconditions and correctness."""

import numpy as np
import pytest

from repro.ir import may_carry_dependence
from repro.kernels import (
    TILED_KERNELS,
    all_kernels,
    executable_kernels,
    get_kernel,
    get_tiled_kernel,
    run_collapsed_chunks,
    run_original,
    verify_kernel,
)
from repro.kernels.base import Kernel, register_kernel
from repro.openmp.schedule import dynamic_chunks


def small_parameters(kernel):
    """Scaled-down sizes that keep brute-force verification fast."""
    values = {name: max(8, value // 20) for name, value in kernel.bench_parameters.items()}
    if "K" in values:
        values["K"] = 2
    if "M" in values:
        values["M"] = 6
    return values


class TestRegistry:
    def test_eleven_programs_are_registered(self):
        names = [kernel.name for kernel in all_kernels()]
        assert len(names) == 11
        # the paper's two handwritten programs are present
        assert "utma" in names and "ltmp" in names
        # the motivating example is present
        assert "correlation" in names

    def test_two_tiled_variants(self):
        assert sorted(TILED_KERNELS) == ["correlation_tiled", "covariance_tiled"]

    def test_get_kernel_unknown(self):
        with pytest.raises(KeyError):
            get_kernel("does_not_exist")

    def test_get_tiled_kernel_unknown(self):
        with pytest.raises(KeyError):
            get_tiled_kernel("does_not_exist")

    def test_duplicate_registration_rejected(self):
        kernel = get_kernel("utma")
        with pytest.raises(ValueError):
            register_kernel(kernel)

    def test_executable_subset(self):
        executable = {kernel.name for kernel in executable_kernels()}
        assert "correlation" in executable
        assert "jacobi1d_skewed" not in executable

    def test_descriptions_are_informative(self):
        for kernel in all_kernels():
            assert len(kernel.description) > 20
            assert str(kernel).startswith(kernel.name)


class TestShapes:
    def test_every_kernel_is_non_rectangular_except_lu_update(self):
        for kernel in all_kernels():
            rectangular = kernel.nest.is_rectangular(kernel.collapse_depth)
            assert rectangular == (kernel.name == "lu_update"), kernel.name

    def test_collapse_depth_is_valid(self):
        for kernel in all_kernels():
            assert 1 <= kernel.collapse_depth <= kernel.nest.depth

    def test_collapse_validates_on_small_sizes(self):
        for kernel in all_kernels():
            collapsed = kernel.collapsed()
            assert collapsed.validate(small_parameters(kernel)), kernel.name

    def test_all_recoveries_are_closed_forms(self):
        """Every kernel of the suite fits the paper's degree <= 4 requirement."""
        for kernel in all_kernels():
            assert kernel.collapsed().uses_only_closed_forms(), kernel.name

    def test_collapsible_loops_carry_no_dependence(self):
        for kernel in all_kernels():
            if kernel.nest.statements and kernel.check_dependences:
                assert not may_carry_dependence(kernel.nest, kernel.collapse_depth), kernel.name

    def test_ltmp_innermost_loop_carries_the_reduction(self):
        ltmp = get_kernel("ltmp")
        assert may_carry_dependence(ltmp.nest, 3)

    def test_correlation_matches_paper_figure1(self):
        correlation = get_kernel("correlation")
        assert correlation.collapse_depth == 2
        total = correlation.collapsed().total_polynomial
        assert total.evaluate({"N": 1000}) == 1000 * 999 // 2


class TestExecution:
    @pytest.mark.parametrize("name", [k.name for k in all_kernels() if k.is_executable])
    def test_verify_collapsed_equals_original_equals_reference(self, name):
        kernel = get_kernel(name)
        assert verify_kernel(kernel, small_parameters(kernel), threads=3), name

    def test_chunked_execution_with_dynamic_chunks(self):
        kernel = get_kernel("utma")
        values = small_parameters(kernel)
        collapsed = kernel.collapsed()
        total = collapsed.total_iterations(values)
        data = kernel.make_data(values)
        original = run_original(kernel, values, data)
        chunked = run_collapsed_chunks(
            kernel, values, data, chunks=dynamic_chunks(total, 5), collapsed=collapsed
        )
        assert np.allclose(original["c"], chunked["c"])

    def test_non_executable_kernel_raises(self):
        kernel = get_kernel("jacobi1d_skewed")
        with pytest.raises(ValueError):
            run_original(kernel, small_parameters(kernel))
        with pytest.raises(ValueError):
            verify_kernel(kernel)

    def test_make_data_is_deterministic(self):
        kernel = get_kernel("correlation")
        values = small_parameters(kernel)
        first, second = kernel.make_data(values), kernel.make_data(values)
        assert np.array_equal(first["b"], second["b"])


class TestTiledKernels:
    def test_tile_nest_collapses_and_validates(self):
        for tiled in TILED_KERNELS.values():
            collapsed = tiled.collapsed()
            tile_values = tiled.tile_parameters(tiled.bench_parameters)
            assert collapsed.validate(tile_values), tiled.name

    def test_tiled_work_conserves_total(self):
        tiled = get_tiled_kernel("covariance_tiled")
        values = {"N": 100}
        # the covariance domain has N(N+1)/2 points of unit work
        assert tiled.tiled.total_work(values) == 100 * 101 / 2

    def test_correlation_tiled_weights_points_by_inner_loop(self):
        tiled = get_tiled_kernel("correlation_tiled")
        values = {"N": 64}
        assert tiled.tiled.total_work(values) == (64 * 63 / 2) * 64

    def test_work_functions(self):
        tiled = get_tiled_kernel("covariance_tiled")
        values = {"N": 100}
        tiles = tiled.tile_parameters(values)["NT"]
        work = tiled.work_function(values)
        outer = tiled.outer_work_function(values)
        assert outer(0) == pytest.approx(sum(work(0, j) for j in range(tiles)))
