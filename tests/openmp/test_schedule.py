"""Tests for the OpenMP schedule chunkers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openmp import Chunk, dynamic_chunks, guided_chunks, static_chunked_schedule, static_schedule


def covered_iterations(chunks):
    covered = []
    for chunk in chunks:
        covered.extend(range(chunk.first, chunk.last + 1))
    return covered


class TestChunk:
    def test_size(self):
        assert Chunk(3, 7).size == 5

    def test_empty_chunk_rejected(self):
        with pytest.raises(ValueError):
            Chunk(5, 4)


class TestStatic:
    def test_even_split(self):
        chunks = static_schedule(12, 3)
        assert [c.size for c in chunks] == [4, 4, 4]
        assert [c.thread for c in chunks] == [0, 1, 2]

    def test_remainder_goes_to_first_threads(self):
        chunks = static_schedule(10, 4)
        assert [c.size for c in chunks] == [3, 3, 2, 2]

    def test_more_threads_than_iterations(self):
        chunks = static_schedule(3, 8)
        assert len(chunks) == 3
        assert all(c.size == 1 for c in chunks)

    def test_zero_iterations(self):
        assert static_schedule(0, 4) == []

    def test_contiguous_coverage(self):
        assert covered_iterations(static_schedule(17, 5)) == list(range(1, 18))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            static_schedule(10, 0)
        with pytest.raises(ValueError):
            static_schedule(-1, 4)


class TestStaticChunked:
    def test_round_robin_threads(self):
        chunks = static_chunked_schedule(10, 3, 2)
        assert [c.thread for c in chunks] == [0, 1, 2, 0, 1]

    def test_last_chunk_may_be_short(self):
        chunks = static_chunked_schedule(7, 2, 3)
        assert [c.size for c in chunks] == [3, 3, 1]

    def test_coverage(self):
        assert covered_iterations(static_chunked_schedule(23, 4, 5)) == list(range(1, 24))

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            static_chunked_schedule(10, 2, 0)


class TestDynamic:
    def test_chunks_have_no_thread(self):
        chunks = dynamic_chunks(10, 4)
        assert all(c.thread is None for c in chunks)

    def test_coverage_and_sizes(self):
        chunks = dynamic_chunks(10, 4)
        assert [c.size for c in chunks] == [4, 4, 2]
        assert covered_iterations(chunks) == list(range(1, 11))

    def test_chunk_one_is_openmp_default(self):
        assert len(dynamic_chunks(7, 1)) == 7


class TestGuided:
    def test_decreasing_chunk_sizes(self):
        chunks = guided_chunks(100, 4)
        sizes = [c.size for c in chunks]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_chunk_respected(self):
        chunks = guided_chunks(100, 4, min_chunk=8)
        assert all(c.size >= 8 or c is chunks[-1] for c in chunks)

    def test_coverage(self):
        assert covered_iterations(guided_chunks(57, 3, 2)) == list(range(1, 58))


@settings(max_examples=60)
@given(total=st.integers(0, 300), threads=st.integers(1, 16))
def test_property_static_partitions_exactly(total, threads):
    chunks = static_schedule(total, threads)
    assert covered_iterations(chunks) == list(range(1, total + 1))
    sizes = [c.size for c in chunks]
    if sizes:
        assert max(sizes) - min(sizes) <= 1


@settings(max_examples=60)
@given(total=st.integers(0, 300), threads=st.integers(1, 16), chunk=st.integers(1, 32))
def test_property_every_schedule_partitions_exactly(total, threads, chunk):
    for chunks in (
        static_chunked_schedule(total, threads, chunk),
        dynamic_chunks(total, chunk),
        guided_chunks(total, threads, chunk),
    ):
        assert covered_iterations(chunks) == list(range(1, total + 1))


class TestFromString:
    """ScheduleKind.from_string / ScheduleSpec.parse — the one shared parser."""

    def test_plain_kinds(self):
        from repro.openmp import ScheduleKind

        assert ScheduleKind.from_string("static") is ScheduleKind.STATIC
        assert ScheduleKind.from_string("dynamic") is ScheduleKind.DYNAMIC
        assert ScheduleKind.from_string("guided") is ScheduleKind.GUIDED
        assert ScheduleKind.from_string("adaptive") is ScheduleKind.ADAPTIVE
        assert ScheduleKind.from_string("static_chunked") is ScheduleKind.STATIC_CHUNKED

    def test_case_whitespace_and_enum_passthrough(self):
        from repro.openmp import ScheduleKind

        assert ScheduleKind.from_string("  Dynamic ") is ScheduleKind.DYNAMIC
        assert ScheduleKind.from_string(ScheduleKind.GUIDED) is ScheduleKind.GUIDED

    def test_chunk_suffix_promotes_static(self):
        from repro.openmp import ScheduleKind, ScheduleSpec

        # OpenMP semantics: schedule(static, c) is the chunked static family
        assert ScheduleKind.from_string("static,16") is ScheduleKind.STATIC_CHUNKED
        spec = ScheduleSpec.parse("dynamic, 8")
        assert spec.kind is ScheduleKind.DYNAMIC
        assert spec.chunk_size == 8

    def test_round_trip_through_str(self):
        from repro.openmp import ScheduleSpec

        for text in ("static", "dynamic,4", "guided,2", "adaptive"):
            assert str(ScheduleSpec.parse(text)) == text

    def test_unknown_names_and_bad_chunks_are_rejected(self):
        from repro.openmp import ScheduleKind, ScheduleSpec

        with pytest.raises(ValueError, match="unknown schedule"):
            ScheduleKind.from_string("roundrobin")
        with pytest.raises(ValueError, match="invalid chunk"):
            ScheduleSpec.parse("dynamic,many")
        with pytest.raises(ValueError, match="at least 1"):
            ScheduleSpec.parse("dynamic,0")

    def test_to_openmp_spellings(self):
        from repro.openmp import ScheduleKind, ScheduleSpec

        assert ScheduleSpec.parse("static").to_openmp() == "static"
        assert ScheduleSpec.parse("static,8").to_openmp() == "static, 8"
        assert ScheduleSpec.parse("dynamic,4").to_openmp() == "dynamic, 4"
        with pytest.raises(ValueError, match="no OpenMP spelling"):
            ScheduleKind.ADAPTIVE.to_openmp()


class TestScheduleChunksDispatch:
    def test_dispatches_each_family(self):
        from repro.openmp import schedule_chunks

        assert [c.size for c in schedule_chunks("static", 12, 3)] == [4, 4, 4]
        assert [c.size for c in schedule_chunks("static,5", 12, 3)] == [5, 5, 2]
        assert [c.size for c in schedule_chunks("dynamic,4", 10, 2)] == [4, 4, 2]
        assert covered_iterations(schedule_chunks("guided,2", 57, 3)) == list(range(1, 58))

    def test_adaptive_needs_the_runtime(self):
        from repro.openmp import schedule_chunks

        with pytest.raises(ValueError, match="cost model"):
            schedule_chunks("adaptive", 100, 4)
