"""Tests for the simulated-time OpenMP executor."""

import pytest

from repro.core import RecoveryStrategy, collapse
from repro.ir import Loop, LoopNest
from repro.openmp import (
    CostModel,
    RecoveryCosts,
    ScheduleKind,
    simulate_collapsed_static,
    simulate_outer_parallel,
)


@pytest.fixture
def correlation_nest():
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N"), Loop.make("k", 0, "N")],
        parameters=["N"],
        name="correlation",
    )


@pytest.fixture
def rectangular_nest():
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "N")],
        parameters=["N"],
        name="rectangular",
    )


PARAMS = {"N": 96}
THREADS = 12


class TestOuterParallel:
    def test_total_busy_equals_serial_work_for_static(self, correlation_nest):
        result = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        assert result.total_busy == pytest.approx(result.serial_time)

    def test_static_triangular_is_imbalanced(self, correlation_nest):
        """Fig. 2: the first thread owns the widest rows of the triangle."""
        result = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        busy = result.busy_times()
        assert busy[0] > 1.5 * busy[-1]
        assert result.load_imbalance > 1.5

    def test_static_rectangular_is_balanced(self, rectangular_nest):
        result = simulate_outer_parallel(rectangular_nest, PARAMS, THREADS)
        assert result.load_imbalance == pytest.approx(1.0, abs=0.05)

    def test_dynamic_balances_triangular_at_a_dispatch_cost(self, correlation_nest):
        static = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        dynamic = simulate_outer_parallel(
            correlation_nest, PARAMS, THREADS, ScheduleKind.DYNAMIC, chunk_size=1
        )
        assert dynamic.makespan < static.makespan
        assert dynamic.total_overhead > 0

    def test_dynamic_overhead_grows_with_chunk_count(self, correlation_nest):
        fine = simulate_outer_parallel(correlation_nest, PARAMS, THREADS, ScheduleKind.DYNAMIC, chunk_size=1)
        coarse = simulate_outer_parallel(correlation_nest, PARAMS, THREADS, ScheduleKind.DYNAMIC, chunk_size=8)
        assert fine.total_overhead > coarse.total_overhead

    def test_guided_schedule_runs(self, correlation_nest):
        result = simulate_outer_parallel(correlation_nest, PARAMS, THREADS, ScheduleKind.GUIDED, chunk_size=2)
        assert result.makespan > 0

    def test_speedup_bounded_by_thread_count(self, correlation_nest):
        result = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        assert 1.0 <= result.speedup <= THREADS + 1e-9

    def test_single_thread_makespan_is_serial_time(self, correlation_nest):
        result = simulate_outer_parallel(correlation_nest, PARAMS, threads=1)
        assert result.makespan == pytest.approx(result.serial_time)

    def test_work_function_override(self, correlation_nest):
        result = simulate_outer_parallel(
            correlation_nest, PARAMS, THREADS, work_function=lambda i: 1.0
        )
        assert result.serial_time == pytest.approx(PARAMS["N"] - 1)


class TestCollapsedStatic:
    def test_collapsing_beats_outer_static_on_triangles(self, correlation_nest):
        """The headline claim of the paper for the static baseline."""
        collapsed = collapse(correlation_nest, 2)
        baseline = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        ours = simulate_collapsed_static(collapsed, PARAMS, THREADS)
        assert ours.makespan < baseline.makespan
        assert ours.load_imbalance < baseline.load_imbalance

    def test_collapsed_is_nearly_balanced(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        result = simulate_collapsed_static(collapsed, PARAMS, THREADS)
        assert result.load_imbalance < 1.1

    def test_recovery_overhead_is_charged_once_per_chunk(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        costs = RecoveryCosts(costly_recovery=1000.0, increment=0.0)
        model = CostModel(correlation_nest, costs)
        result = simulate_collapsed_static(collapsed, PARAMS, THREADS, cost_model=model)
        # 12 chunks -> 12 costly recoveries
        assert result.total_overhead == pytest.approx(12 * 1000.0)

    def test_per_iteration_recovery_costs_more(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        chunked = simulate_collapsed_static(collapsed, PARAMS, THREADS)
        naive = simulate_collapsed_static(
            collapsed, PARAMS, THREADS, recovery=RecoveryStrategy.PER_ITERATION
        )
        assert naive.total_overhead > chunked.total_overhead
        assert naive.makespan > chunked.makespan

    def test_serial_time_excludes_overhead(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        baseline = simulate_outer_parallel(correlation_nest, PARAMS, THREADS)
        ours = simulate_collapsed_static(collapsed, PARAMS, THREADS)
        assert ours.serial_time == pytest.approx(baseline.serial_time)

    def test_dynamic_schedule_of_collapsed_loop(self, correlation_nest):
        """Possible but pointless, as the paper notes — every chunk pays dispatch."""
        collapsed = collapse(correlation_nest, 2)
        result = simulate_collapsed_static(
            collapsed, PARAMS, THREADS, schedule=ScheduleKind.DYNAMIC, chunk_size=64
        )
        assert result.total_overhead > 0

    def test_work_function_override(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        result = simulate_collapsed_static(
            collapsed, PARAMS, THREADS, work_function=lambda i, j: 2.0
        )
        assert result.serial_time == pytest.approx(2.0 * (PARAMS["N"] * (PARAMS["N"] - 1) / 2))

    def test_empty_domain(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        result = simulate_collapsed_static(collapsed, {"N": 1}, THREADS)
        assert result.makespan == 0.0


class TestLtmpCrossover:
    def test_dynamic_beats_collapsed_static_for_ltmp_shape(self):
        """The paper's one negative case: the non-collapsible inner triangular
        loop keeps the collapsed static schedule imbalanced."""
        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
            parameters=["N"],
            name="ltmp",
        )
        params = {"N": 96}
        collapsed = collapse(nest, 2)
        ours = simulate_collapsed_static(collapsed, params, THREADS)
        dynamic = simulate_outer_parallel(nest, params, THREADS, ScheduleKind.DYNAMIC, chunk_size=1)
        static = simulate_outer_parallel(nest, params, THREADS)
        assert ours.makespan < static.makespan          # still far better than static
        assert dynamic.makespan < ours.makespan         # but dynamic wins, as in Fig. 9
