"""Tests for the iteration cost models."""

import pytest

from repro.ir import Loop, LoopNest
from repro.openmp import CostModel, RecoveryCosts
from repro.symbolic import Polynomial


@pytest.fixture
def correlation_nest():
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N"), Loop.make("k", 0, "N")],
        parameters=["N"],
        name="correlation",
    )


class TestRecoveryCosts:
    def test_defaults_are_positive(self):
        costs = RecoveryCosts()
        assert costs.costly_recovery > costs.increment > 0
        assert costs.unit_work > 0

    def test_scaled(self):
        scaled = RecoveryCosts().scaled(2.0)
        assert scaled.costly_recovery == RecoveryCosts().costly_recovery * 2
        assert scaled.unit_work == RecoveryCosts().unit_work  # work is not an overhead


class TestWorkPolynomials:
    def test_work_below_whole_nest(self, correlation_nest):
        model = CostModel(correlation_nest)
        N = Polynomial.variable("N")
        assert model.work_below(0) == N * (N * (N - 1)) / 2

    def test_work_below_parallel_level(self, correlation_nest):
        model = CostModel(correlation_nest)
        N, i = Polynomial.variable("N"), Polynomial.variable("i")
        # one outer iteration runs (N - 1 - i) * N inner iterations
        assert model.work_below(1) == (N - 1 - i) * N

    def test_work_below_collapse_level(self, correlation_nest):
        model = CostModel(correlation_nest)
        assert model.work_below(2) == Polynomial.variable("N")

    def test_work_below_innermost_is_one(self, correlation_nest):
        model = CostModel(correlation_nest)
        assert model.work_below(3) == Polynomial.constant(1)

    def test_invalid_level(self, correlation_nest):
        with pytest.raises(ValueError):
            CostModel(correlation_nest).work_below(4)


class TestNumericEvaluation:
    def test_iteration_work(self, correlation_nest):
        model = CostModel(correlation_nest)
        # row i=0 of a N=10 correlation: 9 * 10 inner iterations
        assert model.iteration_work((0,), {"N": 10}) == 90.0
        assert model.iteration_work((8,), {"N": 10}) == 10.0

    def test_iteration_work_at_collapse_depth(self, correlation_nest):
        model = CostModel(correlation_nest)
        assert model.iteration_work((3, 5), {"N": 10}) == 10.0

    def test_unit_work_scales_everything(self, correlation_nest):
        model = CostModel(correlation_nest, RecoveryCosts(unit_work=2.0))
        assert model.iteration_work((0,), {"N": 10}) == 180.0

    def test_negative_extrapolation_clamped_to_zero(self, correlation_nest):
        model = CostModel(correlation_nest)
        # out-of-domain row: the polynomial goes negative, the cost must not
        assert model.iteration_work((100,), {"N": 10}) == 0.0

    def test_total_work(self, correlation_nest):
        model = CostModel(correlation_nest)
        assert model.total_work({"N": 10}) == 45 * 10

    def test_compile_work_matches_interpreted(self, correlation_nest):
        model = CostModel(correlation_nest)
        compiled = model.compile_work(1, {"N": 12})
        for i in range(11):
            assert compiled(i) == model.iteration_work((i,), {"N": 12})

    def test_compile_work_for_collapsed_depth(self, correlation_nest):
        model = CostModel(correlation_nest)
        compiled = model.compile_work(2, {"N": 12})
        assert compiled(0, 1) == 12.0


class TestCalibratedCosts:
    """RecoveryCosts.calibrated: re-expressing the model in measured seconds."""

    def test_calibration_rescales_unit_and_overheads_together(self):
        from repro.runtime.profile import BackendProfile, ChunkProfile

        costs = RecoveryCosts(unit_work=1.0, costly_recovery=40.0, increment=0.15,
                              dynamic_dispatch=25.0, parallel_startup=2.0)
        profile = BackendProfile(
            backend="engine",
            segments=[ChunkProfile(first_pc=1, last_pc=100, seconds=2e-4)],
        )
        calibrated = costs.calibrated(profile)
        seconds = 2e-4 / 100
        assert calibrated.unit_work == pytest.approx(seconds)
        # the relative structure survives the change of unit
        assert calibrated.costly_recovery / calibrated.unit_work == pytest.approx(40.0)
        assert calibrated.dynamic_dispatch / calibrated.unit_work == pytest.approx(25.0)
        assert calibrated.increment / calibrated.unit_work == pytest.approx(0.15)
        assert calibrated.parallel_startup / calibrated.unit_work == pytest.approx(2.0)

    def test_cold_profile_falls_back_to_analytic_model(self):
        from repro.runtime.profile import BackendProfile

        costs = RecoveryCosts()
        assert costs.calibrated(None) is costs
        assert costs.calibrated(BackendProfile(backend="engine")) is costs

    def test_zero_size_segments_fall_back(self):
        from repro.runtime.profile import BackendProfile, ChunkProfile

        costs = RecoveryCosts()
        profile = BackendProfile(
            backend="engine",
            segments=[ChunkProfile(first_pc=5, last_pc=4, seconds=1.0)],
        )
        assert costs.calibrated(profile) is costs

    def test_calibrated_costs_drive_the_cost_model(self, correlation_nest):
        from repro.runtime.profile import BackendProfile, ChunkProfile

        profile = BackendProfile(
            backend="engine",
            segments=[ChunkProfile(first_pc=1, last_pc=10, seconds=5e-5)],
        )
        calibrated = RecoveryCosts().calibrated(profile)
        model = CostModel(correlation_nest, calibrated)
        # iteration_work now prices in measured seconds: 90 inner iterations
        assert model.iteration_work((0,), {"N": 10}) == pytest.approx(90 * 5e-6)
