"""Tests for the multiprocessing executor (the wall-clock substitute for OpenMP threads)."""

import pytest

from repro.openmp import Chunk, ScheduleKind, ScheduleSpec, run_chunks_in_processes, run_serial
from repro.openmp.executor import ParallelRunResult


def triangular_chunk_sum(first_pc: int, last_pc: int, parameter_values) -> int:
    """Top-level picklable worker: sums the recovered outer indices of a chunk.

    Rebuilds the collapsed correlation loop locally (cheap) so the test also
    exercises pickling-free worker construction, the pattern the real
    benchmarks use.
    """
    from repro.core import collapse
    from repro.ir import Loop, LoopNest

    nest = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"], name="corr"
    )
    collapsed = collapse(nest)
    total = 0
    for pc in range(first_pc, last_pc + 1):
        i, j = collapsed.recover_indices(pc, parameter_values)
        total += i + j
    return total


def expected_sum(n: int) -> int:
    return sum(i + j for i in range(n - 1) for j in range(i + 1, n))


class TestSerial:
    def test_run_serial_matches_expected(self):
        n = 20
        result = run_serial(triangular_chunk_sum, n * (n - 1) // 2, {"N": n})
        assert result.results == (expected_sum(n),)
        assert result.workers == 1
        assert result.elapsed_seconds >= 0

    def test_run_serial_reports_a_real_single_chunk_schedule(self):
        # the serial baseline is a static one-thread schedule, and says so:
        # one chunk covering [1, total] on thread 0, schedule recorded —
        # keeping speedup math consistent with the parallel runners
        n = 10
        total = n * (n - 1) // 2
        result = run_serial(triangular_chunk_sum, total, {"N": n})
        assert result.schedule == ScheduleSpec(ScheduleKind.STATIC)
        assert result.chunks == (Chunk(1, total, 0),)

    def test_run_serial_empty_range(self):
        result = run_serial(triangular_chunk_sum, 0, {"N": 1})
        assert result.results == ()
        assert result.chunks == ()
        assert result.schedule.kind is ScheduleKind.STATIC


class TestProcesses:
    def test_partial_results_sum_to_serial_result(self):
        n = 20
        total = n * (n - 1) // 2
        result = run_chunks_in_processes(triangular_chunk_sum, total, {"N": n}, workers=3)
        assert sum(result.results) == expected_sum(n)
        assert len(result.chunks) == 3

    def test_single_worker_runs_inline(self):
        n = 12
        total = n * (n - 1) // 2
        result = run_chunks_in_processes(triangular_chunk_sum, total, {"N": n}, workers=1)
        assert sum(result.results) == expected_sum(n)

    def test_custom_chunks(self):
        n = 12
        total = n * (n - 1) // 2
        chunks = [Chunk(1, 10, 0), Chunk(11, total, 1)]
        result = run_chunks_in_processes(triangular_chunk_sum, total, {"N": n}, workers=2, chunks=chunks)
        assert sum(result.results) == expected_sum(n)
        assert result.chunks == tuple(chunks)

    def test_empty_total(self):
        result = run_chunks_in_processes(triangular_chunk_sum, 0, {"N": 1}, workers=2)
        assert result == ParallelRunResult(results=(), elapsed_seconds=0.0, chunks=(), workers=2)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            run_chunks_in_processes(triangular_chunk_sum, 10, {"N": 5}, workers=0)

    def test_schedule_string_cuts_the_chunks(self):
        n = 12
        total = n * (n - 1) // 2
        result = run_chunks_in_processes(
            triangular_chunk_sum, total, {"N": n}, workers=2, schedule="dynamic,25"
        )
        assert sum(result.results) == expected_sum(n)
        assert [chunk.size for chunk in result.chunks] == [25, 25, 16]
        assert result.schedule == ScheduleSpec(ScheduleKind.DYNAMIC, 25)

    def test_unknown_schedule_is_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            run_chunks_in_processes(
                triangular_chunk_sum, 10, {"N": 5}, workers=2, schedule="roundrobin"
            )
