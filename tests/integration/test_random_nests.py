"""Property-based integration tests over randomly generated affine loop nests.

Hypothesis builds random nests of the Fig. 5 model (each bound an affine
combination of the outer iterators and the parameter, kept non-degenerate),
and the whole pipeline — ranking, inversion, collapse, generated Python code
— must round-trip on them.  This is the broad safety net behind the
hand-picked shapes used elsewhere in the suite.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import collapse, compile_collapsed_loop, ranking_polynomial, build_unranking
from repro.ir import Loop, LoopNest, enumerate_iterations, iteration_count


@st.composite
def affine_nests_depth2(draw):
    """Random 2-deep nests: i in [0, N), j in [a*i + c, b*i + N + d)."""
    lower_slope = draw(st.integers(min_value=0, max_value=2))
    lower_offset = draw(st.integers(min_value=0, max_value=3))
    upper_slope = draw(st.integers(min_value=lower_slope, max_value=3))
    upper_offset = draw(st.integers(min_value=lower_offset + 1, max_value=lower_offset + 4))
    nest = LoopNest(
        [
            Loop.make("i", 0, "N"),
            Loop.make(
                "j",
                f"{lower_slope}*i + {lower_offset}",
                f"{upper_slope}*i + N + {upper_offset}",
            ),
        ],
        parameters=["N"],
        name="random2",
    )
    n = draw(st.integers(min_value=1, max_value=8))
    return nest, {"N": n}


@st.composite
def affine_nests_depth3(draw):
    """Random 3-deep simplex-like nests with bounded per-index degree.

    The (lower, upper) combinations are restricted to pairs whose range is
    non-empty everywhere in the domain — the validity condition of the
    affine loop model (nests violating it are rejected by ``collapse`` with
    an explicit error; see ``test_empty_inner_range_is_rejected``).
    """
    mid_offset = draw(st.integers(min_value=1, max_value=3))
    inner_lower, inner_upper = draw(
        st.sampled_from(
            [
                ("0", "i + 1"),
                ("0", "j + 2"),
                ("0", "i + j + 1"),
                ("j", "j + 2"),
                ("j", "i + j + 1"),
                ("i", "i + 1"),
                ("i", "i + j + 1"),
            ]
        )
    )
    nest = LoopNest(
        [
            Loop.make("i", 0, "N"),
            Loop.make("j", 0, f"i + {mid_offset}"),
            Loop.make("k", inner_lower, inner_upper),
        ],
        parameters=["N"],
        name="random3",
    )
    n = draw(st.integers(min_value=1, max_value=6))
    return nest, {"N": n}


def test_empty_inner_range_is_rejected():
    """A nest whose inner range becomes empty inside the domain (k from i to
    j+2 with j possibly much smaller than i) is outside the Fig. 5 model; the
    collapser must refuse it instead of silently dropping iterations."""
    from repro.core import CollapseError, UnrankingError

    nest = LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", "i", "j + 2")],
        parameters=["N"],
        name="degenerate",
    )
    with pytest.raises((CollapseError, UnrankingError), match="does not count|negative"):
        collapse(nest)


@settings(max_examples=20, deadline=None)
@given(case=affine_nests_depth2())
def test_property_depth2_collapse_round_trips(case):
    nest, values = case
    assume(iteration_count(nest, values) > 0)
    collapsed = collapse(nest)
    assert collapsed.validate(values)


@settings(max_examples=15, deadline=None)
@given(case=affine_nests_depth3())
def test_property_depth3_collapse_round_trips(case):
    nest, values = case
    assume(iteration_count(nest, values) > 0)
    collapsed = collapse(nest)
    assert collapsed.validate(values)


@settings(max_examples=15, deadline=None)
@given(case=affine_nests_depth2())
def test_property_ranking_total_matches_enumeration(case):
    nest, values = case
    ranking = ranking_polynomial(nest)
    assert ranking.total_iterations(values) == iteration_count(nest, values)


@settings(max_examples=10, deadline=None)
@given(case=affine_nests_depth2())
def test_property_generated_python_matches_enumeration(case):
    nest, values = case
    assume(iteration_count(nest, values) > 0)
    collapsed = collapse(nest)
    assume(collapsed.uses_only_closed_forms())
    run = compile_collapsed_loop(collapsed)
    visited = []
    run(lambda *indices: visited.append(indices), **values)
    assert visited == list(enumerate_iterations(nest, values))


@settings(max_examples=10, deadline=None)
@given(case=affine_nests_depth3())
def test_property_unranking_maps_every_rank_into_the_domain(case):
    nest, values = case
    assume(iteration_count(nest, values) > 0)
    ranking = ranking_polynomial(nest)
    unranking = build_unranking(ranking)
    domain = nest.domain()
    for pc in range(1, ranking.total_iterations(values) + 1):
        assert domain.contains(unranking.recover(pc, values), values)


# ---------------------------------------------------------------------- #
# runtime engine equivalence
# ---------------------------------------------------------------------- #
#: visit grid large enough for every bound the depth-2 strategy can draw
#: (i < N <= 8, j < 3*i + N + 7 < 36)
_GRID = (16, 48)


def _mark_visit(data, indices, values):
    data["visits"][indices] += 1.0


def _mark_visits_chunk(data, indices, values):
    # rows of one chunk are distinct iterations (unranking is a bijection),
    # so the fancy-indexed scatter increments every visited cell exactly once
    data["visits"][indices[:, 0], indices[:, 1]] += 1.0


@pytest.fixture(scope="module")
def runtime_engine():
    from repro.runtime import RuntimeEngine

    with RuntimeEngine(workers=2) as engine:
        yield engine


@settings(max_examples=6, deadline=None)
@given(case=affine_nests_depth2(), schedule=st.sampled_from(["static", "dynamic", "adaptive"]))
def test_property_engine_visits_match_run_original(case, schedule, runtime_engine):
    """Element-wise equivalence of engine execution vs the original order.

    Both paths bump a per-iteration counter in a visits grid; the engine
    writes through shared memory from two worker processes, the reference
    enumerates the original nest in this process.  Equal grids mean every
    iteration ran exactly once, on exactly the right indices, under every
    schedule policy.
    """
    import numpy as np

    from repro.runtime import SharedBuffers, build_plan

    nest, values = case
    assume(iteration_count(nest, values) > 0)

    expected = np.zeros(_GRID)
    for indices in enumerate_iterations(nest, values):
        expected[indices] += 1.0

    plan = build_plan(
        nest, values, schedule=schedule,
        iteration_op=_mark_visit, chunk_op=_mark_visits_chunk,
    )
    with SharedBuffers.create({"visits": np.zeros(_GRID)}) as buffers:
        result = runtime_engine.execute(plan, buffers=buffers)
        visits = buffers.snapshot()["visits"]
    runtime_engine.forget(plan)

    assert sum(result.results) == iteration_count(nest, values)
    assert np.array_equal(visits, expected)


# ---------------------------------------------------------------------- #
# native backend equivalence
# ---------------------------------------------------------------------- #
def _native_or_skip():
    from repro.native import native_available

    if not native_available():
        pytest.skip("no C compiler on this machine")


@settings(max_examples=4, deadline=None)
@given(case=affine_nests_depth2(), schedule=st.sampled_from(["static", "dynamic,3"]))
def test_property_native_matches_engine_and_batch(case, schedule, runtime_engine):
    """Differential property over random nests: the compiled translation
    unit recovers the same iteration set as :class:`BatchRecovery` (every
    ``pc``, hence every first/last rank of every level) and produces the
    same visits grid as the runtime engine — under both the once-per-thread
    and the once-per-chunk native recovery schemes."""
    import numpy as np

    _native_or_skip()
    from repro.core import batch_recovery, collapse
    from repro.native import compile_collapsed
    from repro.runtime import SharedBuffers, build_plan

    nest, values = case
    assume(iteration_count(nest, values) > 0)
    collapsed = collapse(nest)
    total = collapsed.total_iterations(values)

    module = compile_collapsed(
        collapsed, body="visits(i, j) += 1.0;", arrays=("visits",), schedule=schedule
    )
    native_indices = module.recover_range(1, total, values)
    batch_indices = batch_recovery(collapsed).recover_range(1, total, values)
    assert np.array_equal(native_indices, batch_indices)
    assert module.total(values) == total

    native_visits = np.zeros(_GRID)
    result = module.run({"visits": native_visits}, values, threads=2)
    assert sum(result.results) == total

    plan = build_plan(
        nest, values, schedule="static",
        iteration_op=_mark_visit, chunk_op=_mark_visits_chunk,
    )
    with SharedBuffers.create({"visits": np.zeros(_GRID)}) as buffers:
        runtime_engine.execute(plan, buffers=buffers)
        engine_visits = buffers.snapshot()["visits"]
    runtime_engine.forget(plan)

    assert np.array_equal(native_visits, engine_visits)


@settings(max_examples=4, deadline=None)
@given(case=affine_nests_depth2(), schedule=st.sampled_from(["static", "adaptive"]))
def test_property_hybrid_matches_engine_and_native(case, schedule, runtime_engine):
    """Differential property over random nests for the *hybrid* backend:
    engine-scheduled chunks executed through the compiled
    ``repro_run_range`` must produce the same visits grid as (a) the pure
    Python engine and (b) the whole-range native ``repro_run`` — each
    worker having attached the parent-compiled shared object by path."""
    import numpy as np

    _native_or_skip()
    from repro.core import collapse
    from repro.native import compile_collapsed
    from repro.runtime import SharedBuffers, build_plan

    nest, values = case
    assume(iteration_count(nest, values) > 0)

    expected = np.zeros(_GRID)
    for indices in enumerate_iterations(nest, values):
        expected[indices] += 1.0

    hybrid_plan = build_plan(
        nest, values, schedule=schedule,
        iteration_op=_mark_visit, chunk_op=_mark_visits_chunk,
        native=True, c_body="visits(i, j) += 1.0;", c_arrays=("visits",),
    )
    assert hybrid_plan.native_spec is not None
    with SharedBuffers.create({"visits": np.zeros(_GRID)}) as buffers:
        result = runtime_engine.execute(hybrid_plan, buffers=buffers)
        hybrid_visits = buffers.snapshot()["visits"]
    runtime_engine.forget(hybrid_plan)
    assert result.backend == "hybrid"
    assert sum(result.results) == iteration_count(nest, values)
    assert np.array_equal(hybrid_visits, expected)

    native_visits = np.zeros(_GRID)
    module = compile_collapsed(
        collapse(nest), body="visits(i, j) += 1.0;", arrays=("visits",)
    )
    module.run({"visits": native_visits}, values, threads=2)
    assert np.array_equal(native_visits, hybrid_visits)


# ---------------------------------------------------------------------- #
# transformed nests (tiled / skewed) and the profile-guided auto backend
# ---------------------------------------------------------------------- #
@st.composite
def transformed_nests(draw):
    """Random *transformed* nests: a skewed rectangle or the tile loops of a
    tiled triangle — the domains the paper's Pluto-generated inputs have
    after classic transformations, which the pipeline must handle exactly
    like hand-written nests.

    Returns ``(nest, values, grid_shape, c_body)`` — the grid is sized per
    case (skewing slides the inner extent by ``factor * (T - 1)``).
    """
    from repro.transforms import skew, tile_triangular

    if draw(st.booleans()):
        factor = draw(st.integers(min_value=1, max_value=2))
        t_extent = draw(st.integers(min_value=2, max_value=5))
        x_extent = draw(st.integers(min_value=3, max_value=8))
        base = LoopNest(
            [Loop.make("t", 0, "T"), Loop.make("x", 0, "N")],
            parameters=["T", "N"],
            name="random_rect",
        )
        nest = skew(base, target="x", source="t", factor=factor)
        values = {"T": t_extent, "N": x_extent}
        grid = (t_extent, factor * t_extent + x_extent)
        body = "visits(t, x) += 1.0;"
    else:
        n = draw(st.integers(min_value=6, max_value=16))
        tile_size = draw(st.integers(min_value=2, max_value=5))
        triangle = LoopNest(
            [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
            parameters=["N"],
            name="random_triangle",
        )
        tiled = tile_triangular(triangle, tile_size=tile_size)
        values = tiled.tile_parameters({"N": n})
        nest = tiled.tile_nest
        grid = (values["NT"], values["NT"])
        body = "visits(it, jt) += 1.0;"
    return nest, values, grid, body


@settings(max_examples=6, deadline=None)
@given(
    case=transformed_nests(),
    schedule=st.sampled_from(["static", "dynamic", "adaptive"]),
)
def test_property_transformed_engine_visits_match_run_original(case, schedule, runtime_engine):
    """The engine-equivalence property extended to transformed domains:
    tiled/skewed nests must execute element-for-element like their original
    enumeration order, under every schedule policy."""
    import numpy as np

    from repro.runtime import SharedBuffers, build_plan

    nest, values, grid, _body = case
    assume(iteration_count(nest, values) > 0)

    expected = np.zeros(grid)
    for indices in enumerate_iterations(nest, values):
        expected[indices] += 1.0

    plan = build_plan(
        nest, values, schedule=schedule,
        iteration_op=_mark_visit, chunk_op=_mark_visits_chunk,
    )
    with SharedBuffers.create({"visits": np.zeros(grid)}) as buffers:
        result = runtime_engine.execute(plan, buffers=buffers)
        visits = buffers.snapshot()["visits"]
    runtime_engine.forget(plan)

    assert sum(result.results) == iteration_count(nest, values)
    assert np.array_equal(visits, expected)


@pytest.fixture(scope="module")
def runtime_session():
    from repro.runtime import RuntimeSession

    with RuntimeSession(workers=2) as session:
        yield session


@settings(max_examples=6, deadline=None)
@given(
    case=transformed_nests(),
    schedule=st.sampled_from(["static", "dynamic", "adaptive"]),
)
def test_property_auto_backend_matches_original_on_transformed_nests(
    case, schedule, runtime_session
):
    """``backend="auto"`` on transformed nests: whatever substrate the
    profile-guided choice resolves to (explore or exploit, engine or hybrid
    — the ``c_body`` makes hybrid viable where a compiler exists), the
    visits grid must equal the original enumeration order."""
    import numpy as np

    from repro.native import native_available

    nest, values, grid, body = case
    assume(iteration_count(nest, values) > 0)

    expected = np.zeros(grid)
    for indices in enumerate_iterations(nest, values):
        expected[indices] += 1.0

    data = {"visits": np.zeros(grid)}
    kwargs = dict(iteration_op=_mark_visit, chunk_op=_mark_visits_chunk)
    if native_available():
        kwargs.update(c_body=body, c_arrays=("visits",))
    runtime_session.run(
        nest, values, data=data, schedule=schedule, backend="auto", **kwargs
    )
    assert np.array_equal(data["visits"], expected)


# ---------------------------------------------------------------------- #
# exact recovery at magnitudes straddling 2^45 (all four backends)
# ---------------------------------------------------------------------- #
# the independent big-int reference unranker comes from the shared
# ``exact_reference_recover`` session fixture (tests/conftest.py)


@st.composite
def huge_simplex_cases(draw):
    """Random depth-3 simplex-like nests instantiated so the collapsed trip
    count lands below, around, or above 2^45 — the historical float-trust
    threshold of the batch path (and the practical limit of the old
    double/rint brackets in the generated C)."""
    inner_lower, inner_upper = draw(
        st.sampled_from([("0", "i + 1"), ("0", "j + 2"), ("j", "i + j + 1"), ("0", "i + j + 1")])
    )
    nest = LoopNest(
        [
            Loop.make("i", 0, "N"),
            Loop.make("j", 0, "i + 1"),
            Loop.make("k", inner_lower, inner_upper),
        ],
        parameters=["N"],
        name="huge_random3",
    )
    n = draw(st.sampled_from([40_000, 60_000, 90_000, 150_000, 400_000]))
    return nest, {"N": n}


@settings(max_examples=5, deadline=None)
@given(case=huge_simplex_cases())
def test_property_recovery_is_exact_straddling_2_to_45(case, exact_reference_recover):
    """Differential property: at probe ranks spanning both sides of 2^45,
    the scalar recovery, the batch recovery (the python/engine substrate)
    and — where a compiler exists — the compiled ``repro_recover_range``
    and the hybrid ``repro_run_range`` seed all agree with an independent
    big-int reference."""
    import numpy as np

    from repro.core import batch_recovery

    nest, values = case
    collapsed = collapse(nest)
    total = collapsed.total_iterations(values)
    n = values["N"]

    pcs = {1, 2, total // 2, total - 1, total}
    for i in (n - 1, n // 2):
        rank = collapsed.rank_of((i, 0, 0), values)  # first rank of an outer level
        pcs.update({rank - 1, rank, rank + 1})
    for point in (2**45, 2**50):
        if 1 < point <= total:
            pcs.update({point - 1, point, point + 1})
    pcs = sorted(pc for pc in pcs if 1 <= pc <= total)

    expected = [exact_reference_recover(collapsed, pc, values) for pc in pcs]
    batch = batch_recovery(collapsed).recover_pcs(np.array(pcs, dtype=np.int64), values)
    assert [tuple(row) for row in batch] == expected
    assert [collapsed.recover_indices(pc, values) for pc in pcs] == expected

    from repro.native import native_available

    if native_available():
        from repro.native import compile_collapsed

        module = compile_collapsed(collapsed)
        for pc, indices in zip(pcs, expected):
            assert tuple(module.recover_range(pc, pc, values)[0]) == indices, pc
