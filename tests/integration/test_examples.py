"""Smoke tests: every example script must run end to end at a small size."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argument: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), argument],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "script,argument,expected",
    [
        ("quickstart.py", "10", "collapsed execution visited all 45 iterations"),
        ("triangular_matrix_operations.py", "80", "gain vs static"),
        ("pluto_tiled_and_skewed.py", "128", "gain vs static"),
        ("vectorization_and_gpu.py", "32", "warp size"),
        ("hybrid_backend.py", "96", "results identical across backends"),
    ],
)
def test_example_runs_and_prints_its_checks(script, argument, expected):
    result = run_example(script, argument)
    assert result.returncode == 0, result.stdout + result.stderr
    assert expected in result.stdout
