"""End-to-end integration tests: the full pipeline of the paper in one place.

Each test starts from the textual C-like loop nest (the input of the
paper's source-to-source tool), collapses it, and checks one of the paper's
claims on the result: the generated formulas, the generated code, the
semantics on NumPy data, or the scheduling outcome.
"""

import math

import numpy as np
import pytest

from repro import collapse, compile_collapsed_loop, generate_openmp_chunked, parse_loop_nest
from repro.analysis import gain
from repro.core import RecoveryStrategy
from repro.ir import enumerate_iterations
from repro.kernels import get_kernel, verify_kernel
from repro.openmp import ScheduleKind, simulate_collapsed_static, simulate_outer_parallel

CORRELATION_SOURCE = """
#pragma omp parallel for private(j, k) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++)
    S(i, j);
"""


class TestMotivatingExample:
    """Section II: the correlation nest from Fig. 1 to Fig. 4."""

    def test_from_source_to_collapsed_loop(self):
        nest, pragma = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        collapsed = collapse(nest)
        assert pragma.schedule == "static"
        n = 30
        # Fig. 3's loop header: pc runs from 1 to (N-1)N/2
        assert collapsed.total_iterations({"N": n}) == (n - 1) * n // 2
        # and the recovered indices follow the paper's closed forms
        for pc in range(1, collapsed.total_iterations({"N": n}) + 1):
            i, j = collapsed.recover_indices(pc, {"N": n})
            paper_i = math.floor(-(math.sqrt(4 * n * n - 4 * n - 8 * pc + 9) - 2 * n + 1) / 2)
            paper_j = math.floor(-(2 * paper_i * n - 2 * pc - paper_i ** 2 - 3 * paper_i) / 2)
            assert (i, j) == (paper_i, paper_j)

    def test_generated_c_looks_like_figure4(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        source = generate_openmp_chunked(collapse(nest))
        # the structural elements of Fig. 4
        assert "firstprivate(first_iteration)" in source
        assert "csqrt" in source
        assert "j = i + 1;" in source or "j = (i) + (1);" in source or "j = ((i) + (1));" in source

    def test_generated_python_executes_the_same_iterations(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        collapsed = collapse(nest)
        run = compile_collapsed_loop(collapsed, RecoveryStrategy.FIRST_THEN_INCREMENT)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=25)
        assert visited == list(enumerate_iterations(nest, {"N": 25}))


class TestNumericalEquivalence:
    """Section VII: 'outputs of collapsed and non-collapsed programs have been
    compared to ensure the correctness of the collapsed loops'."""

    @pytest.mark.parametrize("name", ["correlation", "utma", "ltmp", "syrk"])
    def test_collapsed_execution_bitwise_matches_reference(self, name):
        kernel = get_kernel(name)
        values = {key: max(10, value // 12) for key, value in kernel.bench_parameters.items()}
        if "K" in values:
            values["K"] = 3
        assert verify_kernel(kernel, values, threads=5)


class TestSchedulingClaims:
    """Section VII, Fig. 9: who wins under which schedule."""

    def test_collapsed_static_beats_original_static_on_correlation(self):
        kernel = get_kernel("correlation")
        values = {"N": 100}
        static = simulate_outer_parallel(kernel.nest, values, 12, ScheduleKind.STATIC)
        collapsed = simulate_collapsed_static(kernel.collapsed(), values, 12)
        assert gain(static.makespan, collapsed.makespan) > 0.3

    def test_collapsed_static_competitive_with_dynamic_on_correlation(self):
        kernel = get_kernel("correlation")
        values = {"N": 100}
        dynamic = simulate_outer_parallel(
            kernel.nest, values, 12, ScheduleKind.DYNAMIC, chunk_size=kernel.dynamic_chunk
        )
        collapsed = simulate_collapsed_static(kernel.collapsed(), values, 12)
        assert gain(dynamic.makespan, collapsed.makespan) > -0.05

    def test_dynamic_wins_on_ltmp(self):
        kernel = get_kernel("ltmp")
        values = {"N": 100}
        dynamic = simulate_outer_parallel(
            kernel.nest, values, 12, ScheduleKind.DYNAMIC, chunk_size=kernel.dynamic_chunk
        )
        collapsed = simulate_collapsed_static(kernel.collapsed(), values, 12)
        assert dynamic.makespan < collapsed.makespan


class TestDepth3Pipeline:
    """Section IV-C: the Figure 6/7 nest, complex radicals included."""

    def test_figure7_style_code_and_execution(self):
        source = """
        for (i = 0; i < N - 1; i++)
          for (j = 0; j < i + 1; j++)
            for (k = j; k < i + 1; k++)
              S(i, j, k);
        """
        nest, _ = parse_loop_nest(source, parameters=["N"])
        collapsed = collapse(nest)
        n = 12
        assert collapsed.total_iterations({"N": n}) == (n ** 3 - n) // 6
        emitted = generate_openmp_chunked(collapsed)
        assert "cpow" in emitted      # the cube root of Fig. 7
        run = compile_collapsed_loop(collapsed)
        visited = []
        run(lambda i, j, k: visited.append((i, j, k)), N=n)
        assert visited == list(enumerate_iterations(nest, {"N": n}))

    def test_numpy_accumulation_through_collapsed_depth3_loop(self):
        source = """
        for (i = 0; i < N - 1; i++)
          for (j = 0; j < i + 1; j++)
            for (k = j; k < i + 1; k++)
              S(i, j, k);
        """
        nest, _ = parse_loop_nest(source, parameters=["N"])
        collapsed = collapse(nest)
        n = 10
        direct = np.zeros((n, n, n))
        for i in range(n - 1):
            for j in range(i + 1):
                for k in range(j, i + 1):
                    direct[i, j, k] += 1
        via_collapse = np.zeros((n, n, n))
        run = compile_collapsed_loop(collapsed)
        run(lambda i, j, k: via_collapse.__setitem__((i, j, k), via_collapse[i, j, k] + 1), N=n)
        assert np.array_equal(direct, via_collapse)
