"""Tests for affine expressions and their parser."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedra import AffineExpr
from repro.symbolic import Polynomial


class TestConstruction:
    def test_build_drops_zero_coefficients(self):
        expr = AffineExpr.build({"i": 0, "j": 2}, 1)
        assert expr.variables() == {"j"}

    def test_constant_expr(self):
        expr = AffineExpr.constant_expr(5)
        assert expr.is_constant()
        assert expr.constant == 5

    def test_variable(self):
        expr = AffineExpr.variable("i")
        assert expr.coefficient("i") == 1
        assert expr.constant == 0

    def test_coerce_int_string_polynomial(self):
        assert AffineExpr.coerce(3).constant == 3
        assert AffineExpr.coerce("i + 1").coefficient("i") == 1
        assert AffineExpr.coerce(Polynomial.variable("N") - 1).coefficient("N") == 1

    def test_coerce_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            AffineExpr.coerce(3.5)

    def test_from_polynomial_rejects_nonlinear(self):
        with pytest.raises(ValueError):
            AffineExpr.from_polynomial(Polynomial.variable("i") ** 2)


class TestParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("i", {"i": 1}),
            ("i + 1", {"i": 1}),
            ("i+1", {"i": 1}),
            ("N - 1", {"N": 1}),
            ("2*i - j + 3", {"i": 2, "j": -1}),
            ("2i + 3j", {"i": 2, "j": 3}),
            ("-i + N", {"i": -1, "N": 1}),
            ("0", {}),
            ("i + j + k", {"i": 1, "j": 1, "k": 1}),
        ],
    )
    def test_coefficients(self, text, expected):
        expr = AffineExpr.parse(text)
        for var, coefficient in expected.items():
            assert expr.coefficient(var) == coefficient

    @pytest.mark.parametrize(
        "text,constant",
        [("i + 1", 1), ("N - 1", -1), ("7", 7), ("-3", -3), ("i", 0), ("1/2", Fraction(1, 2))],
    )
    def test_constants(self, text, constant):
        assert AffineExpr.parse(text).constant == constant

    @pytest.mark.parametrize("text", ["", "i*j", "i**2", "foo(", "+ +"])
    def test_rejects_invalid(self, text):
        with pytest.raises(ValueError):
            AffineExpr.parse(text)

    def test_round_trip_through_polynomial(self):
        expr = AffineExpr.parse("2*i - j + 3")
        assert AffineExpr.from_polynomial(expr.to_polynomial()) == expr


class TestArithmetic:
    def test_addition(self):
        total = AffineExpr.parse("i + 1") + AffineExpr.parse("j - 1")
        assert total == AffineExpr.parse("i + j")

    def test_addition_with_int(self):
        assert (AffineExpr.variable("i") + 3).constant == 3

    def test_subtraction(self):
        assert (AffineExpr.parse("i + 1") - "i") == AffineExpr.constant_expr(1)

    def test_rsub(self):
        result = 1 - AffineExpr.variable("i")
        assert result.coefficient("i") == -1
        assert result.constant == 1

    def test_scalar_multiplication(self):
        doubled = AffineExpr.parse("i + 2") * 2
        assert doubled == AffineExpr.parse("2*i + 4")

    def test_negation(self):
        assert -AffineExpr.parse("i - 1") == AffineExpr.parse("1 - i")

    def test_substitute(self):
        expr = AffineExpr.parse("i + j + 1")
        result = expr.substitute({"j": AffineExpr.parse("i + 1")})
        assert result == AffineExpr.parse("2*i + 2")

    def test_substitute_keeps_unmapped(self):
        expr = AffineExpr.parse("i + N")
        assert expr.substitute({"i": 0}) == AffineExpr.variable("N")

    def test_evaluate(self):
        assert AffineExpr.parse("2*i - j + 3").evaluate({"i": 4, "j": 1}) == 10

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.variable("i").evaluate({})


class TestPrinting:
    def test_str_simple(self):
        assert str(AffineExpr.parse("i + 1")) == "i + 1"

    def test_str_constant_only(self):
        assert str(AffineExpr.constant_expr(0)) == "0"

    def test_c_source(self):
        text = AffineExpr.parse("2*i + 1").to_c_source()
        assert "2" in text and "i" in text


@settings(max_examples=60)
@given(
    ci=st.integers(-5, 5),
    cj=st.integers(-5, 5),
    const=st.integers(-10, 10),
    i=st.integers(-20, 20),
    j=st.integers(-20, 20),
)
def test_property_evaluation_matches_direct_formula(ci, cj, const, i, j):
    expr = AffineExpr.build({"i": ci, "j": cj}, const)
    assert expr.evaluate({"i": i, "j": j}) == ci * i + cj * j + const


@settings(max_examples=60)
@given(
    a=st.integers(-5, 5), b=st.integers(-5, 5), x=st.integers(-10, 10), y=st.integers(-10, 10)
)
def test_property_substitution_composes(a, b, x, y):
    """expr[i -> a*k + b] evaluated at k equals expr evaluated at i = a*k + b."""
    expr = AffineExpr.build({"i": 3, "j": -2}, 7)
    substituted = expr.substitute({"i": AffineExpr.build({"k": a}, b)})
    assert substituted.evaluate({"k": x, "j": y}) == expr.evaluate({"i": a * x + b, "j": y})
