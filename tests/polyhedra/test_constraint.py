"""Tests for affine constraints."""

import pytest

from repro.polyhedra import AffineExpr, Constraint


class TestConstructors:
    def test_greater_equal(self):
        c = Constraint.greater_equal("i", 0)
        assert c.is_satisfied({"i": 0})
        assert c.is_satisfied({"i": 3})
        assert not c.is_satisfied({"i": -1})

    def test_less_equal(self):
        c = Constraint.less_equal("i", "N - 1")
        assert c.is_satisfied({"i": 4, "N": 5})
        assert not c.is_satisfied({"i": 5, "N": 5})

    def test_less_than_is_integer_strict(self):
        c = Constraint.less_than("j", "N")
        assert c.is_satisfied({"j": 4, "N": 5})
        assert not c.is_satisfied({"j": 5, "N": 5})

    def test_greater_than(self):
        c = Constraint.greater_than("j", "i")
        assert c.is_satisfied({"j": 3, "i": 2})
        assert not c.is_satisfied({"j": 2, "i": 2})

    def test_equals(self):
        c = Constraint.equals("i", "j")
        assert c.is_equality
        assert c.is_satisfied({"i": 2, "j": 2})
        assert not c.is_satisfied({"i": 2, "j": 3})


class TestOperations:
    def test_variables(self):
        assert Constraint.less_than("i + j", "N").variables() == {"i", "j", "N"}

    def test_involves(self):
        c = Constraint.greater_equal("i", "j + 1")
        assert c.involves("i") and c.involves("j")
        assert not c.involves("N")

    def test_coefficient_signs(self):
        c = Constraint.greater_equal("i", "j")  # i - j >= 0
        assert c.coefficient("i") == 1
        assert c.coefficient("j") == -1

    def test_substitute(self):
        c = Constraint.less_than("j", "N").substitute({"j": AffineExpr.parse("i + 1")})
        assert c.is_satisfied({"i": 3, "N": 5})
        assert not c.is_satisfied({"i": 4, "N": 5})

    def test_negate_inequality(self):
        c = Constraint.greater_equal("i", 5)
        negated = c.negate()
        for value in range(0, 10):
            assert c.is_satisfied({"i": value}) != negated.is_satisfied({"i": value})

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            Constraint.equals("i", 0).negate()

    def test_equality_splits_into_two_inequalities(self):
        c = Constraint.equals("i", "j")
        halves = c.as_inequalities()
        assert len(halves) == 2
        assert all(h.is_satisfied({"i": 4, "j": 4}) for h in halves)
        assert not all(h.is_satisfied({"i": 4, "j": 5}) for h in halves)

    def test_inequality_as_inequalities_is_identity(self):
        c = Constraint.greater_equal("i", 0)
        assert c.as_inequalities() == (c,)

    def test_str(self):
        assert ">=" in str(Constraint.greater_equal("i", 0))
        assert "==" in str(Constraint.equals("i", 0))
