"""Tests for parametric lexicographic minima (the ISL-lexmin stand-in)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedra import AffineExpr, Polyhedron, numeric_lexmin, parametric_lexmin


CORRELATION = [("i", 0, "N - 1"), ("j", "i + 1", "N")]
FIGURE6 = [("i", 0, "N - 1"), ("j", 0, "i + 1"), ("k", "j", "i + 1")]


class TestParametricLexmin:
    def test_correlation_inner_minimum_is_lower_bound(self):
        minima = parametric_lexmin(CORRELATION, from_level=1)
        assert minima == {"j": AffineExpr.parse("i + 1")}

    def test_whole_nest_minimum(self):
        minima = parametric_lexmin(CORRELATION, from_level=0)
        assert minima["i"] == AffineExpr.constant_expr(0)
        # j's minimum substitutes i's minimum: i+1 at i=0 is 1
        assert minima["j"] == AffineExpr.constant_expr(1)

    def test_figure6_chained_minima(self):
        minima = parametric_lexmin(FIGURE6, from_level=1)
        assert minima["j"] == AffineExpr.constant_expr(0)
        # k's lower bound is j, whose minimum is 0
        assert minima["k"] == AffineExpr.constant_expr(0)

    def test_from_level_equal_depth_is_empty(self):
        assert parametric_lexmin(CORRELATION, from_level=2) == {}

    def test_from_level_out_of_range(self):
        with pytest.raises(ValueError):
            parametric_lexmin(CORRELATION, from_level=5)

    def test_minima_depend_on_outer_iterators(self):
        nest = [("i", 0, "N"), ("j", "2*i + 1", "N + i")]
        minima = parametric_lexmin(nest, from_level=1)
        assert minima["j"] == AffineExpr.parse("2*i + 1")


class TestNumericLexmin:
    def test_global_minimum(self):
        domain = Polyhedron.from_bounds(CORRELATION, ["N"])
        assert numeric_lexmin(domain, {"N": 6}) == (0, 1)

    def test_minimum_with_prefix(self):
        domain = Polyhedron.from_bounds(CORRELATION, ["N"])
        assert numeric_lexmin(domain, {"N": 6}, prefix=(3,)) == (3, 4)

    def test_empty_prefix_region_returns_none(self):
        domain = Polyhedron.from_bounds(CORRELATION, ["N"])
        assert numeric_lexmin(domain, {"N": 6}, prefix=(9,)) is None

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_parametric_matches_numeric_for_correlation(self, n):
        domain = Polyhedron.from_bounds(CORRELATION, ["N"])
        minima = parametric_lexmin(CORRELATION, from_level=1)
        for i in range(n - 1):
            numeric = numeric_lexmin(domain, {"N": n}, prefix=(i,))
            assert numeric is not None
            assert numeric[1] == minima["j"].evaluate({"i": i, "N": n})

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_parametric_matches_numeric_for_figure6(self, n):
        domain = Polyhedron.from_bounds(FIGURE6, ["N"])
        minima = parametric_lexmin(FIGURE6, from_level=1)
        for i in range(n - 1):
            numeric = numeric_lexmin(domain, {"N": n}, prefix=(i,))
            assert numeric is not None
            expected_j = minima["j"].evaluate({"i": i, "N": n})
            expected_k = minima["k"].evaluate({"i": i, "N": n})
            assert numeric[1:] == (expected_j, expected_k)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=8), a=st.integers(min_value=0, max_value=3))
def test_property_parametric_lexmin_matches_oracle(n, a):
    """For a skewed nest, the chained lower-bound substitution equals the oracle."""
    nest = [("i", 0, "N"), ("j", f"i + {a}", f"N + {a} + 1")]
    domain = Polyhedron.from_bounds(nest, ["N"])
    minima = parametric_lexmin(nest, from_level=1)
    for i in range(n):
        numeric = numeric_lexmin(domain, {"N": n}, prefix=(i,))
        assert numeric is not None
        assert numeric[1] == minima["j"].evaluate({"i": i, "N": n})
