"""Tests for Ehrhart counting: symbolic counts validated against enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedra import EhrhartPolynomial, Polyhedron, loop_nest_count
from repro.polyhedra.counting import prefix_counts
from repro.symbolic import Polynomial


def P(name):
    return Polynomial.variable(name)


# The non-rectangular shapes the paper targets (Section I: triangular,
# tetrahedral, trapezoidal, rhomboidal, parallelepiped).
SHAPES = {
    "triangular": dict(
        bounds=[("i", 0, "N - 1"), ("j", "i + 1", "N")],
        parameters=["N"],
        closed_form=lambda n: n * (n - 1) // 2,
        sizes=[2, 3, 5, 9],
    ),
    "tetrahedral": dict(
        bounds=[("i", 0, "N - 1"), ("j", 0, "i + 1"), ("k", "j", "i + 1")],
        parameters=["N"],
        closed_form=lambda n: (n ** 3 - n) // 6,
        sizes=[2, 3, 5, 7],
    ),
    "trapezoidal": dict(
        bounds=[("i", 0, "N"), ("j", 0, "i + M")],
        parameters=["N", "M"],
        closed_form=None,
        sizes=[(4, 3), (5, 2), (6, 6)],
    ),
    "rhomboidal": dict(
        bounds=[("i", 0, "N"), ("j", "i", "i + N")],
        parameters=["N"],
        closed_form=lambda n: n * n,
        sizes=[1, 3, 6, 9],
    ),
    "rectangular": dict(
        bounds=[("i", 0, "N"), ("j", 0, "M")],
        parameters=["N", "M"],
        closed_form=None,
        sizes=[(3, 4), (5, 5), (7, 2)],
    ),
}


class TestLoopNestCount:
    def test_correlation_count_matches_paper(self):
        count = loop_nest_count([("i", 0, "N - 1"), ("j", "i + 1", "N")])
        assert count == (P("N") * (P("N") - 1)) / 2

    def test_figure6_count_matches_paper(self):
        count = loop_nest_count([("i", 0, "N - 1"), ("j", 0, "i + 1"), ("k", "j", "i + 1")])
        assert count == (P("N") ** 3 - P("N")) / 6

    def test_rectangular_count(self):
        count = loop_nest_count([("i", 0, "N"), ("j", 0, "M")])
        assert count == P("N") * P("M")

    def test_inner_summand(self):
        # weighting each (i, j) iteration by the trip count of an inner k loop of N iterations
        count = loop_nest_count([("i", 0, "N - 1"), ("j", "i + 1", "N")], summand=P("N"))
        assert count == P("N") * (P("N") * (P("N") - 1)) / 2

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_counts_match_enumeration(self, name):
        shape = SHAPES[name]
        count = loop_nest_count(shape["bounds"])
        domain = Polyhedron.from_bounds(shape["bounds"], shape["parameters"])
        for size in shape["sizes"]:
            values = (
                {"N": size} if isinstance(size, int) else dict(zip(["N", "M"], size))
            )
            assert count.evaluate(values) == domain.count(values), (name, size)

    @pytest.mark.parametrize("name", [n for n, s in SHAPES.items() if s["closed_form"]])
    def test_counts_match_closed_forms(self, name):
        shape = SHAPES[name]
        count = loop_nest_count(shape["bounds"])
        for size in shape["sizes"]:
            assert count.evaluate({"N": size}) == shape["closed_form"](size)


class TestPrefixCounts:
    def test_depths_and_values_for_correlation(self):
        counts = prefix_counts([("i", 0, "N - 1"), ("j", "i + 1", "N")])
        # counts[0] = whole nest, counts[1] = one row of j, counts[2] = single iteration
        assert len(counts) == 3
        assert counts[0] == (P("N") * (P("N") - 1)) / 2
        assert counts[1] == P("N") - 1 - P("i")
        assert counts[2] == Polynomial.constant(1)

    def test_innermost_count_is_one(self):
        counts = prefix_counts([("i", 0, "N"), ("j", 0, "i + 1"), ("k", 0, "j + 1")])
        assert counts[-1] == Polynomial.constant(1)

    def test_prefix_count_evaluates_to_row_size(self):
        counts = prefix_counts([("i", 0, "N - 1"), ("j", "i + 1", "N")])
        # for N=10, row i=3 has 10 - 1 - 3 = 6 iterations
        assert counts[1].evaluate({"N": 10, "i": 3}) == 6


class TestEhrhartPolynomial:
    def test_of_loop_nest_and_validate(self):
        ehrhart = EhrhartPolynomial.of_loop_nest(
            [("i", 0, "N - 1"), ("j", "i + 1", "N")], parameters=["N"]
        )
        assert ehrhart.degree == 2
        for n in (2, 4, 7):
            assert ehrhart.validate({"N": n})

    def test_evaluate_returns_int(self):
        ehrhart = EhrhartPolynomial.of_loop_nest(
            [("i", 0, "N"), ("j", 0, "N")], parameters=["N"]
        )
        assert ehrhart.evaluate({"N": 6}) == 36
        assert isinstance(ehrhart.evaluate({"N": 6}), int)

    def test_str_is_polynomial_text(self):
        ehrhart = EhrhartPolynomial.of_loop_nest([("i", 0, "N")], parameters=["N"])
        assert str(ehrhart) == "N"


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=0, max_value=9), m=st.integers(min_value=0, max_value=9))
def test_property_trapezoid_count_matches_enumeration(n, m):
    bounds = [("i", 0, "N"), ("j", 0, "i + M")]
    count = loop_nest_count(bounds)
    brute = sum(1 for i in range(n) for j in range(i + m))
    assert count.evaluate({"N": n, "M": m}) == brute


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=0, max_value=8))
def test_property_simplex_count_is_binomial(n):
    """A 3-simplex nest counts C(n+2, 3) points."""
    from math import comb

    bounds = [("i", 0, "N"), ("j", 0, "i + 1"), ("k", 0, "j + 1")]
    count = loop_nest_count(bounds)
    assert count.evaluate({"N": n}) == comb(n + 2, 3)
