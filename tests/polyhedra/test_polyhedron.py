"""Tests for polyhedra, Fourier-Motzkin elimination and point enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.polyhedra import AffineExpr, Constraint, Polyhedron
from repro.polyhedra.fourier_motzkin import (
    constant_bounds,
    eliminate_variable,
    is_rationally_empty,
    variable_bounds,
)


def triangular_domain():
    """The correlation outer domain: 0 <= i < N-1, i+1 <= j < N."""
    return Polyhedron.from_bounds(
        [("i", 0, "N - 1"), ("j", "i + 1", "N")],
        parameters=["N"],
    )


class TestConstruction:
    def test_from_bounds_builds_two_constraints_per_loop(self):
        domain = triangular_domain()
        assert len(domain.constraints) == 4
        assert domain.dimensions == ("i", "j")
        assert domain.parameters == ("N",)

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i", "i"])

    def test_dimension_parameter_clash_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i"], parameters=["i"])

    def test_undeclared_names_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i"], [Constraint.greater_equal("i", "M")])

    def test_str_mentions_parameters(self):
        assert "[N]" in str(triangular_domain())


class TestMembership:
    def test_contains_inside_points(self):
        domain = triangular_domain()
        assert domain.contains((0, 1), {"N": 5})
        assert domain.contains((3, 4), {"N": 5})

    def test_contains_rejects_outside_points(self):
        domain = triangular_domain()
        assert not domain.contains((1, 1), {"N": 5})     # j must exceed i
        assert not domain.contains((4, 5), {"N": 5})     # i < N-1 violated
        assert not domain.contains((0, 5), {"N": 5})     # j < N violated

    def test_contains_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            triangular_domain().contains((1,), {"N": 5})


class TestEnumeration:
    def test_points_in_lexicographic_order(self):
        domain = triangular_domain()
        points = list(domain.enumerate_points({"N": 4}))
        assert points == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]

    def test_count_matches_closed_form(self):
        domain = triangular_domain()
        for n in (2, 3, 5, 8, 12):
            assert domain.count({"N": n}) == n * (n - 1) // 2

    def test_missing_parameter_raises(self):
        with pytest.raises(ValueError):
            list(triangular_domain().enumerate_points({}))

    def test_unbounded_dimension_raises(self):
        unbounded = Polyhedron(["i"], [Constraint.greater_equal("i", 0)])
        with pytest.raises(ValueError):
            list(unbounded.enumerate_points({}))

    def test_empty_domain_enumerates_nothing(self):
        domain = triangular_domain()
        assert list(domain.enumerate_points({"N": 1})) == []


class TestOperations:
    def test_is_empty_with_values(self):
        domain = triangular_domain()
        assert domain.is_empty({"N": 1})
        assert not domain.is_empty({"N": 3})

    def test_rational_emptiness_of_contradiction(self):
        contradictory = Polyhedron(
            ["i"],
            [Constraint.greater_equal("i", 5), Constraint.less_equal("i", 3)],
        )
        assert contradictory.is_empty()

    def test_rational_emptiness_not_proven_for_parametric(self):
        # not provably empty for every N
        assert not triangular_domain().is_empty()

    def test_project_out_inner_dimension(self):
        domain = triangular_domain()
        projected = domain.project_out("j")
        assert projected.dimensions == ("i",)
        # the shadow is 0 <= i <= N-2 (for N >= 2)
        assert [p[0] for p in projected.enumerate_points({"N": 5})] == [0, 1, 2, 3]

    def test_project_out_unknown_raises(self):
        with pytest.raises(ValueError):
            triangular_domain().project_out("z")

    def test_intersect(self):
        domain = triangular_domain()
        upper_half = Polyhedron(
            ["i", "j"], [Constraint.greater_equal("i", 2)], parameters=["N"]
        )
        both = domain.intersect(upper_half)
        assert all(point[0] >= 2 for point in both.enumerate_points({"N": 6}))

    def test_intersect_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            triangular_domain().intersect(Polyhedron(["i"]))

    def test_with_constraints(self):
        domain = triangular_domain().with_constraints([Constraint.equals("i", 1)])
        assert [p for p in domain.enumerate_points({"N": 5})] == [(1, 2), (1, 3), (1, 4)]

    def test_bounds_of(self):
        lower, upper = triangular_domain().bounds_of("j")
        assert AffineExpr.parse("i + 1") in lower
        assert AffineExpr.parse("N - 1") in upper


class TestFourierMotzkin:
    def test_eliminate_variable_keeps_shadow(self):
        constraints = [
            Constraint.greater_equal("j", "i + 1"),
            Constraint.less_equal("j", "N - 1"),
        ]
        projected = eliminate_variable(constraints, "j")
        # shadow constraint: N - 1 >= i + 1  i.e.  N - i - 2 >= 0
        assert any(
            c.expression == AffineExpr.parse("N - i - 2") for c in projected
        )

    def test_variable_bounds(self):
        constraints = [
            Constraint.greater_equal("j", "i + 1"),
            Constraint.less_equal("j", "N - 1"),
            Constraint.greater_equal("i", 0),
        ]
        lower, upper = variable_bounds(constraints, "j")
        assert lower == [AffineExpr.parse("i + 1")]
        assert upper == [AffineExpr.parse("N - 1")]

    def test_is_rationally_empty_detects_contradiction(self):
        constraints = [
            Constraint.greater_equal("i", "j + 1"),
            Constraint.greater_equal("j", "i + 1"),
        ]
        assert is_rationally_empty(constraints, ["i", "j"])

    def test_is_rationally_empty_accepts_feasible(self):
        constraints = [
            Constraint.greater_equal("i", 0),
            Constraint.less_equal("i", 10),
        ]
        assert not is_rationally_empty(constraints, ["i"])

    def test_constant_bounds(self):
        constraints = [
            Constraint.greater_equal("j", "i + 1"),
            Constraint.less_than("j", "N"),
        ]
        low, high = constant_bounds(constraints, "j", {"i": 2, "N": 7})
        assert (low, high) == (3, 6)

    def test_constant_bounds_ignores_unresolvable(self):
        constraints = [Constraint.greater_equal("j", "i + 1")]
        low, high = constant_bounds(constraints, "j", {})
        assert low is None and high is None


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=0, max_value=12))
def test_property_triangular_count_matches_formula(n):
    assert triangular_domain().count({"N": n}) == max(0, n * (n - 1) // 2)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=1, max_value=8),
)
def test_property_projection_preserves_shadow_points(n, m):
    """Every i appearing in some (i, j) of the domain appears in the projection."""
    domain = Polyhedron.from_bounds(
        [("i", 0, "N"), ("j", "i", "i + M")], parameters=["N", "M"]
    )
    values = {"N": n, "M": m}
    shadow = {p[0] for p in domain.enumerate_points(values)}
    projected = domain.project_out("j")
    projected_values = {p[0] for p in projected.enumerate_points(values)}
    assert shadow <= projected_values
