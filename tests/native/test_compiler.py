"""Compiler discovery, the NativeUnavailable fallback and the on-disk cache."""

import os
import shutil

import pytest

from repro.native import (
    NativeUnavailable,
    cache_dir,
    clear_native_cache,
    compile_shared_library,
    find_compiler,
    native_available,
)
from repro.native import compiler as compiler_module

requires_compiler = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)

_TINY_UNIT = "double repro_tiny(double x) { return x + %d.0; }\n"


class TestDiscovery:
    def test_no_compiler_means_unavailable(self, monkeypatch):
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setattr(shutil, "which", lambda _name: None)
        assert find_compiler() is None
        assert not native_available()
        with pytest.raises(NativeUnavailable, match="no C compiler"):
            compile_shared_library("int repro_x;\n")

    def test_cc_override_wins_even_when_broken(self, monkeypatch):
        """An explicit $CC must fail loudly, not silently fall back."""
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        assert find_compiler() == "/nonexistent/compiler"
        with pytest.raises(NativeUnavailable):
            compile_shared_library("int repro_x;\n")

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        assert cache_dir() == tmp_path / "cache"


@requires_compiler
class TestCompilationCache:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        self.cache = tmp_path

    def test_compile_produces_source_and_library(self):
        library = compile_shared_library(_TINY_UNIT % 1, tag="tiny")
        assert library.exists()
        assert library.parent == self.cache
        assert library.with_suffix(".c").exists()

    def test_second_compile_is_a_cache_hit(self, monkeypatch):
        library = compile_shared_library(_TINY_UNIT % 2, tag="tiny")
        first_mtime = library.stat().st_mtime_ns

        def boom(*_args, **_kwargs):  # the compiler must not run again
            raise AssertionError("cache miss: compiler was invoked twice")

        monkeypatch.setattr(compiler_module.subprocess, "run", boom)
        again = compile_shared_library(_TINY_UNIT % 2, tag="tiny")
        assert again == library
        assert again.stat().st_mtime_ns == first_mtime

    def test_different_sources_get_different_libraries(self):
        one = compile_shared_library(_TINY_UNIT % 3, tag="tiny")
        two = compile_shared_library(_TINY_UNIT % 4, tag="tiny")
        assert one != two

    def test_compile_error_reports_stderr(self):
        with pytest.raises(NativeUnavailable, match="compilation failed"):
            compile_shared_library("this is not C\n", tag="broken")

    def test_clear_native_cache_removes_artifacts(self):
        compile_shared_library(_TINY_UNIT % 5, tag="tiny")
        assert clear_native_cache() >= 2  # at least the .c/.so pair
        assert not any(self.cache.glob("*.so"))
