"""Compiler discovery, the NativeUnavailable fallback and the on-disk cache."""

import os
import shutil

import pytest

from repro.native import (
    NativeUnavailable,
    cache_dir,
    clear_native_cache,
    compile_shared_library,
    extra_compile_flags,
    find_compiler,
    flags_supported,
    native_available,
)
from repro.native import compiler as compiler_module

requires_compiler = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)

_TINY_UNIT = "double repro_tiny(double x) { return x + %d.0; }\n"


class TestDiscovery:
    def test_no_compiler_means_unavailable(self, monkeypatch):
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setattr(shutil, "which", lambda _name: None)
        assert find_compiler() is None
        assert not native_available()
        with pytest.raises(NativeUnavailable, match="no C compiler"):
            compile_shared_library("int repro_x;\n")

    def test_cc_override_wins_even_when_broken(self, monkeypatch):
        """An explicit $CC must fail loudly, not silently fall back."""
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        assert find_compiler() == "/nonexistent/compiler"
        with pytest.raises(NativeUnavailable):
            compile_shared_library("int repro_x;\n")

    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        assert cache_dir() == tmp_path / "cache"


@requires_compiler
class TestCompilationCache:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        self.cache = tmp_path

    def test_compile_produces_source_and_library(self):
        library = compile_shared_library(_TINY_UNIT % 1, tag="tiny")
        assert library.exists()
        assert library.parent == self.cache
        assert library.with_suffix(".c").exists()

    def test_second_compile_is_a_cache_hit(self, monkeypatch):
        library = compile_shared_library(_TINY_UNIT % 2, tag="tiny")
        first_mtime = library.stat().st_mtime_ns

        def boom(*_args, **_kwargs):  # the compiler must not run again
            raise AssertionError("cache miss: compiler was invoked twice")

        monkeypatch.setattr(compiler_module.subprocess, "run", boom)
        again = compile_shared_library(_TINY_UNIT % 2, tag="tiny")
        assert again == library
        assert again.stat().st_mtime_ns == first_mtime

    def test_different_sources_get_different_libraries(self):
        one = compile_shared_library(_TINY_UNIT % 3, tag="tiny")
        two = compile_shared_library(_TINY_UNIT % 4, tag="tiny")
        assert one != two

    def test_compile_error_reports_stderr(self):
        with pytest.raises(NativeUnavailable, match="compilation failed"):
            compile_shared_library("this is not C\n", tag="broken")

    def test_clear_native_cache_removes_artifacts(self):
        compile_shared_library(_TINY_UNIT % 5, tag="tiny")
        assert clear_native_cache() >= 2  # at least the .c/.so pair
        assert not any(self.cache.glob("*.so"))


#: identical source whose behavior is decided entirely by a -D flag — the
#: shape of the stale-.so bug: a key that hashes only the source would
#: serve the first compilation's library for every later flag set
_FLAG_UNIT = "double repro_probe(void) { return (double)REPRO_PROBE; }\n"


@requires_compiler
class TestFlagsInCacheKey:
    """Regression: extra compiler flags must be part of the on-disk cache key.

    ``compile_shared_library`` hashes the full compiler command line, so two
    compilations of the *same* source under *different* extra flags must
    produce different libraries with genuinely different code — never a
    stale cache hit from the other flag set.
    """

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.delenv("REPRO_NATIVE_FLAGS", raising=False)

    @staticmethod
    def _probe(library):
        import ctypes

        fn = ctypes.CDLL(str(library)).repro_probe
        fn.restype = ctypes.c_double
        return fn()

    def test_extra_flags_separate_the_cache_entries(self):
        three = compile_shared_library(
            _FLAG_UNIT, tag="probe", extra_flags=("-DREPRO_PROBE=3",)
        )
        four = compile_shared_library(
            _FLAG_UNIT, tag="probe", extra_flags=("-DREPRO_PROBE=4",)
        )
        assert three != four
        # and the libraries really differ in behavior, not just in path
        assert self._probe(three) == 3.0
        assert self._probe(four) == 4.0

    def test_same_flags_still_hit_the_cache(self, monkeypatch):
        library = compile_shared_library(
            _FLAG_UNIT, tag="probe", extra_flags=("-DREPRO_PROBE=5",)
        )

        def boom(*_args, **_kwargs):
            raise AssertionError("cache miss: compiler was invoked twice")

        monkeypatch.setattr(compiler_module.subprocess, "run", boom)
        again = compile_shared_library(
            _FLAG_UNIT, tag="probe", extra_flags=("-DREPRO_PROBE=5",)
        )
        assert again == library

    def test_env_flags_are_read_and_part_of_the_key(self, monkeypatch):
        assert extra_compile_flags() == ()
        plain = compile_shared_library(_FLAG_UNIT, tag="probe", extra_flags=("-DREPRO_PROBE=6",))
        monkeypatch.setenv("REPRO_NATIVE_FLAGS", "-DREPRO_PROBE=7")
        assert extra_compile_flags() == ("-DREPRO_PROBE=7",)
        via_env = compile_shared_library(_FLAG_UNIT, tag="probe")
        assert via_env != plain
        assert self._probe(via_env) == 7.0

    def test_flags_supported_probes_the_compiler(self):
        assert flags_supported(("-O2",))
        assert not flags_supported(("--repro-definitely-not-a-flag",))

    def test_module_cache_keys_on_flags_too(self):
        """The in-memory ``compile_collapsed`` memo must not serve a module
        compiled under different extra flags (the second stale-cache layer)."""
        from repro.core import collapse
        from repro.ir import Loop, LoopNest
        from repro.native import compile_collapsed

        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
            parameters=["N"],
            name="flagkey",
        )
        collapsed = collapse(nest)
        plain = compile_collapsed(collapsed)
        flagged = compile_collapsed(collapsed, extra_flags=("-DREPRO_PROBE=8",))
        memo_hit = compile_collapsed(collapsed)
        assert plain.library_path != flagged.library_path
        assert memo_hit is plain
