"""Compile-and-run coverage of the native backend.

Differential contract: everything the compiled translation unit computes —
trip counts, recovered indices, kernel outputs, per-thread bookkeeping —
must agree element-wise with the Python reference paths (scalar unranking,
:class:`BatchRecovery`, ``run_original`` and the runtime engine).
"""

import numpy as np
import pytest

from repro.core import batch_recovery, collapse
from repro.ir import enumerate_iterations, iteration_count
from repro.native import (
    NativeExecutionError,
    NativeRunResult,
    compile_collapsed,
    compile_native_kernel,
    native_available,
)

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)


def _dummy_op(data, indices, values):  # module-level: picklable for plans
    pass


# ---------------------------------------------------------------------- #
# index recovery
# ---------------------------------------------------------------------- #
class TestRecovery:
    @pytest.mark.parametrize("schedule", ["static", "dynamic,3", "static,4", "guided"])
    def test_recover_matches_batch_on_every_pc(self, figure6_nest, schedule):
        collapsed = collapse(figure6_nest)
        module = compile_collapsed(collapsed, schedule=schedule)
        values = {"N": 12}
        total = collapsed.total_iterations(values)
        native = module.recover_range(1, total, values)
        batch = batch_recovery(collapsed).recover_range(1, total, values)
        assert np.array_equal(native, batch)

    def test_total_matches_ranking(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        module = compile_collapsed(collapsed)
        for n in (1, 2, 7, 40, 1000):
            assert module.total({"N": n}) == collapsed.total_iterations({"N": n})

    def test_first_and_last_pc_of_every_level(self, correlation_nest):
        """The boundary ranks — where the guarded floor earns its keep."""
        collapsed = collapse(correlation_nest)
        module = compile_collapsed(collapsed)
        values = {"N": 60}
        boundary_pcs = []
        expected = []
        rows = {}
        for pc, indices in enumerate(
            enumerate_iterations(correlation_nest, values), start=1
        ):
            rows.setdefault(indices[0], []).append((pc, indices))
        for level_rows in rows.values():
            for pc, indices in (level_rows[0], level_rows[-1]):
                boundary_pcs.append(pc)
                expected.append(indices)
        for pc, indices in zip(boundary_pcs, expected):
            assert tuple(module.recover_range(pc, pc, values)[0]) == indices

    def test_bisection_fallback_matches_exact_recovery(self):
        """Levels beyond the degree-4 closed forms run the emitted search."""
        from repro.ir import Loop, LoopNest

        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        collapsed = collapse(nest)
        assert not collapsed.uses_only_closed_forms()
        module = compile_collapsed(collapsed)
        values = {"N": 6}
        total = collapsed.total_iterations(values)
        native = module.recover_range(1, total, values)
        batch = batch_recovery(collapsed).recover_range(1, total, values)
        assert np.array_equal(native, batch)

    def test_empty_range_returns_empty(self, correlation_nest):
        module = compile_collapsed(collapse(correlation_nest))
        assert module.recover_range(5, 4, {"N": 10}).shape == (0, 2)

    def test_missing_parameter_is_reported(self, correlation_nest):
        module = compile_collapsed(collapse(correlation_nest))
        with pytest.raises(NativeExecutionError, match="missing parameter"):
            module.recover_range(1, 3, {})

    def test_out_of_range_pcs_raise_like_batch_recovery(self, correlation_nest):
        """No silent clamping: a miscalculated range must fail loudly, with
        the same contract as BatchRecovery.recover_range."""
        collapsed = collapse(correlation_nest)
        module = compile_collapsed(collapsed)
        values = {"N": 6}
        total = collapsed.total_iterations(values)
        with pytest.raises(NativeExecutionError, match=r"must lie in \[1, 15\]"):
            module.recover_range(total - 1, total + 3, values)
        with pytest.raises(NativeExecutionError, match="must lie in"):
            module.recover_range(0, 2, values)

    def test_run_rejects_last_pc_beyond_total(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("utma")
        values = {"N": 16}
        module = compile_native_kernel(kernel)
        data = kernel.make_data(values)
        with pytest.raises(NativeExecutionError, match="must lie in"):
            module.run(data, values, last_pc=10**9)


class TestGuardedFloorRegression:
    """The headline bugfix: the emitted C used a bare ``floor(creal(...))``.

    For the Fig. 6 tetrahedral nest at N=50 the closed-form cubic root of
    the *first* iteration evaluates to ``-1.1e-16`` — an exact ``0``
    mathematically, landing just below it in floats (the ``k - 1e-12``
    boundary class).  A bare floor recovers ``i = -1``; the guarded floor
    (epsilon + exact bracket correction, as the Python path always had)
    recovers ``0``.
    """

    def test_unguarded_floor_reproduces_the_bug(self, figure6_nest):
        collapsed = collapse(figure6_nest)
        values = {"N": 50}
        total = collapsed.total_iterations(values)
        unguarded = compile_collapsed(collapsed, guard=False)
        truth = batch_recovery(collapsed).recover_range(1, total, values)
        recovered = unguarded.recover_range(1, total, values)
        # pc=1 is the k - 1e-12 case: the bare floor lands one below
        assert recovered[0, 0] == truth[0, 0] - 1 == -1
        assert not np.array_equal(recovered, truth)

    def test_guarded_floor_recovers_identically(self, figure6_nest):
        collapsed = collapse(figure6_nest)
        values = {"N": 50}
        total = collapsed.total_iterations(values)
        module = compile_collapsed(collapsed, schedule="static")
        truth = batch_recovery(collapsed).recover_range(1, total, values)
        assert np.array_equal(module.recover_range(1, total, values), truth)
        # and the boundary iteration specifically
        assert tuple(module.recover_range(1, 1, values)[0]) == (0, 0, 0)


class TestSixtyFourBitArithmetic:
    """Depth-3 domains overflow 32-bit counters before N reaches 2600; the
    emitted ``long long`` arithmetic (pc, totals, recovered iterators and
    CHUNK tests) must not truncate."""

    N = 2560  # total = N (N+1) (N+2) / 6 = 2 799 403 520 > 2^31

    def test_total_and_recovery_past_two_to_the_31(self, simplex3_nest):
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        total = collapsed.total_iterations(values)
        assert total > 2**31
        module = compile_collapsed(collapsed)
        assert module.total(values) == total
        native = module.recover_range(total - 2, total, values)
        expected = [collapsed.recover_indices(pc, values) for pc in range(total - 2, total + 1)]
        assert [tuple(row) for row in native] == expected
        assert tuple(native[-1]) == (self.N - 1, self.N - 1, self.N - 1)

    def test_chunked_run_past_two_to_the_31(self, simplex3_nest):
        """CHUNK modulo arithmetic on pc values beyond 2^31 (a window of the
        huge domain, executed under a fixed-chunk schedule)."""
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        total = collapsed.total_iterations(values)
        first = total - 4999
        module = compile_collapsed(
            collapsed,
            body="visits(i, j) += (double)(k + 1);",
            arrays=("visits",),
            schedule="dynamic,512",
        )
        visits = np.zeros((self.N, self.N))
        result = module.run({"visits": visits}, values, first_pc=first, threads=2)
        assert sum(result.results) == 5000
        expected = np.zeros((self.N, self.N))
        for i, j, k in batch_recovery(collapsed).recover_range(first, total, values):
            expected[i, j] += k + 1
        assert np.array_equal(visits, expected)


class TestExactRecoveryHugeRanges:
    """The exact-recovery acceptance pin (ISSUE 5): a depth-3 nest with more
    than 2^50 collapsed iterations recovers indices exactly in the compiled
    backends.

    At ``N = 400000`` the simplex3 domain holds ~2^53.2 ranks.  The
    pre-__int128 emitted C — ``rint`` on double brackets, double-rounded
    totals — mis-recovered *every* probed level boundary at this size; the
    emitted seed-then-correct scheme over ``__int128`` integer brackets must
    agree with an independent big-int reference on every probe, for both the
    native entry points (``repro_recover_range``) and the hybrid substrate
    (``repro_run_range``'s recover-once-then-increment).
    """

    N = 400000  # total = 10 666 746 666 800 000 ≈ 2^53.2 > 2^50

    # the independent big-int reference unranker comes from the shared
    # ``exact_reference_recover`` session fixture (tests/conftest.py)

    def _probe_firsts(self, collapsed, values):
        total = collapsed.total_iterations(values)
        firsts = {1, total - 9}
        for i in (self.N - 1, self.N - 7, self.N // 2):
            firsts.add(collapsed.rank_of((i, 0, 0), values) - 5)
        for point in (2**45, 2**50):
            firsts.add(point - 5)
        return sorted(first for first in firsts if 1 <= first <= total - 9)

    def test_total_is_exact_past_2_to_50(self, simplex3_nest):
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        total = collapsed.total_iterations(values)
        assert total > 2**50
        module = compile_collapsed(collapsed)
        assert module.total(values) == total

    def test_recover_range_windows_match_exact_reference(
        self, simplex3_nest, exact_reference_recover
    ):
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        module = compile_collapsed(collapsed)
        for first in self._probe_firsts(collapsed, values):
            native = module.recover_range(first, first + 9, values)
            expected = [
                exact_reference_recover(collapsed, pc, values)
                for pc in range(first, first + 10)
            ]
            assert [tuple(row) for row in native] == expected, first
            # and the batch (python/engine substrate) agrees on the same window
            batch = batch_recovery(collapsed).recover_range(first, first + 9, values)
            assert np.array_equal(batch, native), first

    def test_hybrid_run_range_chunks_recover_exactly(self, simplex3_nest, exact_reference_recover):
        """The hybrid substrate: ``repro_run_range`` recovers once at the
        chunk's first pc (deep inside the >2^50 domain) and increments —
        the traced index tuples must match the exact reference."""
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        module = compile_collapsed(
            collapsed,
            body=(
                "trace(pc % 64, 0) = (double)i; "
                "trace(pc % 64, 1) = (double)j; "
                "trace(pc % 64, 2) = (double)k;"
            ),
            arrays=("trace",),
        )
        for first in self._probe_firsts(collapsed, values):
            trace = np.full((64, 3), -1.0)
            executed = module.run_range({"trace": trace}, values, first, first + 9)
            assert executed == 10
            for pc in range(first, first + 10):
                assert tuple(trace[pc % 64].astype(np.int64)) == exact_reference_recover(
                    collapsed, pc, values
                ), (first, pc)


# ---------------------------------------------------------------------- #
# kernel execution
# ---------------------------------------------------------------------- #
class TestKernelExecution:
    def test_every_native_kernel_verifies(self):
        from repro.kernels import native_kernels, verify_kernel

        kernels = native_kernels()
        assert len(kernels) >= 10
        for kernel in kernels:
            assert verify_kernel(kernel, backend="native", recovery="compiled"), kernel.name

    def test_utma_is_bit_identical_to_original_order(self):
        """The triangular acceptance case: element-wise add, so the compiled
        C and the Python paths must agree to the last bit."""
        from repro.kernels import get_kernel, run_collapsed_native, run_original

        kernel = get_kernel("utma")
        values = {"N": 160}
        original = run_original(kernel, values)
        native = run_collapsed_native(kernel, values, threads=2)
        assert np.array_equal(original["c"], native["c"])

    def test_ltmp_depth3_reduction_matches(self):
        """The depth-3 acceptance case: the non-collapsed k loop runs as a
        real C loop inside each collapsed iteration."""
        from repro.kernels import get_kernel, run_collapsed_native, run_original

        kernel = get_kernel("ltmp")
        values = {"N": 96}
        original = run_original(kernel, values)
        native = run_collapsed_native(kernel, values, threads=2)
        assert np.allclose(original["c"], native["c"], atol=1e-9)

    @pytest.mark.parametrize("name", ["covariance", "symm", "cholesky_update", "lu_update"])
    def test_elementwise_kernels_are_bit_identical(self, name):
        from repro.kernels import get_kernel, run_collapsed_native, run_original

        kernel = get_kernel(name)
        values = dict(kernel.bench_parameters)
        original = run_original(kernel, values)
        native = run_collapsed_native(kernel, values, threads=2)
        for array in original:
            assert np.array_equal(original[array], native[array]), array

    def test_run_result_carries_per_thread_timings(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("utma")
        values = {"N": 64}
        module = compile_native_kernel(kernel, schedule="static")
        data = kernel.make_data(values)
        result = module.run(data, values, threads=2)
        assert isinstance(result, NativeRunResult)
        assert result.backend == "native"
        total = kernel.collapsed().total_iterations(values)
        assert sum(result.results) == total
        assert result.iterations == total  # EngineRunResult compatibility
        assert len(result.chunk_seconds) == len(result.chunks) == len(result.results)
        assert all(seconds >= 0.0 for seconds in result.chunk_seconds)
        assert 1 <= result.workers <= 2
        # static schedule: per-thread spans are disjoint and cover the range
        covered = sorted((chunk.first, chunk.last) for chunk in result.chunks)
        assert covered[0][0] == 1 and covered[-1][1] == total
        for (first_a, last_a), (first_b, _last_b) in zip(covered, covered[1:]):
            assert last_a < first_b

    def test_iterations_counts_executed_work_under_dynamic_schedules(self):
        """Per-thread pc spans overlap under on-demand hand-out; the result's
        iteration count must come from the executed counts, not span sizes."""
        from repro.kernels import get_kernel

        kernel = get_kernel("utma")
        values = {"N": 96}
        module = compile_native_kernel(kernel, schedule="dynamic,64")
        result = module.run(kernel.make_data(values), values, threads=2)
        total = kernel.collapsed().total_iterations(values)
        assert sum(result.results) == total
        assert result.iterations == total

    def test_kernel_without_c_body_is_rejected(self):
        from repro.kernels import get_kernel, run_collapsed_native

        kernel = get_kernel("jacobi1d_skewed")
        with pytest.raises(ValueError, match="native"):
            run_collapsed_native(kernel, dict(kernel.bench_parameters))

    def test_bad_array_dtype_is_rejected(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("utma")
        values = {"N": 16}
        module = compile_native_kernel(kernel)
        data = kernel.make_data(values)
        data["c"] = data["c"].astype(np.float32)
        with pytest.raises(NativeExecutionError, match="float64"):
            module.run(data, values)

    def test_run_range_covers_the_range_in_serial_chunks(self):
        """The hybrid entry point: arbitrary contiguous sub-ranges executed
        serially must compose to exactly the whole-range result."""
        from repro.kernels import get_kernel, run_original

        kernel = get_kernel("utma")
        values = {"N": 80}
        module = compile_native_kernel(kernel)
        total = kernel.collapsed().total_iterations(values)
        data = kernel.make_data(values)
        executed = 0
        for first in range(1, total + 1, 113):
            executed += module.run_range(data, values, first, min(first + 112, total))
        assert executed == total
        expected = run_original(kernel, values)
        assert np.array_equal(data["c"], expected["c"])
        # empty ranges execute nothing, out-of-range ranges fail loudly
        assert module.run_range(data, values, 5, 4) == 0
        with pytest.raises(NativeExecutionError, match="must lie in"):
            module.run_range(data, values, total, total + 1)

    def test_one_dimensional_arrays_run_natively(self, correlation_nest):
        """The N-D macro gap closed: a 1-D trace array, indexed by pc."""
        from repro.core import batch_recovery, collapse

        collapsed = collapse(correlation_nest)
        values = {"N": 40}
        total = collapsed.total_iterations(values)
        module = compile_collapsed(
            collapsed,
            body="trace(pc - 1) = (double)(i * 1000 + j);",
            arrays=("trace",),
            array_ndims={"trace": 1},
        )
        trace = np.zeros(total)
        result = module.run({"trace": trace}, values, threads=2)
        assert sum(result.results) == total
        indices = batch_recovery(collapsed).recover_range(1, total, values)
        assert np.array_equal(trace, (indices[:, 0] * 1000 + indices[:, 1]).astype(float))

    def test_three_dimensional_arrays_run_natively(self, correlation_nest):
        from repro.core import collapse
        from repro.ir import enumerate_iterations

        collapsed = collapse(correlation_nest)
        values = {"N": 12}
        module = compile_collapsed(
            collapsed,
            body="cube(i, j, 1) += 1.0;",
            arrays=("cube",),
            array_ndims={"cube": 3},
        )
        cube = np.zeros((12, 12, 2))
        module.run({"cube": cube}, values, threads=2)
        expected = np.zeros((12, 12, 2))
        for i, j in enumerate_iterations(correlation_nest, values):
            expected[i, j, 1] += 1.0
        assert np.array_equal(cube, expected)

    def test_wrong_rank_data_is_rejected(self, correlation_nest):
        from repro.core import collapse

        module = compile_collapsed(
            collapse(correlation_nest),
            body="trace(pc - 1) = 1.0;",
            arrays=("trace",),
            array_ndims={"trace": 1},
        )
        with pytest.raises(NativeExecutionError, match="1-D"):
            module.run({"trace": np.zeros((4, 4))}, {"N": 4})


# ---------------------------------------------------------------------- #
# session / one-call integration
# ---------------------------------------------------------------------- #
class TestSessionBackend:
    def test_session_native_matches_engine(self):
        from repro.native import compiler as compiler_module
        from repro.runtime import RuntimeSession

        values = {"N": 96}
        with RuntimeSession(workers=2) as session:
            engine_data = session.run("utma", values)
            native_data = session.run("utma", values, backend="native")
            assert np.array_equal(engine_data["c"], native_data["c"])
            # the second native call must reuse the memoised module — no
            # compiler invocation allowed
            import unittest.mock

            with unittest.mock.patch.object(
                compiler_module.subprocess, "run",
                side_effect=AssertionError("module cache miss: compiler re-invoked"),
            ):
                again = session.run("utma", values, backend="native")
            assert np.array_equal(again["c"], native_data["c"])

    def test_collapse_and_run_backend_native(self):
        from repro.kernels import get_kernel, run_original
        from repro.runtime import RuntimeSession, collapse_and_run

        values = {"N": 80}
        with RuntimeSession(workers=2) as session:
            data = collapse_and_run("utma", values, backend="native", session=session)
        expected = run_original(get_kernel("utma"), values)
        assert np.array_equal(data["c"], expected["c"])

    def test_native_backend_rejects_nests_without_a_c_body(self, correlation_nest):
        """Opaque nests (statements with no C text) still have nothing the
        C generator could emit; the rejection must say so explicitly."""
        from repro.runtime import RuntimeSession
        from repro.runtime.plan import PlanError

        with RuntimeSession(workers=1) as session:
            with pytest.raises(PlanError, match="needs a C body"):
                session.run(correlation_nest, {"N": 10}, backend="native")

    def test_native_backend_runs_parsed_nests_with_c_bodies(self):
        """The ROADMAP gap: a nest parsed from C-like text whose statement is
        an array assignment runs natively — the statement's own C text is
        the emitted body, the caller's arrays are mutated in place."""
        from repro.ir import enumerate_iterations, parse_loop_nest
        from repro.native import NativeRunResult
        from repro.runtime import RuntimeSession

        nest, _ = parse_loop_nest(
            """
            for (i = 0; i < N - 1; i++)
              for (j = i + 1; j < N; j++)
                visits(i, j) += 1.0;
            """,
            parameters=["N"],
            name="correlation_text",
        )
        values = {"N": 24}
        expected = np.zeros((24, 24))
        for i, j in enumerate_iterations(nest, values):
            expected[i, j] += 1.0
        data = {"visits": np.zeros((24, 24))}
        with RuntimeSession(workers=1) as session:
            result = session.run(nest, values, data=data, backend="native")
        assert isinstance(result, NativeRunResult)
        assert sum(result.results) == int(expected.sum())
        assert np.array_equal(data["visits"], expected)

    def test_parsed_nest_macro_ranks_follow_subscripts(self):
        """A parsed 1-D access must generate a 1-D macro (not the 2-D
        default), both whole-range and as a hybrid plan."""
        from repro.ir import enumerate_iterations, parse_loop_nest
        from repro.runtime import RuntimeSession, build_plan

        nest, _ = parse_loop_nest(
            """
            for (i = 0; i < N; i++)
              for (j = i; j < N; j++)
                hist(i) += 1.0;
            """,
            parameters=["N"],
            name="histogram_text",
        )
        values = {"N": 16}
        expected = np.zeros(16)
        for i, _j in enumerate_iterations(nest, values):
            expected[i] += 1.0
        data = {"hist": np.zeros(16)}
        with RuntimeSession(workers=1) as session:
            session.run(nest, values, data=data, backend="native")
        assert np.array_equal(data["hist"], expected)
        plan = build_plan(nest, values, native=True, iteration_op=_dummy_op)
        assert plan.native_spec.array_ndims == (1,)

    def test_native_nest_run_requires_data(self):
        from repro.ir import parse_loop_nest
        from repro.runtime import RuntimeSession
        from repro.runtime.plan import PlanError

        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i, i) = 1.0;", parameters=["N"]
        )
        with RuntimeSession(workers=1) as session:
            with pytest.raises(PlanError, match="data="):
                session.run(nest, {"N": 8}, backend="native")

    def test_unknown_backend_is_rejected(self):
        from repro.runtime import RuntimeSession
        from repro.runtime.plan import PlanError

        with RuntimeSession(workers=1) as session:
            with pytest.raises(PlanError, match="unknown backend"):
                session.run("utma", {"N": 10}, backend="fortran")

    def test_native_backend_rejects_engine_only_kwargs(self):
        from repro.runtime import RuntimeSession
        from repro.runtime.plan import PlanError

        with RuntimeSession(workers=1) as session:
            with pytest.raises(PlanError, match="iteration_op"):
                session.run("utma", {"N": 10}, backend="native", iteration_op=_dummy_op)
            # named engine-only parameters are rejected too, not dropped
            with pytest.raises(PlanError, match="depth"):
                session.run("utma", {"N": 10}, backend="native", depth=1)
            with pytest.raises(PlanError, match="recovery"):
                session.run("utma", {"N": 10}, backend="native", recovery="symbolic")
            with pytest.raises(PlanError, match="fresh_data"):
                session.run("utma", {"N": 10}, backend="native", fresh_data=False)

    def test_threads_is_explicit_and_engine_path_rejects_it(self):
        from repro.kernels import get_kernel, run_original
        from repro.runtime import RuntimeSession
        from repro.runtime.plan import PlanError

        values = {"N": 32}
        with RuntimeSession(workers=1) as session:
            data = session.run("utma", values, backend="native", threads=2)
            expected = run_original(get_kernel("utma"), values)
            assert np.array_equal(data["c"], expected["c"])
            with pytest.raises(PlanError, match="native-backend option"):
                session.run("utma", values, threads=2)

    def test_caller_data_is_not_mutated(self):
        from repro.kernels import get_kernel
        from repro.runtime import RuntimeSession

        kernel = get_kernel("utma")
        values = {"N": 48}
        data = kernel.make_data(values)
        before = {name: value.copy() for name, value in data.items()}
        with RuntimeSession(workers=1) as session:
            result = session.run(kernel, values, data=data, backend="native")
        for name in before:
            assert np.array_equal(data[name], before[name])
        assert not np.array_equal(result["c"], before["c"])
