"""Sanitizer-instrumented builds and the warning-free codegen contract.

Every test needing a compiler (or a specific sanitizer runtime) skips where
the capability is absent — the same acceptance contract as the rest of the
native suite.  ASan is only *compiled* here, never loaded: an ASan shared
object cannot ``dlopen`` into an uninstrumented interpreter (CI preloads
``libasan`` for the end-to-end smoke); UBSan has no such constraint, so the
end-to-end instrumented run uses it.
"""

import numpy as np
import pytest

from repro.native import (
    SANITIZER_PRESETS,
    default_sanitize,
    native_available,
    sanitize_flags,
    sanitize_supported,
)


def _native_or_skip():
    if not native_available():
        pytest.skip("no C compiler on this machine")


def _sanitizer_or_skip(spec):
    _native_or_skip()
    if not sanitize_supported(spec):
        pytest.skip(f"compiler has no {spec!r} sanitizer runtime")


# ---------------------------------------------------------------------- #
# preset resolution
# ---------------------------------------------------------------------- #
def test_preset_flags():
    assert sanitize_flags(None) == ()
    assert sanitize_flags("") == ()
    assert sanitize_flags("undefined") == ("-fsanitize=undefined", "-g")
    assert "-fsanitize=address,undefined" in sanitize_flags("address,undefined")
    assert "-fno-omit-frame-pointer" in sanitize_flags("address")
    assert sanitize_flags("thread") == ("-fsanitize=thread", "-g")


def test_unknown_preset_is_rejected():
    with pytest.raises(ValueError, match="unknown sanitizer preset"):
        sanitize_flags("memory")


def test_environment_preset(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
    assert default_sanitize() is None
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "undefined")
    assert default_sanitize() == "undefined"


@pytest.mark.parametrize("spec", sorted(SANITIZER_PRESETS))
def test_presets_compile_where_supported(spec):
    _sanitizer_or_skip(spec)  # sanitize_supported itself compiles the probe


# ---------------------------------------------------------------------- #
# cache keys
# ---------------------------------------------------------------------- #
def test_sanitized_and_plain_builds_never_collide():
    _sanitizer_or_skip("undefined")
    from repro.native import compile_shared_library

    source = "double repro_cache_probe(void) { return 4.0; }\n"
    plain = compile_shared_library(source, tag="sanitizecache")
    sanitized = compile_shared_library(
        source, tag="sanitizecache", sanitize="undefined"
    )
    assert plain != sanitized


def test_module_memo_key_includes_the_sanitizer(correlation_nest):
    _sanitizer_or_skip("undefined")
    from repro.core import collapse
    from repro.native import compile_collapsed

    collapsed = collapse(correlation_nest)
    plain = compile_collapsed(collapsed)
    sanitized = compile_collapsed(collapsed, sanitize="undefined")
    assert plain is not sanitized
    assert plain.library_path != sanitized.library_path
    assert compile_collapsed(collapsed, sanitize="undefined") is sanitized


def test_environment_preset_reaches_the_module_cache(correlation_nest, monkeypatch):
    _sanitizer_or_skip("undefined")
    from repro.core import collapse
    from repro.native import compile_collapsed

    collapsed = collapse(correlation_nest)
    monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "undefined")
    via_env = compile_collapsed(collapsed)
    # the env preset resolves into the memo key, so the explicit spelling
    # finds the same module and an unset env never serves the sanitized one
    assert compile_collapsed(collapsed, sanitize="undefined") is via_env
    monkeypatch.delenv("REPRO_NATIVE_SANITIZE")
    assert compile_collapsed(collapsed) is not via_env


# ---------------------------------------------------------------------- #
# instrumented end-to-end run (UBSan: safe to dlopen uninstrumented)
# ---------------------------------------------------------------------- #
def test_ubsan_instrumented_run_matches_original():
    _sanitizer_or_skip("undefined")
    from repro.kernels import get_kernel
    from repro.kernels.execution import run_collapsed_native, run_original

    kernel = get_kernel("utma")
    values = dict(kernel.default_parameters)
    expected = run_original(kernel, values)
    instrumented = run_collapsed_native(kernel, values, sanitize="undefined")
    for name in expected:
        assert np.allclose(expected[name], instrumented[name])


# ---------------------------------------------------------------------- #
# warning-free codegen under -Wall -Wextra -Werror
# ---------------------------------------------------------------------- #
WERROR = ("-Wall", "-Wextra", "-Werror")


def test_every_native_kernel_unit_compiles_warning_free():
    """The generated C of every native kernel, under every recovery scheme,
    must compile clean under ``-Wall -Wextra -Werror`` — the lint CI bar."""
    _native_or_skip()
    from repro.kernels import native_kernels
    from repro.native import compile_native_kernel, flags_supported

    if not flags_supported(WERROR):
        pytest.skip("compiler does not accept -Wall -Wextra -Werror")
    for kernel in native_kernels():
        for schedule in ("static", "dynamic,8", "guided"):
            module = compile_native_kernel(
                kernel, schedule=schedule, extra_flags=WERROR
            )
            assert module.library_path.exists()


def test_bodyless_and_parameterless_units_compile_warning_free(correlation_nest):
    """The shapes that historically tripped -Werror: a unit with no arrays
    (unused pointer-table argument) and a nest with no parameters (unused
    repro_params)."""
    _native_or_skip()
    from repro.core import collapse
    from repro.ir import Loop, LoopNest
    from repro.native import compile_collapsed, flags_supported

    if not flags_supported(WERROR):
        pytest.skip("compiler does not accept -Wall -Wextra -Werror")
    bodyless = compile_collapsed(collapse(correlation_nest), extra_flags=WERROR)
    assert bodyless.library_path.exists()
    fixed = LoopNest(
        [Loop.make("i", 0, 6), Loop.make("j", 0, "i + 1")], name="fixed"
    )
    parameterless = compile_collapsed(collapse(fixed), extra_flags=WERROR)
    assert parameterless.total({}) == 21
