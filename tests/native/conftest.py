"""Shared infrastructure for the native-backend tests.

Every test that needs a C compiler is marked to *skip* (never fail) where
none exists — the acceptance contract of the backend on bare machines.
"""

import pytest

from repro.ir import Loop, LoopNest


@pytest.fixture
def correlation_nest() -> LoopNest:
    """Fig. 1: the triangular (i, j) sub-nest of the correlation kernel."""
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="correlation",
    )


@pytest.fixture
def figure6_nest() -> LoopNest:
    """Fig. 6: the 3-deep tetrahedral nest of Section IV-C (cubic roots)."""
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
        parameters=["N"],
        name="figure6",
    )


@pytest.fixture
def simplex3_nest() -> LoopNest:
    """A 3-deep simplex whose trip count passes 2^31 before N reaches 2600."""
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", 0, "j + 1")],
        parameters=["N"],
        name="simplex3",
    )
