"""Tests for ranking Ehrhart polynomials (Section III)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ranking_polynomial
from repro.ir import Loop, LoopNest, enumerate_iterations
from repro.symbolic import Polynomial


def P(name):
    return Polynomial.variable(name)


class TestPaperFormulas:
    def test_correlation_ranking_matches_section_iii(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        expected = (2 * P("i") * P("N") + 2 * P("j") - P("i") ** 2 - 3 * P("i")) / 2
        assert ranking.polynomial == expected

    def test_correlation_named_values_from_the_paper(self, correlation_nest):
        """r(0,1)=1, r(0,2)=2, r(0,3)=3, r(0,N-1)=N-1, r(1,2)=N, r(N-2,N-1)=N(N-1)/2."""
        ranking = ranking_polynomial(correlation_nest)
        n = 20
        assert ranking.rank((0, 1), {"N": n}) == 1
        assert ranking.rank((0, 2), {"N": n}) == 2
        assert ranking.rank((0, 3), {"N": n}) == 3
        assert ranking.rank((0, n - 1), {"N": n}) == n - 1
        assert ranking.rank((1, 2), {"N": n}) == n
        assert ranking.rank((n - 2, n - 1), {"N": n}) == n * (n - 1) // 2

    def test_correlation_total(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        assert ranking.total == (P("N") * (P("N") - 1)) / 2

    def test_figure6_ranking_matches_section_ivc(self, figure6_nest):
        ranking = ranking_polynomial(figure6_nest)
        i, j, k = P("i"), P("j"), P("k")
        expected = (6 * k - 3 * j ** 2 + 6 * i * j + 3 * j + i ** 3 + 3 * i ** 2 + 2 * i + 6) / 6
        assert ranking.polynomial == expected

    def test_figure6_total_is_tetrahedral(self, figure6_nest):
        ranking = ranking_polynomial(figure6_nest)
        assert ranking.total == (P("N") ** 3 - P("N")) / 6

    def test_rectangular_ranking_is_row_major_order(self, rectangular_nest):
        ranking = ranking_polynomial(rectangular_nest)
        assert ranking.polynomial == P("M") * P("i") + P("j") + 1


class TestBijectionProperty:
    @pytest.mark.parametrize(
        "fixture_name,sizes",
        [
            ("correlation_nest", [{"N": 3}, {"N": 7}, {"N": 12}]),
            ("figure6_nest", [{"N": 4}, {"N": 8}]),
            ("simplex4_nest", [{"N": 5}, {"N": 7}]),
            ("rectangular_nest", [{"N": 4, "M": 6}]),
            ("trapezoidal_nest", [{"N": 5, "M": 3}]),
            ("rhomboidal_nest", [{"N": 6}]),
        ],
    )
    def test_validate_for_all_paper_shapes(self, fixture_name, sizes, request):
        nest = request.getfixturevalue(fixture_name)
        ranking = ranking_polynomial(nest)
        for parameter_values in sizes:
            assert ranking.validate(parameter_values), (fixture_name, parameter_values)

    def test_rank_is_dense_and_monotone(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        values = {"N": 9}
        ranks = [ranking.rank(it, values) for it in enumerate_iterations(correlation_nest, values)]
        assert ranks == list(range(1, len(ranks) + 1))

    def test_partial_depth_ranking(self, figure6_nest):
        """Collapsing only the two outer loops ranks (i, j) pairs."""
        ranking = ranking_polynomial(figure6_nest, depth=2)
        values = {"N": 8}
        assert ranking.validate(values)
        assert ranking.total_iterations(values) == sum(1 for _ in enumerate_iterations(figure6_nest, values, 2))

    def test_depth_one_ranking_is_offset_index(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest, depth=1)
        assert ranking.rank((4,), {"N": 10}) == 5


class TestErrorsAndEdgeCases:
    def test_bad_depth_rejected(self, correlation_nest):
        with pytest.raises(ValueError):
            ranking_polynomial(correlation_nest, depth=0)
        with pytest.raises(ValueError):
            ranking_polynomial(correlation_nest, depth=3)

    def test_rank_arity_check(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        with pytest.raises(ValueError):
            ranking.rank((1,), {"N": 5})

    def test_rank_requires_parameter_values(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        with pytest.raises(KeyError):
            ranking.rank((0, 1), {})

    def test_ranks_outside_the_domain_are_not_bijective(self, figure6_nest):
        """Outside the iteration domain the polynomial may collide with valid
        ranks — callers must not feed out-of-domain points (validate() covers
        the in-domain bijection)."""
        ranking = ranking_polynomial(figure6_nest)
        values = {"N": 5}
        out_of_domain = ranking.rank((0, 1, 0), values)   # violates k >= j
        in_domain = ranking.rank((0, 0, 0), values)
        assert out_of_domain == in_domain

    def test_total_negative_for_degenerate_parameters(self, correlation_nest):
        # with N = 0 the outer loop alone would have to run "N - 1 = -1" times
        ranking = ranking_polynomial(correlation_nest, depth=1)
        with pytest.raises(ValueError):
            ranking.total_iterations({"N": 0})

    def test_total_zero_for_empty_domain(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        assert ranking.total_iterations({"N": 1}) == 0

    def test_str_mentions_iterators(self, correlation_nest):
        assert "r(i, j)" in str(ranking_polynomial(correlation_nest))

    def test_partial_rank_polynomial_levels(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        # level 1: j replaced by its parametric minimum i+1
        level1 = ranking.partial_rank_polynomial(1)
        assert level1.evaluate({"i": 0, "N": 10}) == 1
        assert level1.evaluate({"i": 1, "N": 10}) == 10
        with pytest.raises(ValueError):
            ranking.partial_rank_polynomial(0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=9), skew=st.integers(min_value=0, max_value=2))
def test_property_ranking_is_bijective_on_random_skewed_nests(n, skew):
    nest = LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", f"{skew}*i", f"N + {skew}*i")],
        parameters=["N"],
        name="skewed",
    )
    ranking = ranking_polynomial(nest)
    assert ranking.validate({"N": n})


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=8))
def test_property_rank_of_successor_increments_by_one(n):
    nest = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"], name="corr"
    )
    ranking = ranking_polynomial(nest)
    values = {"N": n}
    iterations = list(enumerate_iterations(nest, values))
    for first, second in zip(iterations, iterations[1:]):
        assert ranking.rank(second, values) == ranking.rank(first, values) + 1
