"""Tests for cross-shape iteration remapping (the paper's future-work application)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IterationRemap, RemapError
from repro.ir import Loop, LoopNest, enumerate_iterations


def triangle_nest():
    """The strict upper triangle: (N-1)N/2 iterations."""
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"], name="triangle"
    )


def rectangle_nest():
    """A rectangle: R * C iterations."""
    return LoopNest(
        [Loop.make("a", 0, "R"), Loop.make("b", 0, "C")], parameters=["R", "C"], name="rectangle"
    )


def flat_nest():
    """A single loop of length L."""
    return LoopNest([Loop.make("p", 0, "L")], parameters=["L"], name="flat")


class TestCompatibility:
    def test_equal_sizes_accepted(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        # triangle with N=9 has 36 iterations == 6x6 rectangle
        assert remap.check_compatible({"N": 9}, {"R": 6, "C": 6}) == 36

    def test_mismatched_sizes_rejected(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        with pytest.raises(RemapError):
            remap.check_compatible({"N": 9}, {"R": 5, "C": 5})


class TestBijection:
    def test_triangle_to_rectangle_is_a_bijection(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        source_values, target_values = {"N": 9}, {"R": 6, "C": 6}
        images = [
            remap.map_indices(indices, source_values, target_values)
            for indices in enumerate_iterations(triangle_nest(), source_values)
        ]
        assert sorted(images) == sorted(enumerate_iterations(rectangle_nest(), target_values))

    def test_rank_order_is_preserved(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        source_values, target_values = {"N": 9}, {"R": 6, "C": 6}
        images = [
            remap.map_indices(indices, source_values, target_values)
            for indices in enumerate_iterations(triangle_nest(), source_values)
        ]
        assert images == sorted(images)  # lexicographic order maps to lexicographic order

    def test_inverse_round_trip(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        source_values, target_values = {"N": 9}, {"R": 6, "C": 6}
        for indices in enumerate_iterations(triangle_nest(), source_values):
            image = remap.map_indices(indices, source_values, target_values)
            assert remap.inverse_indices(image, source_values, target_values) == indices

    def test_triangle_to_flat_is_the_collapse_itself(self):
        remap = IterationRemap.between(triangle_nest(), flat_nest())
        source_values, target_values = {"N": 5}, {"L": 10}
        for rank, indices in enumerate(enumerate_iterations(triangle_nest(), source_values), start=1):
            assert remap.map_indices(indices, source_values, target_values) == (rank - 1,)


class TestFusedIterations:
    def test_lockstep_walk_covers_both_domains(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        source_values, target_values = {"N": 9}, {"R": 6, "C": 6}
        pairs = list(remap.fused_iterations(source_values, target_values))
        assert [p[0] for p in pairs] == list(enumerate_iterations(triangle_nest(), source_values))
        assert [p[1] for p in pairs] == list(enumerate_iterations(rectangle_nest(), target_values))

    def test_chunked_fusion_partitions_the_space(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        source_values, target_values = {"N": 9}, {"R": 6, "C": 6}
        total = remap.check_compatible(source_values, target_values)
        pairs = []
        for start in range(1, total + 1, 7):
            pairs.extend(
                remap.fused_iterations(source_values, target_values, start, min(start + 6, total))
            )
        assert len(pairs) == total
        assert [p[0] for p in pairs] == list(enumerate_iterations(triangle_nest(), source_values))

    def test_incompatible_sizes_raise_before_iterating(self):
        remap = IterationRemap.between(triangle_nest(), rectangle_nest())
        with pytest.raises(RemapError):
            list(remap.fused_iterations({"N": 4}, {"R": 7, "C": 7}))


@settings(max_examples=10, deadline=None)
@given(rows=st.integers(min_value=1, max_value=6))
def test_property_triangle_to_rectangle_bijection_for_matching_sizes(rows):
    """A triangle of N=2k+1 rows always matches a k x (2k+1)... use exact pairs:
    triangle(N) has N(N-1)/2 points; pick rectangle 1 x N(N-1)/2."""
    n = rows + 2
    size = n * (n - 1) // 2
    remap = IterationRemap.between(triangle_nest(), rectangle_nest())
    source_values, target_values = {"N": n}, {"R": 1, "C": size}
    images = [
        remap.map_indices(indices, source_values, target_values)
        for indices in enumerate_iterations(triangle_nest(), source_values)
    ]
    assert images == [(0, c) for c in range(size)]
