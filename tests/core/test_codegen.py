"""Tests for the Python and C/OpenMP code generators."""

import cmath
import math

import pytest

from repro.core import (
    RecoveryStrategy,
    collapse,
    compile_collapsed_loop,
    generate_openmp_chunked,
    generate_openmp_collapsed,
    generate_python_source,
)
from repro.core.codegen_python import CodegenError
from repro.ir import Loop, LoopNest, enumerate_iterations


@pytest.fixture
def collapsed_correlation(correlation_nest):
    return collapse(correlation_nest)


@pytest.fixture
def collapsed_figure6(figure6_nest):
    return collapse(figure6_nest)


class TestPythonCodegen:
    def test_source_is_a_self_contained_function(self, collapsed_correlation):
        source = generate_python_source(collapsed_correlation)
        assert source.startswith("def collapsed_correlation(body, N, ")
        namespace = {"math": math, "cmath": cmath}
        exec(compile(source, "<test>", "exec"), namespace)
        assert callable(namespace["collapsed_correlation"])

    def test_compiled_function_reproduces_original_order(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation)
        visited = []
        executed = run(lambda i, j: visited.append((i, j)), N=15)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 15}))
        assert executed == len(visited)

    def test_compiled_chunk_matches_slice(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=15, first_pc=20, last_pc=50)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 15}))[19:50]

    def test_per_iteration_strategy_matches_chunked(self, collapsed_figure6, figure6_nest):
        chunked = compile_collapsed_loop(collapsed_figure6, RecoveryStrategy.FIRST_THEN_INCREMENT)
        per_iteration = compile_collapsed_loop(collapsed_figure6, RecoveryStrategy.PER_ITERATION)
        a, b = [], []
        chunked(lambda *idx: a.append(idx), N=9)
        per_iteration(lambda *idx: b.append(idx), N=9)
        assert a == b == list(enumerate_iterations(figure6_nest, {"N": 9}))

    def test_last_pc_defaults_and_clamps_to_total(self, collapsed_correlation):
        run = compile_collapsed_loop(collapsed_correlation)
        count = run(lambda i, j: None, N=10, last_pc=10 ** 9)
        assert count == 45

    def test_unguarded_code_still_correct_at_moderate_sizes(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation, guard=False)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=60)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 60}))

    def test_guarded_code_survives_large_sizes(self, collapsed_correlation):
        """Spot-check chunk starts at a size where doubles get imprecise."""
        run = compile_collapsed_loop(collapsed_correlation, guard=True)
        n = 3000
        total = n * (n - 1) // 2
        visited = []
        run(lambda i, j: visited.append((i, j)), N=n, first_pc=total - 3, last_pc=total)
        assert visited[-1] == (n - 2, n - 1)
        assert len(visited) == 4

    def test_multi_parameter_nest(self, trapezoidal_nest):
        collapsed = collapse(trapezoidal_nest)
        run = compile_collapsed_loop(collapsed)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=6, M=3)
        assert visited == list(enumerate_iterations(trapezoidal_nest, {"N": 6, "M": 3}))

    def test_bisection_levels_are_rejected(self):
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        collapsed = collapse(nest)
        with pytest.raises(CodegenError):
            generate_python_source(collapsed)


class TestCCodegen:
    def test_collapsed_c_has_pragma_and_recovery(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation)
        assert "#pragma omp parallel for" in source
        assert "schedule(static)" in source
        assert "csqrt" in source
        assert "creal" in source
        assert "for (long pc = 1; pc <=" in source
        assert "S(i, j);" in source

    def test_collapsed_c_mentions_complex_header(self, collapsed_figure6):
        source = generate_openmp_collapsed(collapsed_figure6)
        assert "#include <complex.h>" in source
        # the cubic recovery of Fig. 7 uses cpow for the cube root
        assert "cpow" in source

    def test_chunked_c_uses_firstprivate_flag(self, collapsed_correlation):
        source = generate_openmp_chunked(collapsed_correlation)
        assert "firstprivate(first_iteration)" in source
        assert "if (first_iteration)" in source
        assert "first_iteration = 0;" in source
        # incrementation in the style of Fig. 4
        assert "j++;" in source
        assert "i++;" in source

    def test_chunked_c_with_chunk_size(self, collapsed_correlation):
        source = generate_openmp_chunked(collapsed_correlation, chunk=128)
        assert "#define CHUNK 128" in source
        assert "schedule(static, CHUNK)" in source
        assert "(pc - 1) % CHUNK == 0" in source

    def test_dynamic_schedule_can_be_requested(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation, schedule="dynamic")
        assert "schedule(dynamic)" in source

    def test_ranking_polynomial_documented_in_header(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation)
        assert "r(i, j)" in source

    def test_three_level_incrementation_nests_carries(self, collapsed_figure6):
        source = generate_openmp_chunked(collapsed_figure6)
        assert "k++;" in source
        assert "j++;" in source
        assert "i++;" in source
