"""Tests for the Python and C/OpenMP code generators."""

import cmath
import math

import pytest

from repro.core import (
    RecoveryStrategy,
    collapse,
    compile_collapsed_loop,
    generate_openmp_chunked,
    generate_openmp_collapsed,
    generate_python_source,
)
from repro.core.codegen_python import CodegenError
from repro.ir import Loop, LoopNest, enumerate_iterations


@pytest.fixture
def collapsed_correlation(correlation_nest):
    return collapse(correlation_nest)


@pytest.fixture
def collapsed_figure6(figure6_nest):
    return collapse(figure6_nest)


class TestPythonCodegen:
    def test_source_is_a_self_contained_function(self, collapsed_correlation):
        source = generate_python_source(collapsed_correlation)
        assert source.startswith("def collapsed_correlation(body, N, ")
        namespace = {"math": math, "cmath": cmath}
        exec(compile(source, "<test>", "exec"), namespace)
        assert callable(namespace["collapsed_correlation"])

    def test_compiled_function_reproduces_original_order(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation)
        visited = []
        executed = run(lambda i, j: visited.append((i, j)), N=15)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 15}))
        assert executed == len(visited)

    def test_compiled_chunk_matches_slice(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=15, first_pc=20, last_pc=50)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 15}))[19:50]

    def test_per_iteration_strategy_matches_chunked(self, collapsed_figure6, figure6_nest):
        chunked = compile_collapsed_loop(collapsed_figure6, RecoveryStrategy.FIRST_THEN_INCREMENT)
        per_iteration = compile_collapsed_loop(collapsed_figure6, RecoveryStrategy.PER_ITERATION)
        a, b = [], []
        chunked(lambda *idx: a.append(idx), N=9)
        per_iteration(lambda *idx: b.append(idx), N=9)
        assert a == b == list(enumerate_iterations(figure6_nest, {"N": 9}))

    def test_last_pc_defaults_and_clamps_to_total(self, collapsed_correlation):
        run = compile_collapsed_loop(collapsed_correlation)
        count = run(lambda i, j: None, N=10, last_pc=10 ** 9)
        assert count == 45

    def test_unguarded_code_still_correct_at_moderate_sizes(self, collapsed_correlation, correlation_nest):
        run = compile_collapsed_loop(collapsed_correlation, guard=False)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=60)
        assert visited == list(enumerate_iterations(correlation_nest, {"N": 60}))

    def test_guarded_code_survives_large_sizes(self, collapsed_correlation):
        """Spot-check chunk starts at a size where doubles get imprecise."""
        run = compile_collapsed_loop(collapsed_correlation, guard=True)
        n = 3000
        total = n * (n - 1) // 2
        visited = []
        run(lambda i, j: visited.append((i, j)), N=n, first_pc=total - 3, last_pc=total)
        assert visited[-1] == (n - 2, n - 1)
        assert len(visited) == 4

    def test_multi_parameter_nest(self, trapezoidal_nest):
        collapsed = collapse(trapezoidal_nest)
        run = compile_collapsed_loop(collapsed)
        visited = []
        run(lambda i, j: visited.append((i, j)), N=6, M=3)
        assert visited == list(enumerate_iterations(trapezoidal_nest, {"N": 6, "M": 3}))

    def test_bisection_levels_are_rejected(self):
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        collapsed = collapse(nest)
        with pytest.raises(CodegenError):
            generate_python_source(collapsed)


class TestCCodegen:
    def test_collapsed_c_has_pragma_and_recovery(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation)
        assert "#pragma omp parallel for" in source
        assert "schedule(static)" in source
        assert "csqrt" in source
        assert "creal" in source
        # 64-bit on every ABI: a depth-3 nest at N=2048 overflows a 32-bit pc
        assert "for (long long pc = 1; pc <=" in source
        assert "S(i, j);" in source

    def test_recovery_emits_the_guarded_floor(self, collapsed_correlation):
        """The C recovery mirrors unranking.py: epsilon-padded floor seed,
        clamp, and the exact __int128 bracket correction — not the bare
        floor(creal(...)) that mis-recovers when a root lands just below an
        integer, and not the historical double/rint bracket that was only
        exact up to ~2^45."""
        source = generate_openmp_collapsed(collapsed_correlation)
        assert "+ 1e-09" in source                      # shared FLOOR_EPSILON
        # clamp happens in double: casting an Inf/NaN or out-of-range root
        # to long long would be undefined behaviour
        assert "if (isfinite(repro_root))" in source
        assert "if (repro_root < (double)repro_lo) i = repro_lo;" in source
        # the exact rank and the seed check on the cleared bracket numerator
        assert "const __int128 repro_rank = (__int128)pc *" in source
        assert "<= repro_rank" in source
        # a missed (or non-finite) seed bisects the remaining exact window
        assert "exact __int128 bisection" in source
        assert "while (repro_lo < repro_hi)" in source
        # the float-era bracket comparison is gone entirely
        assert "rint(" not in source
        # the historical buggy form is gone
        assert "= floor(creal(csqrt" not in source

    def test_chunked_recovery_is_guarded_too(self, collapsed_correlation):
        source = generate_openmp_chunked(collapsed_correlation, chunk=64)
        assert "+ 1e-09" in source
        assert "const __int128 repro_rank = (__int128)pc *" in source
        assert "while (repro_lo < repro_hi)" in source

    def test_collapsed_c_mentions_complex_header(self, collapsed_figure6):
        source = generate_openmp_collapsed(collapsed_figure6)
        assert "#include <complex.h>" in source
        # the cubic recovery of Fig. 7 uses cpow for the cube root
        assert "cpow" in source

    def test_chunked_c_uses_firstprivate_flag(self, collapsed_correlation):
        source = generate_openmp_chunked(collapsed_correlation)
        assert "firstprivate(first_iteration)" in source
        assert "if (first_iteration)" in source
        assert "first_iteration = 0;" in source
        # incrementation in the style of Fig. 4
        assert "j++;" in source
        assert "i++;" in source

    def test_chunked_c_with_chunk_size(self, collapsed_correlation):
        source = generate_openmp_chunked(collapsed_correlation, chunk=128)
        assert "#define CHUNK 128" in source
        assert "schedule(static, CHUNK)" in source
        assert "(pc - 1) % CHUNK == 0" in source

    def test_dynamic_schedule_can_be_requested(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation, schedule="dynamic")
        assert "schedule(dynamic)" in source

    def test_ranking_polynomial_documented_in_header(self, collapsed_correlation):
        source = generate_openmp_collapsed(collapsed_correlation)
        assert "r(i, j)" in source

    def test_three_level_incrementation_nests_carries(self, collapsed_figure6):
        source = generate_openmp_chunked(collapsed_figure6)
        assert "k++;" in source
        assert "j++;" in source
        assert "i++;" in source


class TestTranslationUnit:
    """Text-level checks of the complete-TU generator (compile-and-run
    coverage lives in tests/native/)."""

    def test_exports_and_headers(self, collapsed_correlation):
        from repro.core import NATIVE_SYMBOLS, generate_translation_unit

        source = generate_translation_unit(
            collapsed_correlation, body="visits(i, j) += 1.0;", arrays=("visits",)
        )
        for symbol in NATIVE_SYMBOLS:
            assert symbol in source
        assert "#include <complex.h>" in source
        assert "#ifdef _OPENMP" in source
        assert "#define visits(repro_r, repro_c)" in source
        # all index arithmetic is 64-bit
        assert "long" in source and " int pc" not in source

    def test_schedule_picks_recovery_scheme(self, collapsed_correlation):
        from repro.core import generate_translation_unit

        static = generate_translation_unit(collapsed_correlation, schedule="static")
        assert "repro_fresh" in static                  # Fig. 4 once-per-thread
        chunked = generate_translation_unit(collapsed_correlation, schedule="dynamic,64")
        assert "% 64LL == 0" in chunked                 # Section V once-per-chunk
        guided = generate_translation_unit(collapsed_correlation, schedule="guided")
        assert "repro_fresh" not in guided              # Fig. 3 per-iteration

    def test_adaptive_schedule_is_rejected(self, collapsed_correlation):
        from repro.core import generate_translation_unit

        with pytest.raises(CodegenError):
            generate_translation_unit(collapsed_correlation, schedule="adaptive")

    def test_array_name_clashes_are_rejected(self, collapsed_correlation):
        from repro.core import generate_translation_unit

        with pytest.raises(CodegenError):
            generate_translation_unit(collapsed_correlation, arrays=("i",))
        with pytest.raises(CodegenError):
            generate_translation_unit(collapsed_correlation, arrays=("repro_out",))

    def test_c_identifier_shadowing_is_rejected(self, collapsed_correlation):
        """An array macro named after a libm call we emit (or a C keyword)
        would corrupt the generated recovery — refuse it up front instead of
        surfacing a misleading compiler failure."""
        from repro.core import generate_translation_unit

        for name in ("floor", "creal", "isfinite", "double", "I"):
            with pytest.raises(CodegenError, match="shadows"):
                generate_translation_unit(collapsed_correlation, arrays=(name,))

    def test_run_range_is_serial_and_recovers_once(self, collapsed_correlation):
        """The hybrid backend's sub-range entry point: no OpenMP pragma of
        its own, one recovery at first_pc, Fig. 4 incrementation."""
        from repro.core import generate_translation_unit

        source = generate_translation_unit(collapsed_correlation, schedule="guided")
        _, _, run_range = source.partition("long long repro_run_range")
        assert run_range, "repro_run_range missing from the translation unit"
        assert "#pragma omp" not in run_range
        assert "const long long pc = first_pc;" in run_range
        assert "indices incrementation" in run_range
        assert "return last_pc - first_pc + 1;" in run_range

    def test_one_dimensional_array_macro_has_no_stride(self, collapsed_correlation):
        from repro.core import generate_translation_unit

        source = generate_translation_unit(
            collapsed_correlation,
            body="hist(i) += 1.0;",
            arrays=("hist",),
            array_ndims={"hist": 1},
        )
        assert "#define hist(repro_i0) (hist_p[(long long)(repro_i0)])" in source
        assert "hist_st" not in source

    def test_three_dimensional_macro_and_flat_strides_layout(self, collapsed_correlation):
        """A 3-D array consumes two strides slots; a following 2-D array's
        single stride comes after them in the flat table."""
        from repro.core import generate_translation_unit

        source = generate_translation_unit(
            collapsed_correlation,
            body="cube(i, j, 0) += flat(i, j);",
            arrays=("cube", "flat"),
            array_ndims={"cube": 3},
        )
        assert (
            "#define cube(repro_i0, repro_i1, repro_i2) "
            "(cube_p[(long long)(repro_i0) * cube_st0 + "
            "(long long)(repro_i1) * cube_st1 + (long long)(repro_i2)])"
        ) in source
        assert "const long long cube_st0 = repro_strides[0];" in source
        assert "const long long cube_st1 = repro_strides[1];" in source
        assert "const long long flat_st = repro_strides[2];" in source

    def test_two_dimensional_macro_spelling_is_unchanged(self, collapsed_correlation):
        """Back-compat: all-2-D units keep the historical macro and the
        one-stride-per-array ABI (kernel c_bodies rely on it)."""
        from repro.core import generate_translation_unit

        source = generate_translation_unit(
            collapsed_correlation, body="v(i, j) += 1.0;", arrays=("v",)
        )
        assert (
            "#define v(repro_r, repro_c) "
            "(v_p[(long long)(repro_r) * v_st + (long long)(repro_c)])"
        ) in source
        assert "const long long v_st = repro_strides[0];" in source

    def test_bad_array_ndims_are_rejected(self, collapsed_correlation):
        from repro.core import generate_translation_unit

        with pytest.raises(CodegenError, match="at least 1 dimension"):
            generate_translation_unit(
                collapsed_correlation, arrays=("v",), array_ndims={"v": 0}
            )
        with pytest.raises(CodegenError, match="not in the arrays list"):
            generate_translation_unit(
                collapsed_correlation, arrays=("v",), array_ndims={"w": 2}
            )

    def test_array_name_colliding_with_stride_identifiers_is_rejected(
        self, collapsed_correlation
    ):
        from repro.core import generate_translation_unit

        for clash in ("v_st", "v_p", "v_st0"):
            with pytest.raises(CodegenError, match="pointer/stride"):
                generate_translation_unit(collapsed_correlation, arrays=("v", clash))
        # merely *extending* a generated identifier is not a collision
        source = generate_translation_unit(
            collapsed_correlation,
            body="v(i, j) += v_step(i, j);",
            arrays=("v", "v_step"),
        )
        assert "#define v_step(repro_r, repro_c)" in source

    def test_bisection_levels_are_emitted_not_rejected(self):
        """Unlike the paper-figure printers, the TU generator covers levels
        outside the degree-4 closed forms with an emitted exact search."""
        from repro.core import collapse, generate_translation_unit

        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        source = generate_translation_unit(collapse(nest))
        assert "repro_lo < repro_hi" in source
        assert "i_mid" in source
