"""The exact rank-recovery contract (ISSUE 5).

Index recovery is exact *integer* arithmetic end to end: every bracket
check runs on the denominator-cleared bracket polynomial (big ints in
Python, ``__int128`` in the generated C), so recovery is correct at any
magnitude — the historical ``2**45`` float-trust limit of the batch path is
gone.  These tests pin the symbolic foundations (``integer_form`` /
``evaluate_int`` / integer compile mode), the single-source floor epsilon,
the non-finite-seed routing, and the exactness of the Python paths on
domains far past the float64 mantissa; the compiled-backend halves of the
same contract live in ``tests/native/test_native_backend.py``.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import batch_recovery, clear_batch_cache, clear_collapse_cache, collapse
from repro.ir import Loop, LoopNest
from repro.symbolic import Polynomial
from repro.symbolic.compile import CompileError, compile_polynomial


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_collapse_cache()
    clear_batch_cache()
    yield
    clear_collapse_cache()
    clear_batch_cache()


@pytest.fixture
def simplex3_nest() -> LoopNest:
    """Depth-3 simplex: total = N(N+1)(N+2)/6 passes 2^50 before N = 185000."""
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", 0, "j + 1")],
        parameters=["N"],
        name="simplex3",
    )


# the independent big-int reference unranker is shared across the exact-
# recovery pins (tests/core, tests/native, tests/integration) through the
# session fixture ``exact_reference_recover`` in tests/conftest.py


def probe_pcs(collapsed, parameter_values, straddle=(2**45, 2**50)):
    """Interesting ranks: ends, middles, level boundaries, and the straddle
    points just below/above the historical float-trust thresholds."""
    total = collapsed.total_iterations(parameter_values)
    n = parameter_values["N"]
    pcs = {1, 2, total // 2, total - 1, total}
    for i in (n - 1, n - 2, n // 2):  # first rank of an outer level ± 1
        rank = collapsed.rank_of((i, 0, 0), parameter_values)
        pcs.update({rank - 1, rank, rank + 1})
    for point in straddle:
        if 1 < point <= total:
            pcs.update({point - 1, point, point + 1})
    return sorted(pc for pc in pcs if 1 <= pc <= total)


# ---------------------------------------------------------------------- #
# symbolic foundations
# ---------------------------------------------------------------------- #
class TestIntegerForm:
    def test_clears_denominators_to_the_lcm(self):
        poly = (
            Polynomial.variable("i") ** 3 / 6
            + Polynomial.variable("i") ** 2 / 4
            + Polynomial.variable("i")
        )
        numerator, denominator = poly.integer_form()
        assert denominator == 12  # lcm(6, 4, 1)
        assert numerator.has_integer_coefficients()
        assert numerator / denominator == poly

    def test_integer_polynomial_is_its_own_numerator(self):
        poly = Polynomial.variable("i") * 3 - 7
        numerator, denominator = poly.integer_form()
        assert denominator == 1
        assert numerator == poly
        assert Polynomial.zero().integer_form() == (Polynomial.zero(), 1)

    def test_evaluate_int_is_exact_past_float64(self):
        poly = Polynomial.variable("n") ** 3 + Polynomial.variable("n") - 1
        n = 2**40  # n**3 = 2**120, hopeless for float64
        assert poly.evaluate_int({"n": n}) == n**3 + n - 1
        # NumPy integer scalars are coerced through int() and cannot overflow
        assert poly.evaluate_int({"n": np.int64(2**20)}) == 2**60 + 2**20 - 1

    def test_evaluate_int_rejects_fractional_coefficients(self):
        with pytest.raises(ValueError, match="integer coefficients"):
            (Polynomial.variable("i") / 2).evaluate_int({"i": 4})

    def test_bracket_numerator_matches_bracket_exactly(self, simplex3_nest):
        collapsed = collapse(simplex3_nest)
        for recovery in collapsed.unranking.recoveries:
            num, den = recovery.bracket_numerator, recovery.bracket_denominator
            assert num.has_integer_coefficients() and den >= 1
            point = {"N": 1000, "i": 700, "j": 300, "k": 100}
            assert Fraction(num.evaluate_int(point), den) == recovery.bracket.evaluate(point)


class TestIntegerCompileMode:
    def test_same_function_runs_ints_int64_and_object_arrays(self):
        poly, _ = (Polynomial.variable("i") ** 2 / 2 + Polynomial.variable("i") / 2).integer_form()
        compiled = compile_polynomial(poly, mode="integer")
        assert compiled(7) == 7**2 + 7
        small = np.arange(5, dtype=np.int64)
        np.testing.assert_array_equal(compiled(small), small**2 + small)
        huge = np.array([2**60, 2**61], dtype=object)
        assert list(compiled(huge)) == [2**120 + 2**60, 2**122 + 2**61]

    def test_fractional_coefficients_are_rejected(self):
        with pytest.raises(CompileError, match="integer coefficients"):
            compile_polynomial(Polynomial.variable("i") / 2, mode="integer")

    def test_expressions_reject_integer_mode(self):
        from repro.symbolic.compile import compile_expr
        from repro.symbolic.expression import Var

        with pytest.raises(CompileError, match="unknown compile mode"):
            compile_expr(Var("x"), mode="integer")


class TestExactBoundCeils:
    """Affine bound ceils are emitted as exact integer divisions, not float
    ``ceil`` — the last places a double could have re-entered the recovery."""

    def test_python_ceil_source_is_exact_at_any_magnitude(self):
        import math

        from repro.core.codegen_python import _ceil_source
        from repro.polyhedra import AffineExpr

        expr = AffineExpr.build({"i": Fraction(1, 2)}, Fraction(-1, 3))
        source = _ceil_source(expr)
        assert "math.ceil" not in source and "//" in source
        for i in (-7, -1, 0, 1, 5, 2**60 + 1):  # 2^60+1: float ceil would round
            value = eval(source, {"i": i})
            assert value == math.ceil(Fraction(1, 2) * i - Fraction(1, 3)), i
        # integer bounds stay plain integer arithmetic
        assert "//" not in _ceil_source(AffineExpr.build({"i": 2}, 3))

    def test_c_ceil_bound_uses_int128_division_not_double_ceil(self):
        import inspect

        from repro.core import codegen_c
        from repro.core.codegen_c import _c_ceil_bound
        from repro.polyhedra import AffineExpr

        source = _c_ceil_bound(AffineExpr.build({"i": Fraction(1, 2)}, Fraction(-1, 3)))
        assert "__int128" in source and "ceil(" not in source
        # and no emitter in the module falls back to a double ceil anywhere
        assert "ceil((double)" not in inspect.getsource(codegen_c)


# ---------------------------------------------------------------------- #
# one floor epsilon, one source of truth
# ---------------------------------------------------------------------- #
class TestFloorEpsilonSingleSource:
    def test_all_floor_sites_import_the_shared_constant(self):
        from repro.core import batch, codegen_c, codegen_python, unranking

        assert batch.FLOOR_EPSILON is unranking.FLOOR_EPSILON
        assert codegen_python.FLOOR_EPSILON is unranking.FLOOR_EPSILON
        assert codegen_c.FLOOR_EPSILON is unranking.FLOOR_EPSILON

    def test_duplicate_definitions_are_gone(self):
        from repro.core import batch, unranking

        assert not hasattr(batch, "_FLOOR_EPSILON")
        assert not hasattr(batch, "_TRUST_LIMIT")
        assert not hasattr(unranking, "_FLOOR_EPSILON")

    def test_generated_sources_interpolate_the_shared_value(self, simplex3_nest):
        from repro.core import generate_python_source, generate_translation_unit, unranking

        collapsed = collapse(simplex3_nest)
        spelled = repr(unranking.FLOOR_EPSILON)
        assert spelled in generate_python_source(collapsed)
        assert spelled in generate_translation_unit(collapsed)

    def test_no_hardcoded_epsilon_literal_in_the_generators(self):
        import inspect

        from repro.core import codegen_c, codegen_python

        for module in (codegen_c, codegen_python):
            assert "1e-9" not in inspect.getsource(module), module.__name__


# ---------------------------------------------------------------------- #
# exactness past every float-trust threshold (Python + engine substrate)
# ---------------------------------------------------------------------- #
class TestExactRecoveryHugeMagnitudes:
    N = 400000  # total = 10 666 746 666 800 000 ≈ 2^53.2 > 2^50

    def test_batch_and_scalar_match_an_independent_reference(
        self, simplex3_nest, exact_reference_recover
    ):
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        total = collapsed.total_iterations(values)
        assert total > 2**50
        pcs = probe_pcs(collapsed, values)
        batch = batch_recovery(collapsed).recover_pcs(np.array(pcs, dtype=np.int64), values)
        for pc, row in zip(pcs, batch.tolist()):
            expected = exact_reference_recover(collapsed, pc, values)
            assert tuple(row) == expected, pc
            assert collapsed.recover_indices(pc, values) == expected, pc

    def test_round_trip_rank_of_recover_at_huge_ranks(self, simplex3_nest):
        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        for pc in probe_pcs(collapsed, values):
            assert collapsed.rank_of(collapsed.recover_indices(pc, values), values) == pc

    def test_generated_python_is_exact_at_huge_ranks(
        self, simplex3_nest, exact_reference_recover
    ):
        from repro.core import compile_collapsed_loop

        collapsed = collapse(simplex3_nest)
        values = {"N": self.N}
        run = compile_collapsed_loop(collapsed)
        total = collapsed.total_iterations(values)
        for first in (1, 2**45 - 2, 2**50 - 2, total - 3):
            visited = []
            run(lambda *idx: visited.append(idx), N=self.N, first_pc=first, last_pc=first + 3)
            assert visited == [
                exact_reference_recover(collapsed, pc, values) for pc in range(first, first + 4)
            ]

    def test_beyond_int64_bracket_bound_switches_to_big_ints(
        self, simplex3_nest, exact_reference_recover
    ):
        """A domain whose cleared brackets cannot fit int64 must still be
        exact: the bracket pass detects the a-priori bound and runs on
        big-int object arrays.  N = 3 000 000 keeps every pc inside int64
        but puts the cleared bracket terms (and pc * den) past 2**63."""
        from repro.core import BatchStats

        collapsed = collapse(simplex3_nest)
        values = {"N": 3_000_000}
        total = collapsed.total_iterations(values)
        assert total < 2**63 and total * 6 > 2**63
        pcs = [1, total // 3, total - 1, total]
        stats = BatchStats()
        recovered = batch_recovery(collapsed).recover_pcs(
            np.array(pcs, dtype=np.int64), values, stats
        )
        for pc, row in zip(pcs, recovered.tolist()):
            assert tuple(row) == exact_reference_recover(collapsed, pc, values), pc
        # seed certification must still work on the big-int carrier: an
        # object-dtype `ok` mask once made *every* element a suspect
        assert stats.exact_fixes < stats.iterations * collapsed.depth

    def test_trust_limit_and_scalar_fallback_are_gone(self):
        import inspect

        from repro.core import batch

        source = inspect.getsource(batch)
        assert "_TRUST_LIMIT" not in source
        assert "rint" not in source          # no float bracket comparisons left
        import re

        # no scalar re-recovery fallback (the old `self._exact` unranker)
        assert re.search(r"self\._exact\b(?!_bisect)", source) is None
        assert not hasattr(batch.BatchRecovery, "_vector_bisect")


class TestNonFiniteSeedsRouteToExactPath:
    def test_inf_and_nan_roots_recover_exactly(self, correlation_nest, exact_reference_recover):
        """A non-finite closed-form seed (degenerate branch / overflow) must
        route straight to the exact search — the historical code floored
        ``where(finite, raw, 0.0)``, which maps inf/nan to bracket 0 and
        could pass the lower-bound check."""
        import dataclasses

        from repro.core.batch import BatchRecovery, BatchStats

        collapsed = collapse(correlation_nest)
        values = {"N": 30}
        total = collapsed.total_iterations(values)
        recoverer = BatchRecovery(collapsed)

        class _BrokenRoot:
            def __init__(self, inner):
                self.inner = inner

            def evaluate(self, assignment):
                raw = np.asarray(self.inner.evaluate(assignment))
                broken = raw.astype(complex).copy()
                broken[0::3] = complex(np.inf)
                broken[1::3] = complex(np.nan)
                return broken

        recoverer._plans[0] = dataclasses.replace(
            recoverer._plans[0], root=_BrokenRoot(recoverer._plans[0].root)
        )
        stats = BatchStats()
        recovered = recoverer.recover_range(1, total, values, stats)
        expected = np.array(
            [exact_reference_recover(collapsed, pc, values) for pc in range(1, total + 1)]
        )
        np.testing.assert_array_equal(recovered, expected)
        # every poisoned element was corrected through the exact path
        assert stats.exact_fixes >= (total + 1) // 3


# ---------------------------------------------------------------------- #
# the four-backend contract is reachable through verify_kernel
# ---------------------------------------------------------------------- #
class TestVerifyKernelBackends:
    def test_engine_backend_is_accepted(self):
        from repro.kernels import get_kernel, verify_kernel

        assert verify_kernel(get_kernel("utma"), {"N": 16}, backend="engine")

    def test_unknown_backend_error_names_all_four(self):
        from repro.kernels import get_kernel, verify_kernel

        with pytest.raises(ValueError, match="python.*engine.*native.*hybrid"):
            verify_kernel(get_kernel("utma"), {"N": 8}, backend="fortran")
