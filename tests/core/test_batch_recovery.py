"""Tests for the compiled batch recovery path (repro.core.batch)."""

import numpy as np
import pytest

from repro.core import (
    BatchRecovery,
    BatchRecoveryError,
    BatchStats,
    batch_recovery,
    clear_batch_cache,
    clear_collapse_cache,
    collapse,
    collapse_cache_info,
)
from repro.ir import Loop, LoopNest


def exhaustive_match(nest: LoopNest, parameter_values, depth=None) -> BatchStats:
    """Assert batch recovery equals the scalar path on the whole domain."""
    collapsed = collapse(nest, depth)
    total = collapsed.total_iterations(parameter_values)
    stats = BatchStats()
    recovered = batch_recovery(collapsed).recover_range(1, total, parameter_values, stats)
    expected = np.array(
        [collapsed.recover_indices(pc, parameter_values) for pc in range(1, total + 1)]
    )
    assert recovered.dtype == np.int64
    assert recovered.shape == (total, collapsed.depth)
    np.testing.assert_array_equal(recovered, expected)
    return stats


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_collapse_cache()
    clear_batch_cache()
    yield
    clear_collapse_cache()
    clear_batch_cache()


class TestElementwiseEquality:
    def test_triangular_nest(self, correlation_nest):
        for n in (2, 3, 7, 30):
            exhaustive_match(correlation_nest, {"N": n})

    def test_tetrahedral_nest(self, figure6_nest):
        stats = exhaustive_match(figure6_nest, {"N": 16})
        assert stats.bisection_levels == 0  # cube roots stay closed-form

    def test_quartic_simplex_nest(self, simplex4_nest):
        exhaustive_match(simplex4_nest, {"N": 10})

    def test_rectangular_nest(self, rectangular_nest):
        exhaustive_match(rectangular_nest, {"N": 6, "M": 9})

    def test_trapezoidal_nest(self, trapezoidal_nest):
        exhaustive_match(trapezoidal_nest, {"N": 9, "M": 5})

    def test_skewed_nest(self):
        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", "2*i", "2*i + M")],
            parameters=["N", "M"],
            name="skewed_batch",
        )
        exhaustive_match(nest, {"N": 11, "M": 6})

    def test_degree5_fallback_nest(self):
        # a 5-deep simplex: the outer level's equation has degree 5, which is
        # beyond the paper's closed forms — the scalar path bisects, the
        # batch path must match through its vectorized bisection
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5_batch",
        )
        collapsed = collapse(nest)
        assert not collapsed.uses_only_closed_forms()
        recoverer = batch_recovery(collapsed)
        assert not recoverer.uses_only_closed_forms()
        stats = exhaustive_match(nest, {"N": 8})
        assert stats.bisection_levels >= 1

    def test_partial_collapse_depth(self, figure6_nest):
        exhaustive_match(figure6_nest, {"N": 12}, depth=2)

    def test_guard_false_loops_still_recover_exactly(self, figure6_nest):
        # the batch path promises the *guarded* (exact) result even when the
        # collapsed loop was built with guard=False: the exact integer
        # bracket pass certifies every element regardless of the flag
        unguarded = collapse(figure6_nest, guard=False)
        guarded = collapse(figure6_nest)
        values = {"N": 16}
        total = guarded.total_iterations(values)
        recovered = batch_recovery(unguarded).recover_range(1, total, values)
        expected = np.array([guarded.recover_indices(pc, values) for pc in range(1, total + 1)])
        np.testing.assert_array_equal(recovered, expected)

    def test_collapse_depth_one(self, correlation_nest):
        exhaustive_match(correlation_nest, {"N": 9}, depth=1)

    def test_executable_kernels_match(self):
        from repro.kernels import executable_kernels

        for kernel in executable_kernels()[:3]:
            values = {name: max(6, value // 10) for name, value in kernel.bench_parameters.items()}
            exhaustive_match(kernel.nest, values, kernel.collapse_depth)


class TestRangesAndValidation:
    def test_sub_range_matches_offsets(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        values = {"N": 20}
        recovered = batch_recovery(collapsed).recover_range(10, 40, values)
        for offset, row in enumerate(recovered.tolist()):
            assert tuple(row) == collapsed.recover_indices(10 + offset, values)

    def test_empty_range(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        recovered = batch_recovery(collapsed).recover_range(5, 4, {"N": 10})
        assert recovered.shape == (0, 2)

    def test_single_element(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        recovered = batch_recovery(collapsed).recover_range(1, 1, {"N": 10})
        assert tuple(recovered[0].tolist()) == collapsed.recover_indices(1, {"N": 10})

    def test_arbitrary_unsorted_pcs(self, figure6_nest):
        collapsed = collapse(figure6_nest)
        values = {"N": 10}
        pcs = np.array([7, 1, 100, 42, 7])
        recovered = batch_recovery(collapsed).recover_pcs(pcs, values)
        for pc, row in zip(pcs.tolist(), recovered.tolist()):
            assert tuple(row) == collapsed.recover_indices(pc, values)

    def test_out_of_range_pc_raises(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        recoverer = batch_recovery(collapsed)
        with pytest.raises(BatchRecoveryError):
            recoverer.recover_range(0, 5, {"N": 10})
        with pytest.raises(BatchRecoveryError):
            recoverer.recover_range(1, 46, {"N": 10})  # total is 45

    def test_non_1d_pcs_raises(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        with pytest.raises(BatchRecoveryError):
            batch_recovery(collapsed).recover_pcs(np.ones((2, 2), dtype=np.int64), {"N": 10})

    def test_iterate_is_a_drop_in_for_iterate_chunk(self, correlation_nest):
        from repro.core import iterate_chunk

        collapsed = collapse(correlation_nest)
        values = {"N": 14}
        batch = list(batch_recovery(collapsed).iterate(3, 50, values))
        scalar = list(iterate_chunk(collapsed, 3, 50, values))
        assert batch == scalar
        assert all(isinstance(v, int) for row in batch for v in row)

    def test_stats_accumulate(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        stats = BatchStats()
        recoverer = batch_recovery(collapsed)
        recoverer.recover_range(1, 10, {"N": 10}, stats)
        recoverer.recover_range(11, 20, {"N": 10}, stats)
        assert stats.iterations == 20
        assert stats.vector_levels == 4  # 2 levels x 2 calls
        merged = stats.merge(stats)
        assert merged.iterations == 40


class TestMemoCaches:
    def test_collapse_cache_returns_identical_object(self, correlation_nest):
        first = collapse(correlation_nest)
        second = collapse(correlation_nest)
        assert first is second
        assert collapse_cache_info()["entries"] == 1

    def test_structurally_equal_nests_share_one_entry(self):
        def make():
            return LoopNest(
                [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
                parameters=["N"],
                name="cache_probe",
            )

        assert collapse(make()) is collapse(make())

    def test_different_options_get_different_entries(self, correlation_nest):
        guarded = collapse(correlation_nest)
        unguarded = collapse(correlation_nest, guard=False)
        assert guarded is not unguarded
        assert collapse_cache_info()["entries"] == 2

    def test_use_cache_false_forces_fresh_construction(self, correlation_nest):
        first = collapse(correlation_nest)
        fresh = collapse(correlation_nest, use_cache=False)
        assert first is not fresh

    def test_batch_recovery_is_memoised(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        assert batch_recovery(collapsed) is batch_recovery(collapsed)
        assert batch_recovery(collapsed) is batch_recovery(collapse(correlation_nest))

    def test_clear_batch_cache(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        first = batch_recovery(collapsed)
        clear_batch_cache()
        assert batch_recovery(collapsed) is not first

    def test_direct_construction_bypasses_cache(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        assert BatchRecovery(collapsed) is not BatchRecovery(collapsed)


class TestExecutorIntegration:
    def test_run_collapsed_inline_compiled_vs_symbolic(self, correlation_nest):
        from repro.openmp import run_collapsed_inline

        collapsed = collapse(correlation_nest)
        values = {"N": 16}
        seen = {"compiled": [], "symbolic": []}
        for recovery in ("compiled", "symbolic"):
            result = run_collapsed_inline(
                collapsed,
                lambda *indices: seen[recovery].append(indices),
                values,
                workers=3,
                recovery=recovery,
            )
            assert sum(result.results) == collapsed.total_iterations(values)
            assert len(result.chunks) == 3
        assert seen["compiled"] == seen["symbolic"]

    def test_run_collapsed_inline_rejects_unknown_backend(self, correlation_nest):
        from repro.openmp import run_collapsed_inline

        collapsed = collapse(correlation_nest)
        with pytest.raises(ValueError):
            run_collapsed_inline(collapsed, lambda *i: None, {"N": 8}, recovery="quantum")

    def test_kernel_chunked_run_with_compiled_recovery(self):
        from repro.kernels import get_kernel, run_collapsed_chunks, run_original

        kernel = get_kernel("utma")
        values = {"N": 24}
        data = kernel.make_data(values)
        original = run_original(kernel, values, data)
        compiled = run_collapsed_chunks(kernel, values, data, threads=3, recovery="compiled")
        for name in original:
            np.testing.assert_allclose(original[name], compiled[name])

    def test_kernel_verify_with_compiled_recovery(self):
        from repro.kernels import get_kernel, verify_kernel

        kernel = get_kernel("utma")
        assert verify_kernel(kernel, {"N": 24}, recovery="compiled")

    def test_measured_throughput_reports_speedup(self, correlation_nest):
        from repro.analysis import measure_recovery_throughput

        collapsed = collapse(correlation_nest)
        values = {"N": 48}
        compiled = measure_recovery_throughput(collapsed, values, recovery="compiled")
        symbolic = measure_recovery_throughput(collapsed, values, recovery="symbolic")
        assert compiled.iterations == symbolic.iterations == collapsed.total_iterations(values)
        assert compiled.elapsed_seconds < symbolic.elapsed_seconds
        with pytest.raises(ValueError):
            measure_recovery_throughput(collapsed, values, recovery="quantum")
