"""Shared fixtures: the loop nests used throughout the paper."""

import pytest

from repro.ir import Loop, LoopNest


@pytest.fixture
def correlation_nest() -> LoopNest:
    """Fig. 1: the triangular (i, j) sub-nest of the correlation kernel."""
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="correlation",
    )


@pytest.fixture
def figure6_nest() -> LoopNest:
    """Fig. 6: the 3-deep tetrahedral nest of Section IV-C."""
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
        parameters=["N"],
        name="figure6",
    )


@pytest.fixture
def simplex4_nest() -> LoopNest:
    """A 4-deep simplex nest whose outer-index inversion is a quartic."""
    return LoopNest(
        [
            Loop.make("i", 0, "N"),
            Loop.make("j", 0, "i + 1"),
            Loop.make("k", 0, "j + 1"),
            Loop.make("l", 0, "k + 1"),
        ],
        parameters=["N"],
        name="simplex4",
    )


@pytest.fixture
def rectangular_nest() -> LoopNest:
    """A plain rectangular nest (what OpenMP collapse already handles)."""
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "M")],
        parameters=["N", "M"],
        name="rectangular",
    )


@pytest.fixture
def trapezoidal_nest() -> LoopNest:
    """A trapezoidal nest: inner trip count i + M."""
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + M")],
        parameters=["N", "M"],
        name="trapezoid",
    )


@pytest.fixture
def rhomboidal_nest() -> LoopNest:
    """A rhomboidal (skewed) nest: j ranges over a window sliding with i."""
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", "i", "i + N")],
        parameters=["N"],
        name="rhomboid",
    )
