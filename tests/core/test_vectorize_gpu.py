"""Tests for the vectorisation and GPU-warp schemes (Section VI)."""

import pytest

from repro.core import collapse, vectorize_collapsed, warp_schedule
from repro.ir import enumerate_iterations


@pytest.fixture
def collapsed_correlation(correlation_nest):
    return collapse(correlation_nest)


@pytest.fixture
def collapsed_figure6(figure6_nest):
    return collapse(figure6_nest)


class TestVectorize:
    def test_lanes_cover_chunk_in_order(self, collapsed_correlation, correlation_nest):
        values = {"N": 12}
        total = collapsed_correlation.total_iterations(values)
        execution = vectorize_collapsed(collapsed_correlation, values, 1, total, vlength=4)
        assert execution.iterations() == list(enumerate_iterations(correlation_nest, values))

    def test_single_costly_recovery_per_thread(self, collapsed_correlation):
        values = {"N": 12}
        execution = vectorize_collapsed(collapsed_correlation, values, 1, 30, vlength=8)
        assert execution.stats.costly_recoveries == 1
        assert execution.stats.iterations == 30

    def test_bodies_have_vector_width_except_tail(self, collapsed_correlation):
        values = {"N": 12}
        execution = vectorize_collapsed(collapsed_correlation, values, 1, 30, vlength=8)
        widths = [body.width for body in execution.bodies]
        assert widths == [8, 8, 8, 6]
        assert execution.bodies[0].first_pc == 1
        assert execution.bodies[-1].first_pc == 25

    def test_lanes_cross_row_boundaries(self, collapsed_correlation):
        """A vector body may span several rows of the triangle — the point of
        pre-computing the index tuples instead of incrementing only j."""
        values = {"N": 6}
        execution = vectorize_collapsed(collapsed_correlation, values, 1, 15, vlength=8)
        first_body_rows = {indices[0] for indices in execution.bodies[0].lanes}
        assert len(first_body_rows) > 1

    def test_empty_chunk(self, collapsed_correlation):
        execution = vectorize_collapsed(collapsed_correlation, {"N": 12}, 10, 5, vlength=4)
        assert execution.bodies == []
        assert execution.stats.costly_recoveries == 0

    def test_vlength_one_degenerates_to_scalar(self, collapsed_figure6, figure6_nest):
        values = {"N": 7}
        total = collapsed_figure6.total_iterations(values)
        execution = vectorize_collapsed(collapsed_figure6, values, 1, total, vlength=1)
        assert execution.iterations() == list(enumerate_iterations(figure6_nest, values))

    def test_invalid_vlength(self, collapsed_correlation):
        with pytest.raises(ValueError):
            vectorize_collapsed(collapsed_correlation, {"N": 6}, 1, 10, vlength=0)

    def test_multi_thread_partition(self, collapsed_correlation, correlation_nest):
        """Splitting the collapsed range over threads, then vectorising each
        chunk, still covers the iteration space exactly once."""
        values = {"N": 14}
        total = collapsed_correlation.total_iterations(values)
        threads = 4
        everything = []
        for thread in range(threads):
            first = thread * total // threads + 1
            last = (thread + 1) * total // threads
            execution = vectorize_collapsed(
                collapsed_correlation, values, first, last, vlength=4, thread=thread
            )
            everything.extend(execution.iterations())
        assert everything == list(enumerate_iterations(correlation_nest, values))


class TestWarpSchedule:
    def test_threads_interleave_consecutive_iterations(self, collapsed_correlation):
        values = {"N": 10}
        executions = warp_schedule(collapsed_correlation, values, warp_size=4)
        # thread t executes pc = t+1, t+5, t+9, ... -> its first iteration is
        # the (t+1)-th original iteration
        original = list(enumerate_iterations(collapsed_correlation.nest, values))
        for thread, execution in enumerate(executions):
            assert execution.iterations[0] == original[thread]

    def test_union_of_threads_is_the_iteration_space(self, collapsed_figure6, figure6_nest):
        values = {"N": 8}
        executions = warp_schedule(collapsed_figure6, values, warp_size=5)
        visited = [it for execution in executions for it in execution.iterations]
        assert sorted(visited) == sorted(enumerate_iterations(figure6_nest, values))

    def test_each_thread_pays_one_recovery(self, collapsed_correlation):
        executions = warp_schedule(collapsed_correlation, {"N": 10}, warp_size=6)
        for execution in executions:
            if execution.iterations:
                assert execution.stats.costly_recoveries == 1

    def test_increments_are_warp_strided(self, collapsed_correlation):
        values = {"N": 10}
        warp_size = 4
        executions = warp_schedule(collapsed_correlation, values, warp_size=warp_size)
        busiest = executions[0]
        # between two executed iterations the thread advanced warp_size times
        assert busiest.stats.increments == warp_size * (len(busiest.iterations) - 1)

    def test_warp_larger_than_domain(self, collapsed_correlation):
        values = {"N": 3}   # 3 iterations only
        executions = warp_schedule(collapsed_correlation, values, warp_size=8)
        non_empty = [e for e in executions if e.iterations]
        assert len(non_empty) == 3
        assert all(len(e.iterations) == 1 for e in non_empty)

    def test_restricted_pc_window(self, collapsed_correlation, correlation_nest):
        values = {"N": 10}
        executions = warp_schedule(collapsed_correlation, values, warp_size=3, first_pc=10, last_pc=20)
        visited = [it for e in executions for it in e.iterations]
        expected = list(enumerate_iterations(correlation_nest, values))[9:20]
        assert sorted(visited) == sorted(expected)

    def test_invalid_warp_size(self, collapsed_correlation):
        with pytest.raises(ValueError):
            warp_schedule(collapsed_correlation, {"N": 6}, warp_size=0)
