"""Tests for the end-to-end collapse transformation."""

import pytest

from repro.core import CollapseError, collapse
from repro.ir import ArrayAccess, Loop, LoopNest, Statement, enumerate_iterations
from repro.symbolic import Polynomial


class TestBasics:
    def test_collapse_correlation(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        N = Polynomial.variable("N")
        assert collapsed.depth == 2
        assert collapsed.total_polynomial == (N * (N - 1)) / 2
        assert collapsed.total_iterations({"N": 5000}) == 5000 * 4999 // 2
        assert collapsed.validate({"N": 12})

    def test_collapse_figure6(self, figure6_nest):
        collapsed = collapse(figure6_nest)
        assert collapsed.total_iterations({"N": 9}) == (9 ** 3 - 9) // 6
        assert collapsed.validate({"N": 9})

    def test_collapse_partial_depth(self, figure6_nest):
        collapsed = collapse(figure6_nest, depth=2)
        assert collapsed.depth == 2
        assert collapsed.iterators == ("i", "j")
        assert collapsed.validate({"N": 10})

    def test_collapse_depth_one(self, correlation_nest):
        collapsed = collapse(correlation_nest, depth=1)
        assert collapsed.total_iterations({"N": 10}) == 9
        assert collapsed.recover_indices(4, {"N": 10}) == (3,)

    def test_collapse_rectangular_matches_openmp_semantics(self, rectangular_nest):
        """For constant bounds our collapse degenerates to OpenMP's own formula."""
        collapsed = collapse(rectangular_nest)
        values = {"N": 4, "M": 6}
        assert collapsed.total_iterations(values) == 24
        for pc in range(1, 25):
            i, j = collapsed.recover_indices(pc, values)
            assert (i, j) == ((pc - 1) // 6, (pc - 1) % 6)

    def test_rank_and_recover_are_inverses(self, trapezoidal_nest):
        collapsed = collapse(trapezoidal_nest)
        values = {"N": 7, "M": 3}
        for indices in enumerate_iterations(trapezoidal_nest, values):
            assert collapsed.recover_indices(collapsed.rank_of(indices, values), values) == indices

    def test_iterations_generator_matches_original_order(self, rhomboidal_nest):
        collapsed = collapse(rhomboidal_nest)
        values = {"N": 6}
        assert list(collapsed.iterations(values)) == list(enumerate_iterations(rhomboidal_nest, values))

    def test_describe_contains_trip_count_and_recoveries(self, correlation_nest):
        text = collapse(correlation_nest).describe()
        assert "trip count" in text
        assert "floor" in text


class TestPreconditionsAndErrors:
    def test_invalid_depth(self, correlation_nest):
        with pytest.raises(CollapseError):
            collapse(correlation_nest, depth=0)
        with pytest.raises(CollapseError):
            collapse(correlation_nest, depth=5)

    def test_dependence_check_allows_correlation(self):
        nest = LoopNest(
            [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
            statements=[
                Statement(
                    "update",
                    (
                        ArrayAccess.write("a", "i", "j"),
                        ArrayAccess.read("a", "i", "j"),
                    ),
                ),
                Statement(
                    "mirror",
                    (ArrayAccess.write("a", "j", "i"), ArrayAccess.read("a", "i", "j")),
                ),
            ],
            parameters=["N"],
            name="correlation_with_accesses",
        )
        collapsed = collapse(nest, check_dependences=True)
        assert collapsed.validate({"N": 8})

    def test_dependence_check_rejects_carried_dependence(self):
        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1")],
            statements=[
                Statement(
                    "recurrence",
                    (ArrayAccess.write("a", "i + 1", "j"), ArrayAccess.read("a", "i", "j")),
                )
            ],
            parameters=["N"],
            name="recurrence",
        )
        with pytest.raises(CollapseError, match="dependence"):
            collapse(nest, check_dependences=True)

    def test_ltmp_inner_reduction_limits_collapse_depth(self):
        """The paper's ltmp case: only the two outer loops can be collapsed."""
        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
            statements=[
                Statement(
                    "fma",
                    (
                        ArrayAccess.write("c", "i", "j"),
                        ArrayAccess.read("c", "i", "j"),
                        ArrayAccess.read("a", "i", "k"),
                        ArrayAccess.read("b", "k", "j"),
                    ),
                )
            ],
            parameters=["N"],
            name="ltmp",
        )
        with pytest.raises(CollapseError):
            collapse(nest, depth=3, check_dependences=True)
        collapsed = collapse(nest, depth=2, check_dependences=True)
        assert collapsed.validate({"N": 7})

    def test_closed_forms_flag(self, correlation_nest):
        assert collapse(correlation_nest).uses_only_closed_forms()

    def test_sample_parameters_override(self, correlation_nest):
        collapsed = collapse(correlation_nest, sample_parameters={"N": 5})
        assert collapsed.validate({"N": 17})

    def test_custom_pc_name(self, correlation_nest):
        collapsed = collapse(correlation_nest, pc_name="flat")
        assert collapsed.pc_name == "flat"
        assert collapsed.validate({"N": 9})


class TestDegenerateDomains:
    def test_empty_domain_has_zero_iterations(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        assert collapsed.total_iterations({"N": 1}) == 0
        assert list(collapsed.iterations({"N": 1})) == []

    def test_single_iteration_domain(self, correlation_nest):
        collapsed = collapse(correlation_nest)
        assert collapsed.total_iterations({"N": 2}) == 1
        assert collapsed.recover_indices(1, {"N": 2}) == (0, 1)
