"""Tests for the recovery strategies and their cost accounting (Section V)."""

import pytest

from repro.core import RecoveryStats, RecoveryStrategy, collapse, iterate_chunk, recover_range
from repro.ir import enumerate_iterations


@pytest.fixture
def collapsed_correlation(correlation_nest):
    return collapse(correlation_nest)


@pytest.fixture
def collapsed_figure6(figure6_nest):
    return collapse(figure6_nest)


class TestChunkContents:
    def test_full_range_matches_original_order(self, collapsed_correlation, correlation_nest):
        values = {"N": 11}
        total = collapsed_correlation.total_iterations(values)
        chunk = recover_range(collapsed_correlation, 1, total, values)
        assert chunk == list(enumerate_iterations(correlation_nest, values))

    def test_both_strategies_agree(self, collapsed_figure6):
        values = {"N": 8}
        total = collapsed_figure6.total_iterations(values)
        first, last = total // 3, 2 * total // 3
        per_iteration = recover_range(
            collapsed_figure6, first, last, values, RecoveryStrategy.PER_ITERATION
        )
        incremented = recover_range(
            collapsed_figure6, first, last, values, RecoveryStrategy.FIRST_THEN_INCREMENT
        )
        assert per_iteration == incremented

    def test_chunks_partition_the_iteration_space(self, collapsed_correlation, correlation_nest):
        """Splitting [1, total] into arbitrary chunks loses and duplicates nothing."""
        values = {"N": 13}
        total = collapsed_correlation.total_iterations(values)
        chunk_size = 7
        recovered = []
        for start in range(1, total + 1, chunk_size):
            end = min(start + chunk_size - 1, total)
            recovered.extend(recover_range(collapsed_correlation, start, end, values))
        assert recovered == list(enumerate_iterations(correlation_nest, values))

    def test_empty_chunk(self, collapsed_correlation):
        assert recover_range(collapsed_correlation, 5, 4, {"N": 10}) == []

    def test_single_iteration_chunk(self, collapsed_correlation):
        values = {"N": 10}
        assert recover_range(collapsed_correlation, 1, 1, values) == [(0, 1)]

    def test_chunk_past_the_end_raises(self, collapsed_correlation):
        values = {"N": 4}
        total = collapsed_correlation.total_iterations(values)
        with pytest.raises(ValueError):
            recover_range(collapsed_correlation, total, total + 3, values)


class TestCostAccounting:
    def test_per_iteration_pays_one_recovery_each(self, collapsed_correlation):
        stats = RecoveryStats()
        recover_range(
            collapsed_correlation, 1, 20, {"N": 12}, RecoveryStrategy.PER_ITERATION, stats
        )
        assert stats.costly_recoveries == 20
        assert stats.increments == 0
        assert stats.iterations == 20

    def test_chunked_pays_one_recovery_per_chunk(self, collapsed_correlation):
        stats = RecoveryStats()
        recover_range(
            collapsed_correlation, 1, 20, {"N": 12}, RecoveryStrategy.FIRST_THEN_INCREMENT, stats
        )
        assert stats.costly_recoveries == 1
        assert stats.increments == 19
        assert stats.iterations == 20

    def test_twelve_chunks_pay_twelve_recoveries(self, collapsed_correlation):
        """The Figure 10 experiment: 12 root evaluations for 12 threads."""
        values = {"N": 30}
        total = collapsed_correlation.total_iterations(values)
        threads = 12
        stats = RecoveryStats()
        bounds = [
            (thread * total // threads + 1, (thread + 1) * total // threads)
            for thread in range(threads)
        ]
        for first, last in bounds:
            recover_range(
                collapsed_correlation, first, last, values, RecoveryStrategy.FIRST_THEN_INCREMENT, stats
            )
        assert stats.costly_recoveries == threads
        assert stats.iterations == total

    def test_stats_merge(self):
        merged = RecoveryStats(1, 2, 3).merge(RecoveryStats(10, 20, 30))
        assert (merged.costly_recoveries, merged.increments, merged.iterations) == (11, 22, 33)

    def test_iterate_chunk_is_lazy(self, collapsed_figure6):
        iterator = iterate_chunk(collapsed_figure6, 1, 10 ** 9, {"N": 6})
        assert next(iterator) == (0, 0, 0)
