"""Tests for unranking: symbolic inversion and the recovery fallbacks (Section IV)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import UnrankingError, build_unranking, ranking_polynomial
from repro.ir import Loop, LoopNest, enumerate_iterations


def full_round_trip(nest, parameter_values, depth=None, **kwargs):
    ranking = ranking_polynomial(nest, depth)
    unranking = build_unranking(ranking, **kwargs)
    return unranking, unranking.validate(parameter_values)


class TestPaperClosedForms:
    def test_correlation_outer_index_matches_paper_formula(self, correlation_nest):
        """The recovered i must equal ⌊-(sqrt(4N²-4N-8pc+9)-2N+1)/2⌋ for every pc."""
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking)
        n = 40
        total = ranking.total_iterations({"N": n})
        for pc in range(1, total + 1):
            paper_i = math.floor(-(math.sqrt(4 * n * n - 4 * n - 8 * pc + 9) - 2 * n + 1) / 2)
            recovered = unranking.recover(pc, {"N": n})
            assert recovered[0] == paper_i

    def test_correlation_inner_index_matches_paper_formula(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking)
        n = 25
        total = ranking.total_iterations({"N": n})
        for pc in range(1, total + 1):
            i, j = unranking.recover(pc, {"N": n})
            paper_j = math.floor(-(2 * i * n - 2 * pc - i * i - 3 * i) / 2)
            assert j == paper_j

    def test_correlation_uses_closed_forms_only(self, correlation_nest):
        unranking, ok = full_round_trip(correlation_nest, {"N": 15})
        assert ok
        assert unranking.uses_only_closed_forms()
        assert [r.method for r in unranking.recoveries] == ["symbolic", "linear"]

    def test_figure6_uses_cubic_closed_form(self, figure6_nest):
        unranking, ok = full_round_trip(figure6_nest, {"N": 10})
        assert ok
        assert [r.method for r in unranking.recoveries] == ["symbolic", "symbolic", "linear"]
        assert [r.degree for r in unranking.recoveries] == [3, 2, 1]

    def test_simplex4_uses_quartic_closed_form(self, simplex4_nest):
        unranking, ok = full_round_trip(simplex4_nest, {"N": 7})
        assert ok
        assert unranking.uses_only_closed_forms()
        assert unranking.recoveries[0].degree == 4

    def test_figure6_complex_radicand_at_pc_1(self, figure6_nest):
        """Section IV-C: at pc=1 the radicand is negative, yet i must recover to 0."""
        ranking = ranking_polynomial(figure6_nest)
        unranking = build_unranking(ranking)
        assert unranking.recover(1, {"N": 100})[0] == 0


class TestRoundTrips:
    @pytest.mark.parametrize(
        "fixture_name,parameter_values",
        [
            ("correlation_nest", {"N": 2}),
            ("correlation_nest", {"N": 13}),
            ("figure6_nest", {"N": 9}),
            ("simplex4_nest", {"N": 6}),
            ("rectangular_nest", {"N": 5, "M": 7}),
            ("trapezoidal_nest", {"N": 6, "M": 2}),
            ("rhomboidal_nest", {"N": 7}),
        ],
    )
    def test_round_trip_on_all_shapes(self, fixture_name, parameter_values, request):
        nest = request.getfixturevalue(fixture_name)
        _, ok = full_round_trip(nest, parameter_values)
        assert ok

    def test_round_trip_partial_depth(self, figure6_nest):
        _, ok = full_round_trip(figure6_nest, {"N": 9}, depth=2)
        assert ok

    def test_round_trip_much_larger_than_selection_sample(self, correlation_nest):
        """Roots are selected on a small sample but must stay correct at larger sizes."""
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking, sample_parameters={"N": 6})
        assert unranking.validate({"N": 60})

    def test_recover_is_inverse_of_rank(self, figure6_nest):
        ranking = ranking_polynomial(figure6_nest)
        unranking = build_unranking(ranking)
        values = {"N": 11}
        for indices in enumerate_iterations(figure6_nest, values):
            pc = ranking.rank(indices, values)
            assert unranking.recover(pc, values) == indices


class TestFallbacksAndGuards:
    def test_degree_five_nest_falls_back_to_bisection(self):
        """A 5-deep simplex exceeds the paper's degree-4 limit (Section IV-B)."""
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        ranking = ranking_polynomial(nest)
        unranking = build_unranking(ranking)
        assert unranking.recoveries[0].method == "bisection"
        assert not unranking.uses_only_closed_forms()
        assert unranking.validate({"N": 5})

    def test_degree_five_strict_mode_raises(self):
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", 0, "i + 1"),
                Loop.make("k", 0, "j + 1"),
                Loop.make("l", 0, "k + 1"),
                Loop.make("m", 0, "l + 1"),
            ],
            parameters=["N"],
            name="simplex5",
        )
        ranking = ranking_polynomial(nest)
        with pytest.raises(UnrankingError, match="degree"):
            build_unranking(ranking, allow_bisection_fallback=False)

    def test_guard_can_be_disabled(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking, guard=False)
        assert unranking.validate({"N": 20})

    def test_guarded_recovery_at_large_sizes(self, correlation_nest):
        """Large sizes stress the floating-point floor; the guard keeps it exact.

        Check the boundary iterations (first/last of selected rows) where an
        off-by-one would appear first.
        """
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking)
        n = 5000
        values = {"N": n}
        for i in (0, 1, 1234, 2499, 4997):
            first_pc = ranking.rank((i, i + 1), values)
            last_pc = ranking.rank((i, n - 1), values)
            assert unranking.recover(first_pc, values) == (i, i + 1)
            assert unranking.recover(last_pc, values) == (i, n - 1)

    def test_pc_name_clash_detected(self, correlation_nest):
        nest = LoopNest(
            [Loop.make("pc", 0, "N - 1"), Loop.make("j", "pc + 1", "N")],
            parameters=["N"],
            name="clash",
        )
        ranking = ranking_polynomial(nest)
        with pytest.raises(UnrankingError, match="clash"):
            build_unranking(ranking)
        # an alternative name resolves the clash
        alternative = build_unranking(ranking, pc_name="flat_index")
        assert alternative.validate({"N": 8})

    def test_invalid_pc_rejected(self, correlation_nest):
        ranking = ranking_polynomial(correlation_nest)
        unranking = build_unranking(ranking)
        with pytest.raises(ValueError):
            unranking.recover(0, {"N": 10})

    def test_describe_lists_every_iterator(self, figure6_nest):
        ranking = ranking_polynomial(figure6_nest)
        unranking = build_unranking(ranking)
        text = unranking.describe()
        for iterator in ("i", "j", "k"):
            assert iterator in text


@settings(max_examples=12, deadline=None)
@given(n=st.integers(min_value=2, max_value=9), offset=st.integers(min_value=0, max_value=3))
def test_property_round_trip_on_shifted_triangles(n, offset):
    """Triangles whose inner loop starts at i + offset round-trip for every pc."""
    nest = LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", f"i + {offset}", f"N + {offset}")],
        parameters=["N"],
        name="shifted",
    )
    ranking = ranking_polynomial(nest)
    unranking = build_unranking(ranking)
    assert unranking.validate({"N": n})


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=3, max_value=20))
def test_property_every_pc_maps_into_domain(n):
    nest = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"], name="corr"
    )
    ranking = ranking_polynomial(nest)
    unranking = build_unranking(ranking)
    domain = nest.domain()
    total = ranking.total_iterations({"N": n})
    for pc in range(1, total + 1):
        indices = unranking.recover(pc, {"N": n})
        assert domain.contains(indices, {"N": n})
