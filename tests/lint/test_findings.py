"""The finding/report containers behind every lint audit."""

import json

import pytest

from repro.lint import Finding, LintReport, SEVERITIES


def test_severity_ladder_is_error_warning_info():
    assert SEVERITIES == ("error", "warning", "info")


def test_unknown_severity_is_rejected():
    with pytest.raises(ValueError, match="unknown severity"):
        Finding("x/y", "fatal", "subject", "message")


def test_report_rollups_and_select():
    report = LintReport()
    report.add("a/one", "error", "k", "broken")
    report.add("a/two", "warning", "k", "suspicious")
    report.add("b/three", "info", "k", "proven")
    assert not report.ok
    assert [f.rule for f in report.errors] == ["a/one"]
    assert [f.rule for f in report.warnings] == ["a/two"]
    assert report.counts() == {"error": 1, "warning": 1, "info": 1}
    assert [f.rule for f in report.select("a/")] == ["a/one", "a/two"]


def test_merge_preserves_order():
    first, second = LintReport(), LintReport()
    first.add("a/one", "info", "k", "m1")
    second.add("a/two", "info", "k", "m2")
    first.merge(second)
    assert [f.rule for f in first.findings] == ["a/one", "a/two"]


def test_json_is_sorted_and_stable():
    report = LintReport()
    report.add("z/rule", "warning", "k", "message", "detail")
    payload = json.loads(report.to_json(extra={"alpha": 1}))
    assert payload["alpha"] == 1
    assert payload["counts"]["warning"] == 1
    assert payload["findings"][0]["rule"] == "z/rule"
    # stable across runs: serialising twice gives identical text
    assert report.to_json() == report.to_json()


def test_markdown_orders_by_severity():
    report = LintReport()
    report.add("c/info", "info", "k", "proven")
    report.add("a/error", "error", "k", "broken")
    text = report.to_markdown()
    assert text.index("a/error") < text.index("c/info")
    assert "| severity |" in text


def test_raise_on_errors():
    report = LintReport()
    report.add("a/ok", "info", "k", "fine")
    report.raise_on_errors()  # no error findings: no raise
    report.add("a/bad", "error", "k", "broken")

    class Boom(ValueError):
        pass

    with pytest.raises(Boom, match="1 error finding"):
        report.raise_on_errors(Boom)
