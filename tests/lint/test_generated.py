"""The generated-C linter: privatisation proof and write-write race rejection."""

import re

import pytest

from repro.core import collapse
from repro.core.codegen_c import generate_translation_unit
from repro.ir import Loop, LoopNest
from repro.lint import lint_c_source, lint_generated_c


@pytest.fixture
def triangle_collapsed():
    nest = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="triangle",
    )
    return collapse(nest)


# ---------------------------------------------------------------------- #
# the textual privatisation proof
# ---------------------------------------------------------------------- #
def test_region_local_declarations_are_proven_private():
    source = (
        "void f(void) {\n"
        "  #pragma omp parallel\n"
        "  {\n"
        "    long long mine = 0;\n"
        "    mine += 1;\n"
        "  }\n"
        "}\n"
    )
    report = lint_c_source(source)
    assert report.ok
    assert any(f.rule == "generated/private-proof" for f in report.findings)


def test_undeclared_scalar_write_in_region_is_an_error():
    source = (
        "void f(void) {\n"
        "  long long shared = 0;\n"
        "  #pragma omp parallel\n"
        "  {\n"
        "    shared += 1;\n"
        "  }\n"
        "}\n"
    )
    report = lint_c_source(source)
    assert [f.rule for f in report.errors] == ["generated/unproven-scalar-write"]
    assert "'shared'" in report.errors[0].message


def test_private_clause_proves_the_write():
    source = (
        "void f(void) {\n"
        "  long long shared = 0;\n"
        "  #pragma omp parallel private(shared)\n"
        "  {\n"
        "    shared += 1;\n"
        "  }\n"
        "}\n"
    )
    assert lint_c_source(source).ok


def test_omp_single_exempts_the_write():
    source = (
        "void f(void) {\n"
        "  int used = 1;\n"
        "  #pragma omp parallel\n"
        "  {\n"
        "    #pragma omp single\n"
        "    used = 2;\n"
        "  }\n"
        "}\n"
    )
    assert lint_c_source(source).ok


def test_writes_outside_any_region_are_unconstrained():
    source = "void f(void) { long long x; x = 1; x += 2; }\n"
    assert lint_c_source(source).ok


# ---------------------------------------------------------------------- #
# real translation units, clean and doctored
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("schedule", ["static", "dynamic,8", "guided"])
def test_generated_units_pass_the_privatisation_proof(triangle_collapsed, schedule):
    report = lint_generated_c(
        triangle_collapsed,
        body="c(i, j) = a(i, j) + 1.0;",
        arrays=("c", "a"),
        schedule=schedule,
    )
    assert report.ok, str(report)
    assert any(f.rule == "generated/private-proof" for f in report.findings)
    assert any(f.rule == "generated/write-write-clean" for f in report.findings)


def test_doctored_unit_with_omitted_declaration_is_rejected(triangle_collapsed):
    """Strip a region-local declaration down to a bare assignment: the write
    survives, the privatisation proof of that name is gone, and the linter
    must fail the unit — the seeded private-omission regression."""
    source = generate_translation_unit(
        triangle_collapsed, body="c(i, j) = 1.0;", arrays=("c",)
    )
    assert lint_c_source(source).ok
    # doctor only inside the parallel region: declarations before the pragma
    # are not the region's concern
    head, pragma, tail = source.partition("#pragma omp parallel")
    doctored_tail, count = re.subn(
        r"^(\s*)long long (repro_\w+ = )",
        r"\1\2",
        tail,
        count=1,
        flags=re.MULTILINE,
    )
    assert count == 1, "no region-local declaration found to doctor"
    report = lint_c_source(head + pragma + doctored_tail)
    assert any(f.rule == "generated/unproven-scalar-write" for f in report.errors)


def test_racy_body_is_rejected_through_the_dependence_system(triangle_collapsed):
    """Every collapsed iteration writes c(0): the write/write self-pair the
    read/write dependence report never tests — the seeded racy-nest
    regression."""
    report = lint_generated_c(
        triangle_collapsed, body="c(0) += a(i, j);", arrays=("c", "a")
    )
    assert any(f.rule == "generated/write-write-conflict" for f in report.errors)


def test_unparseable_body_downgrades_to_a_warning(triangle_collapsed):
    report = lint_generated_c(
        triangle_collapsed,
        body="if (i > j) { c(i, j) = 1.0; }",
        arrays=("c",),
    )
    assert report.ok  # the scalar proof still passes ...
    assert any(  # ... but the footprint could not be audited
        f.rule == "generated/unauditable-body" for f in report.findings
    )
