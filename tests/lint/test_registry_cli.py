"""The registry-wide audit and the ``python -m repro.lint`` CLI."""

import json

import pytest

from repro.kernels import all_kernels, get_kernel
from repro.lint import lint_all_kernels, lint_kernel


def test_every_registered_kernel_is_error_free():
    """The repository's own registry must pass its own static verifier —
    the acceptance bar the lint CLI enforces in CI."""
    reports = lint_all_kernels()
    assert set(reports) == {k.name for k in all_kernels()}
    failures = {
        name: [str(f) for f in report.errors]
        for name, report in reports.items()
        if not report.ok
    }
    assert not failures, failures


def test_simulation_only_gate_off_is_a_warning_not_an_error():
    report = lint_kernel(get_kernel("jacobi1d_skewed"))
    gate = [f for f in report.findings if f.rule == "registry/dependence-gate-off"]
    assert len(gate) == 1 and gate[0].severity == "warning"


def test_native_kernels_get_per_schedule_generated_findings():
    report = lint_kernel(get_kernel("utma"), schedules=("static", "guided"))
    subjects = {f.subject for f in report.select("generated/")}
    assert subjects == {"utma[static]", "utma[guided]"}


def test_overflow_audit_runs_at_explicit_sizes():
    report = lint_kernel(get_kernel("utma"), parameter_values={"N": 10**10})
    assert any(f.rule == "overflow/total-exceeds-int64" for f in report.errors)


def test_cli_writes_reports_and_exits_zero(tmp_path):
    from repro.lint.__main__ import main

    json_path = tmp_path / "lint.json"
    md_path = tmp_path / "lint.md"
    status = main(
        ["--kernel", "utma", "--schedule", "static",
         "--json", str(json_path), "--markdown", str(md_path)]
    )
    assert status == 0
    payload = json.loads(json_path.read_text())
    assert payload["ok"] is True
    assert payload["schedules"] == ["static"]
    assert payload["kernels"]["utma"]["counts"]["error"] == 0
    assert "| severity |" in md_path.read_text()
    # stable artifact: serialising the same audit twice is byte-identical
    first = json_path.read_text()
    assert main(
        ["--kernel", "utma", "--schedule", "static",
         "--json", str(json_path), "--markdown", "-"]
    ) == 0
    assert json_path.read_text() == first


def test_cli_dash_skips_writing(tmp_path, monkeypatch):
    from repro.lint.__main__ import main

    monkeypatch.chdir(tmp_path)
    assert main(["--kernel", "utma", "--schedule", "static",
                 "--json", "-", "--markdown", "-"]) == 0
    assert list(tmp_path.iterdir()) == []


def test_ruff_config_is_committed():
    """CI runs ``ruff check src/`` against the committed configuration; keep
    the config present (and run the check here too when ruff is installed)."""
    import shutil
    import subprocess
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    config = (root / "pyproject.toml").read_text()
    assert "[tool.ruff" in config
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed locally; CI runs it")
    result = subprocess.run(
        [ruff, "check", "src"], cwd=root, capture_output=True, text=True
    )
    assert result.returncode == 0, result.stdout + result.stderr
