"""The C-body access auditor: parsing, footprints, and the IR cross-check."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Loop, LoopNest
from repro.ir.parser import ParseError, native_body, parse_array_assignment
from repro.lint import audit_c_body, parse_c_body

TRIANGLE = [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")]


def _accesses(statements):
    """Multiset of (array, subscripts, is_write) across all statements."""
    counter = Counter()
    for statement in statements:
        for access in statement.accesses:
            counter[
                (
                    access.array,
                    tuple(str(s) for s in access.subscripts),
                    access.is_write,
                )
            ] += 1
    return counter


# ---------------------------------------------------------------------- #
# parsing fixed shapes
# ---------------------------------------------------------------------- #
def test_parse_reduction_body_with_inner_loop_and_local():
    body = (
        "double acc = 0.0;\n"
        "for (long long k = j; k <= i + 1; k++) acc += a(i, k) * b(k, j);\n"
        "c(i, j) = acc;\n"
    )
    inner_loops, statements, locals_, shared = parse_c_body(body)
    assert [loop.iterator for loop in inner_loops] == ["k"]
    assert str(inner_loops[0].lower) == "j"
    assert str(inner_loops[0].upper) == "i + 2"  # <= upper is exclusive + 1
    assert locals_ == ("acc",)
    assert shared == ()
    counter = _accesses(statements)
    assert counter[("a", ("i", "k"), False)] == 1
    assert counter[("b", ("k", "j"), False)] == 1
    assert counter[("c", ("i", "j"), True)] == 1


def test_parse_reports_shared_scalar_writes():
    _, _, locals_, shared = parse_c_body("total += a(i);\n")
    assert locals_ == ()
    assert shared == ("total",)


def test_parse_rejects_unsupported_statements():
    with pytest.raises(ParseError, match="unsupported statement"):
        parse_c_body("if (i > 0) c(i) = 1.0;\n")


def test_parse_rejects_unbalanced_braces():
    with pytest.raises(ParseError, match="unbalanced"):
        parse_c_body("for (long long k = 0; k < i; k++) { c(k) = 1.0;\n")


def test_braceless_loop_owns_exactly_one_statement():
    body = (
        "for (long long k = 0; k < i; k++) s(k) += 1.0;\n"
        "c(i, j) = 2.0;\n"
    )
    inner_loops, statements, _, _ = parse_c_body(body)
    assert len(inner_loops) == 1
    # both statements parsed; the second is outside the braceless loop scope
    assert _accesses(statements)[("c", ("i", "j"), True)] == 1


# ---------------------------------------------------------------------- #
# audit findings
# ---------------------------------------------------------------------- #
def test_audit_flags_shared_scalar_write_as_error():
    audit = audit_c_body("total += a(i, j);", TRIANGLE, ["N"], 2)
    assert [f.rule for f in audit.report.errors] == ["c-body/shared-scalar-write"]


def test_audit_flags_constant_subscript_write_write_race():
    # every collapsed iteration writes c(0): a write/write self-pair race
    # invisible to the read/write-only dependence report
    audit = audit_c_body("c(0) += a(i, j);", TRIANGLE, ["N"], 2)
    assert any(f.rule == "c-body/footprint-dependence" for f in audit.report.errors)


def test_audit_clean_body_reports_independence():
    audit = audit_c_body("c(i, j) = a(i, j) + 1.0;", TRIANGLE, ["N"], 2)
    assert audit.ok
    assert any(
        f.rule == "c-body/footprint-independent" for f in audit.report.findings
    )


def test_audit_cross_checks_abi_coverage():
    audit = audit_c_body(
        "c(i, j) = a(i, j);", TRIANGLE, ["N"], 2, declared_arrays=("c",)
    )
    assert any(f.rule == "c-body/array-not-in-abi" for f in audit.report.errors)
    audit = audit_c_body(
        "c(i, j) = 1.0;", TRIANGLE, ["N"], 2, declared_arrays=("c", "ghost")
    )
    assert any(
        f.rule == "c-body/unused-abi-array"
        for f in audit.report.findings
        if f.severity == "info"
    )


def test_audit_cross_checks_footprint_against_ir():
    nest = LoopNest(
        TRIANGLE,
        [parse_array_assignment("c(i, j) = a(i, j);")],
        ["N"],
        name="model",
    )
    # emitted body reads b too: the IR gate ran on the wrong model
    audit = audit_c_body(
        "c(i, j) = a(i, j) + b(i, j);",
        TRIANGLE,
        ["N"],
        2,
        ir_statements=nest.statements,
    )
    exceeds = [f for f in audit.report.findings if f.rule == "c-body/footprint-exceeds-ir"]
    assert len(exceeds) == 1 and exceeds[0].severity == "warning"
    assert "b(i, j)" in exceeds[0].detail
    # identical body: exact-match info
    audit = audit_c_body(
        "c(i, j) = a(i, j);", TRIANGLE, ["N"], 2, ir_statements=nest.statements
    )
    assert any(
        f.rule == "c-body/footprint-matches-ir" for f in audit.report.findings
    )


def test_audit_reports_parse_error_as_finding():
    audit = audit_c_body("goto out;", TRIANGLE, ["N"], 2)
    assert [f.rule for f in audit.report.errors] == ["c-body/parse-error"]
    assert audit.footprint is None


# ---------------------------------------------------------------------- #
# Hypothesis round-trip: nest statements -> native_body -> parse_c_body
# ---------------------------------------------------------------------- #
_SUBSCRIPTS = ("i", "j", "i + 1", "i + j")


@st.composite
def statement_lines(draw):
    """Random auditable statement lines over arrays a/b (reads) and c/d (writes)."""
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        target = draw(st.sampled_from(["c", "d"]))
        subs = draw(st.tuples(st.sampled_from(_SUBSCRIPTS), st.sampled_from(_SUBSCRIPTS)))
        op = draw(st.sampled_from(["=", "+=", "-="]))
        reads = [
            f"{draw(st.sampled_from(['a', 'b']))}({draw(st.sampled_from(_SUBSCRIPTS))}, "
            f"{draw(st.sampled_from(_SUBSCRIPTS))})"
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ]
        rhs = " + ".join(reads) if reads else "2.5"
        lines.append(f"{target}({subs[0]}, {subs[1]}) {op} {rhs};")
    return lines


@settings(max_examples=40, deadline=None)
@given(lines=statement_lines())
def test_property_c_body_roundtrip_preserves_footprint(lines):
    """native_body(nest) -> parse_c_body must recover exactly the accesses the
    nest's IR statements declare — the round-trip invariant the lint
    cross-check relies on to call any divergence a finding."""
    statements = [parse_array_assignment(line) for line in lines]
    assert all(statements)
    nest = LoopNest(TRIANGLE, statements, ["N"], name="roundtrip")
    body, arrays = native_body(nest)
    inner_loops, parsed, locals_, shared = parse_c_body(body)
    assert inner_loops == ()
    assert locals_ == () and shared == ()
    assert _accesses(parsed) == _accesses(nest.statements)
    touched = {access.array for s in parsed for access in s.accesses}
    assert touched == set(arrays)
