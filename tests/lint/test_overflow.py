"""The static overflow audit and its build_plan/verify_kernel wiring."""

import pytest

from repro.core import collapse
from repro.ir import Loop, LoopNest
from repro.kernels import get_kernel
from repro.lint import INT64_MAX, audit_overflow


@pytest.fixture
def simplex3_collapsed():
    nest = LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", 0, "j + 1")],
        parameters=["N"],
        name="simplex3",
    )
    return collapse(nest)


def test_widths_proven_at_sane_sizes(simplex3_collapsed):
    report = audit_overflow(simplex3_collapsed, {"N": 1000})
    assert report.ok
    proofs = [f for f in report.findings if f.rule == "overflow/widths-proven"]
    assert len(proofs) == 1
    assert "2^127" in proofs[0].detail


def test_total_beyond_int64_is_an_error(simplex3_collapsed):
    # a cubic simplex: N = 2^22 puts the trip count near 2^63 / 6 * 8 > 2^63
    report = audit_overflow(simplex3_collapsed, {"N": 2**22})
    assert simplex3_collapsed.total_iterations({"N": 2**22}) > INT64_MAX
    assert any(f.rule == "overflow/total-exceeds-int64" for f in report.errors)


def test_missing_parameters_are_an_error(simplex3_collapsed):
    report = audit_overflow(simplex3_collapsed, {})
    assert [f.rule for f in report.errors] == ["overflow/missing-parameters"]


def test_bound_grows_monotonically_with_sizes(simplex3_collapsed):
    def worst_bits(n):
        report = audit_overflow(simplex3_collapsed, {"N": n})
        (proof,) = [f for f in report.findings if f.rule == "overflow/widths-proven"]
        return proof.detail

    assert worst_bits(10) != worst_bits(10_000)


# ---------------------------------------------------------------------- #
# plan/verify wiring
# ---------------------------------------------------------------------- #
def test_native_build_plan_audits_overflow_by_default():
    from repro.native import native_available
    from repro.runtime.plan import PlanError, build_plan

    if not native_available():
        pytest.skip("no C compiler on this machine")
    kernel = get_kernel("utma")
    huge = {name: 10**10 for name in kernel.default_parameters}
    with pytest.raises(PlanError, match="overflow/total-exceeds-int64"):
        build_plan(kernel, huge, native=True)


def test_python_plans_skip_the_audit_by_default():
    # big-int Python paths cannot wrap: a 10^19-sized plan must still build
    from repro.runtime.plan import build_plan

    kernel = get_kernel("utma")
    huge = {name: 10**19 for name in kernel.default_parameters}
    plan = build_plan(kernel, huge)
    assert plan.total_iterations > INT64_MAX


def test_static_check_true_runs_the_full_audit():
    from repro.runtime.plan import PlanError, build_plan

    kernel = get_kernel("utma")
    values = dict(kernel.default_parameters)
    plan = build_plan(kernel, values, static_check=True)
    assert plan.plan_id
    huge = {name: 10**10 for name in values}
    with pytest.raises(PlanError, match="static check failed"):
        build_plan(kernel, huge, static_check=True)


def test_static_check_false_skips_everything():
    from repro.runtime.plan import build_plan

    kernel = get_kernel("utma")
    huge = {name: 10**19 for name in kernel.default_parameters}
    assert build_plan(kernel, huge, static_check=False).plan_id


def test_verify_kernel_accepts_static_check():
    from repro.kernels.execution import verify_kernel

    kernel = get_kernel("utma")
    assert verify_kernel(kernel, kernel.default_parameters, static_check=True)
