"""Unit tests for execution plans and the cost-model-driven adaptive chunker."""

import pickle

import numpy as np
import pytest

from repro.ir import Loop, LoopNest
from repro.kernels import get_kernel
from repro.openmp import ScheduleKind, ScheduleSpec
from repro.runtime import ExecutionPlan, PlanError, adaptive_chunks, build_plan, per_iteration_work


def partition_is_exact(chunks, total):
    if total == 0:
        return chunks == []
    if not chunks or chunks[0].first != 1 or chunks[-1].last != total:
        return False
    return all(a.last + 1 == b.first for a, b in zip(chunks, chunks[1:]))


def module_level_op(data, indices, values):
    """Picklable stand-in operation for nest-based plans."""


class TestBuildPlan:
    def test_from_kernel_name(self):
        plan = build_plan("utma", {"N": 16})
        assert plan.kernel_name == "utma"
        assert plan.schedule.kind is ScheduleKind.ADAPTIVE
        assert plan.total_iterations == 16 * 17 // 2

    def test_from_kernel_object_and_nest(self):
        kernel = get_kernel("ltmp")
        plan = build_plan(kernel, {"N": 8}, schedule="static")
        assert plan.kernel_name == "ltmp"
        nest = LoopNest([Loop.make("i", 0, "N"), Loop.make("j", "i", "N")], parameters=["N"], name="t")
        nest_plan = build_plan(nest, {"N": 6}, schedule="dynamic,2", iteration_op=module_level_op)
        assert nest_plan.kernel_name is None
        assert nest_plan.schedule == ScheduleSpec(ScheduleKind.DYNAMIC, 2)

    def test_plans_get_distinct_ids(self):
        first = build_plan("utma", {"N": 8})
        second = build_plan("utma", {"N": 8})
        assert first.plan_id != second.plan_id

    def test_nest_without_ops_is_rejected(self):
        nest = LoopNest([Loop.make("i", 0, "N")], parameters=["N"], name="bare")
        with pytest.raises(PlanError, match="iteration_op"):
            build_plan(nest, {"N": 4})

    def test_unpicklable_op_is_rejected(self):
        nest = LoopNest([Loop.make("i", 0, "N")], parameters=["N"], name="bare")
        with pytest.raises(PlanError, match="picklable"):
            build_plan(nest, {"N": 4}, iteration_op=lambda d, i, v: None)

    def test_chunk_op_only_requires_compiled_recovery(self):
        nest = LoopNest([Loop.make("i", 0, "N")], parameters=["N"], name="bare")
        with pytest.raises(PlanError, match="compiled"):
            build_plan(nest, {"N": 4}, chunk_op=module_level_op, recovery="symbolic")
        # with an iteration_op fallback the symbolic back end is fine
        plan = build_plan(
            nest, {"N": 4}, iteration_op=module_level_op,
            chunk_op=module_level_op, recovery="symbolic",
        )
        assert plan.recovery == "symbolic"

    def test_non_executable_kernel_is_rejected(self):
        from repro.kernels import all_kernels

        inert = [k for k in all_kernels() if not k.is_executable]
        if not inert:
            pytest.skip("every registered kernel is executable")
        with pytest.raises(PlanError, match="executable"):
            build_plan(inert[0], dict(inert[0].bench_parameters))

    def test_payload_is_picklable_and_registry_backed(self):
        plan = build_plan("utma", {"N": 10})
        payload = pickle.loads(pickle.dumps(plan.payload()))
        assert payload["kernel_name"] == "utma"
        assert payload["iteration_op"] is None  # workers resolve from the registry
        assert payload["collapsed"].total_iterations({"N": 10}) == plan.total_iterations


class TestChunks:
    @pytest.mark.parametrize("schedule", ["static", "static,9", "dynamic,16", "guided", "adaptive"])
    def test_every_policy_partitions_exactly(self, schedule):
        plan = build_plan("utma", {"N": 20}, schedule=schedule)
        chunks = plan.chunks(workers=3)
        assert partition_is_exact(chunks, plan.total_iterations)

    def test_dynamic_default_chunk_is_oversubscribed_not_unit(self):
        plan = build_plan("utma", {"N": 64}, schedule="dynamic")
        chunks = plan.chunks(workers=4)
        assert partition_is_exact(chunks, plan.total_iterations)
        # OpenMP's default chunk of 1 would mean one hand-out per iteration;
        # the engine default stays within ~workers * oversubscribe hand-outs
        assert len(chunks) <= 4 * plan.oversubscribe + 1

    def test_static_chunks_carry_threads_adaptive_chunks_do_not(self):
        plan = build_plan("utma", {"N": 20}, schedule="static")
        assert all(chunk.thread is not None for chunk in plan.chunks(2))
        adaptive = build_plan("utma", {"N": 20}, schedule="adaptive")
        assert all(chunk.thread is None for chunk in adaptive.chunks(2))


class TestAdaptive:
    def test_constant_work_gives_near_equal_chunks(self):
        collapsed = get_kernel("utma").collapsed()
        chunks = adaptive_chunks(collapsed, {"N": 32}, workers=4)
        sizes = [chunk.size for chunk in chunks]
        assert partition_is_exact(chunks, collapsed.total_iterations({"N": 32}))
        assert max(sizes) - min(sizes) <= 2

    def test_varying_work_gives_work_weighted_chunks(self):
        # ltmp keeps a non-collapsed k loop: late pc values (large i) are much
        # heavier, so equal-work chunks must get shorter towards the end
        kernel = get_kernel("ltmp")
        collapsed = kernel.collapsed()
        values = {"N": 32}
        chunks = adaptive_chunks(collapsed, values, workers=4, cost_model=kernel.cost_model())
        assert partition_is_exact(chunks, collapsed.total_iterations(values))
        sizes = [chunk.size for chunk in chunks]
        assert sizes[0] > sizes[-1]
        work = per_iteration_work(collapsed, values, kernel.cost_model())
        per_chunk = [float(work[c.first - 1 : c.last].sum()) for c in chunks]
        # every chunk's estimated work is within a small factor of the mean
        mean = sum(per_chunk) / len(per_chunk)
        assert max(per_chunk) <= 2.5 * mean

    def test_per_iteration_work_matches_cost_model_pointwise(self):
        kernel = get_kernel("ltmp")
        collapsed = kernel.collapsed()
        values = {"N": 12}
        model = kernel.cost_model()
        work = per_iteration_work(collapsed, values, model)
        assert work.shape == (collapsed.total_iterations(values),)
        for pc in (1, 7, work.shape[0]):
            indices = collapsed.recover_indices(pc, values)
            assert work[pc - 1] == pytest.approx(model.iteration_work(indices, values))

    def test_empty_domain_gives_no_chunks(self):
        collapsed = get_kernel("utma").collapsed()
        assert adaptive_chunks(collapsed, {"N": 0}, workers=4) == []

    def test_chunk_count_tracks_oversubscription(self):
        collapsed = get_kernel("utma").collapsed()
        chunks = adaptive_chunks(collapsed, {"N": 64}, workers=2, oversubscribe=6)
        assert len(chunks) == pytest.approx(12, abs=2)
