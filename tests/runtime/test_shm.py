"""Unit tests for the shared-memory buffer lifecycle (create/attach/cleanup)."""

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.runtime import SharedArraySpec, SharedBufferError, SharedBuffers


def make_data():
    return {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "flags": np.array([1, 0, 1], dtype=np.int64),
    }


class TestCreate:
    def test_arrays_carry_the_initial_values(self):
        with SharedBuffers.create(make_data()) as buffers:
            assert np.array_equal(buffers.arrays["a"], make_data()["a"])
            assert buffers.arrays["flags"].dtype == np.int64
            assert buffers.owner

    def test_specs_describe_every_array(self):
        with SharedBuffers.create(make_data()) as buffers:
            by_name = {spec.name: spec for spec in buffers.specs}
            assert by_name.keys() == {"a", "flags"}
            assert by_name["a"].shape == (3, 4)
            assert np.dtype(by_name["a"].dtype) == np.float64
            assert isinstance(by_name["a"], SharedArraySpec)

    def test_non_contiguous_input_is_copied_in(self):
        strided = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        with SharedBuffers.create({"s": strided}) as buffers:
            assert np.array_equal(buffers.arrays["s"], strided)

    def test_empty_array_round_trips(self):
        with SharedBuffers.create({"e": np.zeros((0, 3))}) as buffers:
            assert buffers.arrays["e"].shape == (0, 3)
            assert buffers.snapshot()["e"].size == 0


class TestAttach:
    def test_attachment_sees_owner_writes_and_vice_versa(self):
        with SharedBuffers.create(make_data()) as owner:
            attached = SharedBuffers.attach(owner.specs)
            try:
                assert not attached.owner
                owner.arrays["a"][0, 0] = 111.0
                assert attached.arrays["a"][0, 0] == 111.0
                attached.arrays["a"][2, 3] = -5.0
                assert owner.arrays["a"][2, 3] == -5.0
            finally:
                attached.close()

    def test_attachment_close_keeps_segments_alive(self):
        with SharedBuffers.create(make_data()) as owner:
            attached = SharedBuffers.attach(owner.specs)
            attached.close()
            # the owner still reads its data: attachments never unlink
            assert owner.arrays["a"][1, 1] == make_data()["a"][1, 1]

    def test_attaching_missing_segment_raises(self):
        bogus = (SharedArraySpec(name="x", segment="no_such_segment_xyz", shape=(2,), dtype="<f8"),)
        with pytest.raises(SharedBufferError):
            SharedBuffers.attach(bogus)


class TestCleanup:
    def test_owner_close_unlinks_every_segment(self):
        buffers = SharedBuffers.create(make_data())
        segments = [spec.segment for spec in buffers.specs]
        buffers.close()
        assert buffers.closed
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self):
        buffers = SharedBuffers.create(make_data())
        buffers.close()
        buffers.close()

    def test_context_manager_unlinks_on_exception(self):
        segments = []
        with pytest.raises(RuntimeError, match="boom"):
            with SharedBuffers.create(make_data()) as buffers:
                segments = [spec.segment for spec in buffers.specs]
                raise RuntimeError("boom")
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_failed_create_leaks_nothing(self):
        import os

        class Boom:
            def __array__(self, dtype=None, copy=None):
                raise RuntimeError("cannot make an array")

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to probe for leaked segments")
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(RuntimeError, match="cannot make an array"):
            SharedBuffers.create({"good": np.zeros(4), "bad": Boom()})
        # the 'good' segment allocated before the failure must be unlinked
        assert set(os.listdir("/dev/shm")) - before == set()


class TestStateGuards:
    def test_snapshot_copies(self):
        with SharedBuffers.create(make_data()) as buffers:
            snap = buffers.snapshot()
            buffers.arrays["a"][0, 0] = 42.0
            assert snap["a"][0, 0] != 42.0

    def test_fill_from_overwrites_in_place(self):
        with SharedBuffers.create(make_data()) as buffers:
            view = buffers.arrays["a"]
            buffers.fill_from({"a": np.full((3, 4), 7.0)})
            assert view[1, 2] == 7.0  # same memory, new contents

    def test_closed_buffers_refuse_use(self):
        buffers = SharedBuffers.create(make_data())
        buffers.close()
        with pytest.raises(SharedBufferError):
            buffers.snapshot()
        with pytest.raises(SharedBufferError):
            buffers.fill_from(make_data())
