"""``backend="auto"``: viability, explore/exploit, and end-to-end correctness.

The resolver's decision is pure given (source, machine, store), so the
unit tests pin it against crafted stores and patched machine facts
(``os.cpu_count``, compiler presence); the integration tests then run the
real session end-to-end and assert the differential guarantee — whatever
substrate auto picks, the numbers match ``run_original``.
"""

import numpy as np
import pytest

from repro.kernels import get_kernel, run_collapsed_auto, run_original, verify_kernel
from repro.native import native_available
from repro.runtime import (
    ProfileStore,
    RuntimeSession,
    default_profile_store,
    profile_key,
    resolve_auto_backend,
)
from repro.runtime.session import AUTO_REVALIDATE_EVERY

needs_compiler = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)

PARAMS = {"N": 16}


def _patch_cpus(monkeypatch, count):
    monkeypatch.setattr("repro.runtime.session.os.cpu_count", lambda: count)


def _no_compiler(monkeypatch):
    monkeypatch.setattr("repro.native.native_available", lambda: False)


# ---------------------------------------------------------------------- #
# viability
# ---------------------------------------------------------------------- #
class TestViability:
    @needs_compiler
    def test_cold_store_many_cpus_explores_hybrid_first(self, monkeypatch, tmp_path):
        _patch_cpus(monkeypatch, 8)
        choice = resolve_auto_backend("utma", PARAMS, store=ProfileStore(tmp_path))
        assert choice == "hybrid"

    @needs_compiler
    def test_two_cpus_pin_native_over_hybrid(self, monkeypatch, tmp_path):
        _patch_cpus(monkeypatch, 2)
        store = ProfileStore(tmp_path)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "native"
        # even a glowing hybrid measurement cannot resurrect it at <= 2 CPUs
        key = profile_key("utma", PARAMS)
        store.record(key, "hybrid", elapsed_seconds=1e-6, workers=2,
                     total_iterations=10)
        store.record(key, "native", elapsed_seconds=1.0, workers=2,
                     total_iterations=10)
        store.record(key, "engine", elapsed_seconds=2.0, workers=2,
                     total_iterations=10)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "native"

    def test_no_compiler_degrades_to_engine(self, monkeypatch, tmp_path):
        _no_compiler(monkeypatch)
        choice = resolve_auto_backend("utma", PARAMS, store=ProfileStore(tmp_path))
        assert choice == "engine"

    @needs_compiler
    def test_allow_native_false_drops_the_whole_range_call(self, monkeypatch, tmp_path):
        _patch_cpus(monkeypatch, 8)
        store = ProfileStore(tmp_path)
        key = profile_key("utma", PARAMS)
        store.record(key, "native", elapsed_seconds=1e-6, workers=2,
                     total_iterations=10)
        store.record(key, "hybrid", elapsed_seconds=1.0, workers=2,
                     total_iterations=10)
        store.record(key, "engine", elapsed_seconds=2.0, workers=2,
                     total_iterations=10)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "native"
        assert (
            resolve_auto_backend("utma", PARAMS, store=store, allow_native=False)
            == "hybrid"
        )

    def test_unviable_source_returns_engine(self, tmp_path):
        # not a kernel, nest or collapsed loop: nothing can run it, so the
        # resolver hands back the engine and lets *its* error surface
        assert resolve_auto_backend(object(), PARAMS, store=ProfileStore(tmp_path)) == "engine"


# ---------------------------------------------------------------------- #
# explore then exploit
# ---------------------------------------------------------------------- #
@needs_compiler
class TestExploreExploit:
    def test_each_untimed_candidate_is_explored_before_exploiting(
        self, monkeypatch, tmp_path
    ):
        _patch_cpus(monkeypatch, 8)
        store = ProfileStore(tmp_path)
        key = profile_key("utma", PARAMS)
        # hybrid measured -> next unexplored in heuristic order is native
        store.record(key, "hybrid", elapsed_seconds=1e-6, workers=2,
                     total_iterations=10)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "native"
        store.record(key, "native", elapsed_seconds=1e-6, workers=2,
                     total_iterations=10)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "engine"

    def test_warm_store_exploits_the_measured_fastest(self, monkeypatch, tmp_path):
        _patch_cpus(monkeypatch, 8)
        store = ProfileStore(tmp_path)
        key = profile_key("utma", PARAMS)
        store.record(key, "hybrid", elapsed_seconds=0.5, workers=2,
                     total_iterations=10)
        store.record(key, "native", elapsed_seconds=0.3, workers=2,
                     total_iterations=10)
        store.record(key, "engine", elapsed_seconds=0.1, workers=2,
                     total_iterations=10)
        assert resolve_auto_backend("utma", PARAMS, store=store) == "engine"

    def test_schedule_and_parameters_isolate_the_decision(self, monkeypatch, tmp_path):
        _patch_cpus(monkeypatch, 8)
        store = ProfileStore(tmp_path)
        key = profile_key("utma", PARAMS)
        for backend, elapsed in (("hybrid", 0.5), ("native", 0.3), ("engine", 0.1)):
            store.record(key, backend, elapsed_seconds=elapsed, workers=2,
                         total_iterations=10)
        # warm under (utma, N=16, adaptive); cold under anything else
        assert resolve_auto_backend("utma", PARAMS, store=store) == "engine"
        assert resolve_auto_backend("utma", {"N": 17}, store=store) == "hybrid"
        assert (
            resolve_auto_backend("utma", PARAMS, schedule="dynamic,4", store=store)
            == "hybrid"
        )


# ---------------------------------------------------------------------- #
# end to end
# ---------------------------------------------------------------------- #
class TestSessionAuto:
    def test_auto_run_matches_run_original(self):
        kernel = get_kernel("utma")
        expected = run_original(kernel, PARAMS)
        with RuntimeSession(workers=2) as session:
            result = session.run(kernel, PARAMS, backend="auto")
            assert np.allclose(result["c"], expected["c"], atol=1e-9)

    def test_auto_runs_bank_profiles_under_the_plan_key(self):
        with RuntimeSession(workers=2) as session:
            session.run("utma", PARAMS, backend="auto")
        profiles = default_profile_store().load(profile_key("utma", PARAMS))
        assert profiles  # the run was measured and persisted
        for name, profile in profiles.items():
            assert profile.backend == name
            assert profile.runs >= 1
            assert profile.median_elapsed is not None

    def test_repeated_auto_runs_converge_and_stay_correct(self):
        kernel = get_kernel("utma")
        expected = run_original(kernel, PARAMS)
        with RuntimeSession(workers=2) as session:
            for _ in range(4):
                result = session.run(kernel, PARAMS, backend="auto")
                assert np.allclose(result["c"], expected["c"], atol=1e-9)
            resolved = resolve_auto_backend(kernel, PARAMS)
            assert resolved in ("engine", "native", "hybrid")

    def test_settled_resolution_is_memoised_for_a_bounded_window(self, monkeypatch):
        # a single viable candidate settles immediately, no timings needed
        _no_compiler(monkeypatch)
        with RuntimeSession(workers=2) as session:
            session.run("utma", PARAMS, backend="auto")
            assert len(session._auto_memo) == 1
            ((backend, uses),) = session._auto_memo.values()
            assert backend == "engine"
            assert 0 < uses <= AUTO_REVALIDATE_EVERY
            session.run("utma", PARAMS, backend="auto")
            ((_, fewer_uses),) = session._auto_memo.values()
            assert fewer_uses == uses - 1  # the cached choice spent one use
            session.close()
            assert session._auto_memo == {}

    @needs_compiler
    def test_threads_option_short_circuits_to_native(self):
        kernel = get_kernel("utma")
        expected = run_original(kernel, PARAMS)
        with RuntimeSession(workers=2) as session:
            result = session.run(kernel, PARAMS, backend="auto", threads=1)
            assert np.allclose(result["c"], expected["c"], atol=1e-9)
        # a native run was banked for this key
        profiles = default_profile_store().load(profile_key("utma", PARAMS))
        assert "native" in profiles

    def test_engine_only_options_still_run_under_auto(self):
        # depth/recovery are engine-only: auto must not route them natively
        kernel = get_kernel("utma")
        expected = run_original(kernel, PARAMS)
        with RuntimeSession(workers=2) as session:
            result = session.run(
                kernel, PARAMS, backend="auto", depth=2, recovery="symbolic"
            )
            assert np.allclose(result["c"], expected["c"], atol=1e-9)


class TestKernelLayerAuto:
    def test_verify_kernel_accepts_auto(self):
        assert verify_kernel(get_kernel("utma"), {"N": 12}, backend="auto")

    def test_verify_kernel_auto_agrees_with_every_static_backend(self):
        backends = ["python", "engine", "auto"]
        if native_available():
            backends += ["native", "hybrid"]
        for backend in backends:
            assert verify_kernel(get_kernel("utma"), {"N": 12}, backend=backend), backend

    def test_run_collapsed_auto_matches_original(self):
        kernel = get_kernel("utma")
        expected = run_original(kernel, PARAMS)
        result = run_collapsed_auto(kernel, PARAMS, workers=2)
        assert np.allclose(result["c"], expected["c"], atol=1e-9)
