"""Cross-backend timing schema: one contract for every run result.

The profile store can only compare backends because they all report their
measurements the same way.  This module asserts that contract (documented
on :class:`~repro.runtime.engine.EngineRunResult`) on real runs of every
substrate:

* ``chunks`` / ``results`` / ``assignments`` / ``chunk_seconds`` are
  index-aligned, one entry per executed unit of work;
* every chunk time is non-negative wall-clock seconds measured *inside*
  the executing substrate, and never exceeds the parent's whole-run span
  by more than scheduling overlap can explain;
* ``elapsed_seconds`` is the parent-side span — positive, and (for serial
  execution) at least the largest chunk time;
* ``chunk_records()`` renders the same rows on every backend, ready for
  :meth:`ProfileStore.record`.
"""

import numpy as np
import pytest

from repro.kernels import get_kernel, run_original
from repro.native import native_available
from repro.runtime import RuntimeSession
from repro.runtime.engine import EngineRunResult
from repro.runtime.profile import ChunkProfile

needs_compiler = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)

PARAMS = {"N": 24}


@pytest.fixture(scope="module")
def session():
    with RuntimeSession(workers=2) as session:
        yield session


def _run(session, backend):
    kernel = get_kernel("utma")
    expected = run_original(kernel, PARAMS)
    if backend == "native":
        from repro.native import compile_native_kernel

        module = compile_native_kernel(kernel, schedule="static")
        data = kernel.make_data(PARAMS)
        result = module.run(data, PARAMS, threads=2)
    else:
        from repro.runtime.shm import SharedBuffers

        plan = session.plan_for(
            kernel, PARAMS, schedule="adaptive", native=(backend == "hybrid")
        )
        with SharedBuffers.create(kernel.make_data(PARAMS)) as buffers:
            result = session.execute(plan, buffers=buffers)
            data = {name: np.array(array) for name, array in buffers.arrays.items()}
    assert np.allclose(data["c"], expected["c"], atol=1e-9)
    return result


def _assert_schema(result, backend, total):
    __tracebackhide__ = True
    assert isinstance(result, EngineRunResult)
    assert result.backend == backend
    assert result.iterations == total
    count = len(result.chunks)
    assert count >= 1
    assert len(result.results) == count
    assert len(result.assignments) == count
    assert len(result.chunk_seconds) == count
    assert all(seconds >= 0.0 for seconds in result.chunk_seconds)
    assert result.elapsed_seconds > 0.0
    assert result.workers >= 1
    # substrate-internal chunk times exclude dispatch, so no single chunk
    # can take longer than `workers` overlapping wall-clock spans allow
    assert max(result.chunk_seconds) <= result.elapsed_seconds * result.workers + 0.25
    records = result.chunk_records()
    assert len(records) == count
    for chunk, record in zip(result.chunks, records):
        assert isinstance(record, ChunkProfile)
        assert (record.first_pc, record.last_pc) == (chunk.first, chunk.last)
        assert record.seconds >= 0.0


class TestTimingSchemaPerBackend:
    def _total(self):
        kernel = get_kernel("utma")
        return kernel.collapsed().total_iterations(PARAMS)

    def test_engine_backend(self, session):
        result = _run(session, "engine")
        _assert_schema(result, "engine", self._total())
        assert all(0 <= worker < session.engine.workers for worker in result.assignments)

    @needs_compiler
    def test_hybrid_backend(self, session):
        result = _run(session, "hybrid")
        _assert_schema(result, "hybrid", self._total())

    @needs_compiler
    def test_native_backend(self, session):
        result = _run(session, "native")
        _assert_schema(result, "native", self._total())

    @needs_compiler
    def test_rows_comparable_across_backends(self, session):
        """The point of the unification: one schema, any substrate.

        Records from different backends of the same kernel cover the same
        ``pc`` range and can be merged into one store entry.
        """
        total = self._total()
        by_backend = {b: _run(session, b) for b in ("engine", "hybrid", "native")}
        for backend, result in by_backend.items():
            records = result.chunk_records()
            assert min(r.first_pc for r in records) == 1, backend
            assert max(r.last_pc for r in records) == total, backend
        # engine and hybrid chunk the same plan: spans partition the range
        for backend in ("engine", "hybrid"):
            assert sum(r.size for r in by_backend[backend].chunk_records()) == total
