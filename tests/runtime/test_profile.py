"""Tests for the unified timing layer: records, store, re-cutting, choice.

The profile store is the persistence backbone of the measure→schedule loop,
so these tests pin its contracts hard: keys are process-stable, writes are
atomic (two processes hammering one key never produce a torn file), loads
are tolerant, the size cap evicts oldest-first, and the derived decisions
(profile-guided chunk cuts, explore-then-exploit backend choice) follow
the measurements deterministically.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.openmp.schedule import Chunk
from repro.runtime.profile import (
    MAX_ELAPSED_WINDOW,
    BackendProfile,
    ChunkProfile,
    ProfileError,
    ProfileStore,
    choose_backend,
    default_profile_store,
    profile_guided_chunks,
    profile_key,
)


# ---------------------------------------------------------------------- #
# records
# ---------------------------------------------------------------------- #
class TestChunkProfile:
    def test_size_and_density(self):
        segment = ChunkProfile(first_pc=11, last_pc=20, seconds=0.5)
        assert segment.size == 10
        assert segment.seconds_per_iteration == pytest.approx(0.05)

    def test_empty_span_has_zero_density(self):
        segment = ChunkProfile(first_pc=5, last_pc=4, seconds=1.0)
        assert segment.size == 0
        assert segment.seconds_per_iteration == 0.0


class TestBackendProfile:
    def test_json_roundtrip(self):
        profile = BackendProfile(
            backend="hybrid",
            runs=3,
            workers=4,
            total_iterations=100,
            elapsed_seconds=[0.1, 0.2, 0.3],
            segments=[ChunkProfile(1, 50, 0.05), ChunkProfile(51, 100, 0.15)],
        )
        assert BackendProfile.from_json(profile.to_json()) == profile

    def test_median_elapsed(self):
        profile = BackendProfile(backend="engine", elapsed_seconds=[0.3, 0.1, 0.2])
        assert profile.median_elapsed == pytest.approx(0.2)
        assert BackendProfile(backend="engine").median_elapsed is None

    def test_seconds_per_iteration_from_segments(self):
        profile = BackendProfile(
            backend="engine",
            segments=[ChunkProfile(1, 40, 0.4), ChunkProfile(41, 100, 0.6)],
        )
        assert profile.seconds_per_iteration() == pytest.approx(1.0 / 100)
        assert BackendProfile(backend="engine").seconds_per_iteration() is None

    def test_merge_adds_runs_and_caps_the_window(self):
        first = BackendProfile(
            backend="engine", runs=2, elapsed_seconds=[0.1] * MAX_ELAPSED_WINDOW
        )
        second = BackendProfile(backend="engine", runs=1, elapsed_seconds=[0.2])
        merged = first.merge(second)
        assert merged.runs == 3
        assert len(merged.elapsed_seconds) == MAX_ELAPSED_WINDOW
        assert merged.elapsed_seconds[-1] == pytest.approx(0.2)

    def test_merge_keeps_the_fresher_records_segments(self):
        stale = BackendProfile(
            backend="engine", runs=5, segments=[ChunkProfile(1, 10, 0.1)]
        )
        fresh = BackendProfile(
            backend="engine", runs=7, segments=[ChunkProfile(1, 5, 0.2)]
        )
        assert stale.merge(fresh).segments == fresh.segments
        assert fresh.merge(stale).segments == fresh.segments

    def test_merge_rejects_backend_mismatch(self):
        with pytest.raises(ProfileError, match="cannot merge"):
            BackendProfile(backend="engine").merge(BackendProfile(backend="native"))


# ---------------------------------------------------------------------- #
# keys
# ---------------------------------------------------------------------- #
class TestProfileKey:
    def test_deterministic_for_kernels(self):
        assert profile_key("utma", {"N": 64}) == profile_key("utma", {"N": 64})

    def test_kernel_object_and_name_agree(self):
        from repro.kernels import get_kernel

        kernel = get_kernel("utma")
        assert profile_key(kernel, {"N": 64}) == profile_key("utma", {"N": 64})

    def test_parameters_schedule_and_depth_separate_keys(self):
        base = profile_key("utma", {"N": 64})
        assert profile_key("utma", {"N": 65}) != base
        assert profile_key("utma", {"N": 64}, "dynamic,4") != base
        assert profile_key("utma", {"N": 64}, depth=2) != base

    def test_nests_key_by_structure_not_identity(self):
        from repro.ir import Loop, LoopNest

        def make():
            return LoopNest(
                [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
                parameters=["N"],
                name="tri",
            )

        assert profile_key(make(), {"N": 8}) == profile_key(make(), {"N": 8})

    def test_collapsed_loops_are_fingerprintable(self):
        from repro.kernels import get_kernel

        collapsed = get_kernel("utma").collapsed()
        assert profile_key(collapsed, {"N": 8}) == profile_key(collapsed, {"N": 8})

    def test_unfingerprintable_source_raises(self):
        with pytest.raises(ProfileError, match="fingerprint"):
            profile_key(object(), {"N": 8})


# ---------------------------------------------------------------------- #
# the store
# ---------------------------------------------------------------------- #
class TestProfileStore:
    def test_record_and_load_roundtrip(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record(
            "k1", "engine", elapsed_seconds=0.5, workers=2, total_iterations=100,
            chunks=[ChunkProfile(1, 100, 0.4)],
        )
        profiles = store.load("k1")
        assert set(profiles) == {"engine"}
        assert profiles["engine"].runs == 1
        assert profiles["engine"].elapsed_seconds == [0.5]
        assert profiles["engine"].segments == [ChunkProfile(1, 100, 0.4)]

    def test_repeat_records_merge(self, tmp_path):
        store = ProfileStore(tmp_path)
        for elapsed in (0.5, 0.3, 0.4):
            store.record("k1", "engine", elapsed_seconds=elapsed, workers=2,
                         total_iterations=100)
        profile = store.load("k1")["engine"]
        assert profile.runs == 3
        assert profile.median_elapsed == pytest.approx(0.4)

    def test_backends_share_one_entry(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k1", "engine", elapsed_seconds=0.5, workers=2, total_iterations=10)
        store.record("k1", "native", elapsed_seconds=0.1, workers=2, total_iterations=10)
        assert set(store.load("k1")) == {"engine", "native"}
        assert len(list(Path(tmp_path).glob("*.profile.json"))) == 1

    def test_token_changes_on_record_and_is_zero_when_cold(self, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.token("k1") == 0
        store.record("k1", "engine", elapsed_seconds=0.5, workers=2, total_iterations=10)
        first = store.token("k1")
        assert first != 0
        store.record("k1", "engine", elapsed_seconds=0.6, workers=2, total_iterations=10)
        assert store.token("k1") != first

    def test_corrupt_file_loads_as_empty(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.path_for("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path_for("bad").write_text("{truncated")
        assert store.load("bad") == {}

    def test_corrupt_file_is_recoverable_by_recording(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k1", "engine", elapsed_seconds=0.5, workers=2, total_iterations=10)
        store.path_for("k1").write_text("not json at all")
        store.record("k1", "engine", elapsed_seconds=0.6, workers=2, total_iterations=10)
        assert store.load("k1")["engine"].runs == 1  # history lost, store healthy

    def test_eviction_drops_oldest_beyond_cap(self, tmp_path):
        store = ProfileStore(tmp_path, max_entries=3)
        for index in range(6):
            store.record(f"k{index}", "engine", elapsed_seconds=0.1, workers=1,
                         total_iterations=10)
            # distinct mtimes even on coarse-grained filesystems
            os.utime(store.path_for(f"k{index}"), ns=(index * 10**9, index * 10**9))
        remaining = sorted(p.name for p in Path(tmp_path).glob("*.profile.json"))
        assert len(remaining) == 3
        assert remaining == ["k3.profile.json", "k4.profile.json", "k5.profile.json"]

    def test_clear_removes_everything(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k1", "engine", elapsed_seconds=0.1, workers=1, total_iterations=10)
        store.record("k2", "engine", elapsed_seconds=0.1, workers=1, total_iterations=10)
        assert store.clear() == 2
        assert store.load("k1") == {}

    def test_default_store_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "custom"))
        assert default_profile_store().root == tmp_path / "custom"


def _hammer_store(args):
    """One writer process: bank ``rounds`` runs under the shared key."""
    root, writer, rounds = args
    store = ProfileStore(root)
    for index in range(rounds):
        store.record(
            "shared", "engine",
            elapsed_seconds=0.001 * (writer + 1),
            workers=2,
            total_iterations=100,
            chunks=[ChunkProfile(1, 100, 0.0005)],
        )
        loaded = store.load("shared")  # must never see a torn file
        assert "engine" in loaded
    return store.load("shared")["engine"].runs


class TestConcurrentWriters:
    def test_two_processes_never_corrupt_a_shared_key(self, tmp_path):
        """The ISSUE's concurrency gate: parallel writers, one key, no tears.

        Atomic-rename publication means a concurrent writer can lose the
        *other's latest* merge (last rename wins) but every observable file
        state is complete, parsable JSON.  The final run count is therefore
        at least one writer's full tally, and every interleaved load above
        parsed successfully.
        """
        rounds = 20
        context = multiprocessing.get_context(
            "fork" if os.sys.platform.startswith("linux") else "spawn"
        )
        with context.Pool(2) as pool:
            counts = pool.map(
                _hammer_store, [(str(tmp_path), 0, rounds), (str(tmp_path), 1, rounds)]
            )
        store = ProfileStore(tmp_path)
        final = store.load("shared")["engine"]
        assert final.runs >= rounds  # no torn file ever zeroed the history
        assert final.runs <= 2 * rounds
        assert max(counts) >= rounds
        # the surviving file is exactly what load() parsed
        payload = json.loads(store.path_for("shared").read_text())
        assert payload["backends"]["engine"]["runs"] == final.runs


# ---------------------------------------------------------------------- #
# queries
# ---------------------------------------------------------------------- #
class TestSegmentsQuery:
    def test_matching_total_required(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k", "engine", elapsed_seconds=0.1, workers=2,
                     total_iterations=100, chunks=[ChunkProfile(1, 100, 0.1)])
        assert store.segments("k", 100)
        assert store.segments("k", 200) == []

    def test_overlapping_spans_are_not_trusted(self, tmp_path):
        # a native dynamic/guided run: per-thread spans overlap, sizes sum > total
        store = ProfileStore(tmp_path)
        store.record("k", "native", elapsed_seconds=0.1, workers=2,
                     total_iterations=100,
                     chunks=[ChunkProfile(1, 80, 0.05), ChunkProfile(21, 100, 0.05)])
        assert store.segments("k", 100) == []

    def test_prefer_backend_wins_when_present(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k", "engine", elapsed_seconds=0.1, workers=2,
                     total_iterations=10, chunks=[ChunkProfile(1, 10, 0.1)])
        store.record("k", "hybrid", elapsed_seconds=0.1, workers=2,
                     total_iterations=10, chunks=[ChunkProfile(1, 10, 0.2)])
        preferred = store.segments("k", 10, prefer_backend="hybrid")
        assert preferred == [ChunkProfile(1, 10, 0.2)]
        # absent preference falls back to the most-run backend
        store.record("k", "engine", elapsed_seconds=0.1, workers=2,
                     total_iterations=10, chunks=[ChunkProfile(1, 10, 0.3)])
        assert store.segments("k", 10, prefer_backend="python") == [ChunkProfile(1, 10, 0.3)]

    def test_best_backend_by_median(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.record("k", "engine", elapsed_seconds=0.5, workers=2, total_iterations=10)
        store.record("k", "native", elapsed_seconds=0.1, workers=2, total_iterations=10)
        assert store.best_backend("k", ["engine", "native"]) == "native"
        assert store.best_backend("k", ["hybrid"]) is None


# ---------------------------------------------------------------------- #
# profile-guided cutting
# ---------------------------------------------------------------------- #
class TestProfileGuidedChunks:
    def test_cuts_partition_the_range(self):
        segments = [ChunkProfile(1, 50, 1.0), ChunkProfile(51, 100, 1.0)]
        chunks = profile_guided_chunks(segments, 100, 4)
        assert chunks[0].first == 1 and chunks[-1].last == 100
        assert sum(c.size for c in chunks) == 100
        for previous, current in zip(chunks, chunks[1:]):
            assert current.first == previous.last + 1

    def test_uniform_density_gives_equal_chunks(self):
        chunks = profile_guided_chunks([ChunkProfile(1, 100, 1.0)], 100, 4)
        assert [c.size for c in chunks] == [25, 25, 25, 25]

    def test_dense_region_gets_finer_chunks(self):
        # front half carries 10x the cost per iteration
        segments = [ChunkProfile(1, 50, 5.0), ChunkProfile(51, 100, 0.5)]
        chunks = profile_guided_chunks(segments, 100, 4)
        assert chunks[0].size < 25
        assert chunks[-1].size > 25

    def test_unmeasured_gap_gets_mean_density(self):
        # only [1,20] and [81,100] measured; the gap must not be free
        segments = [ChunkProfile(1, 20, 1.0), ChunkProfile(81, 100, 1.0)]
        chunks = profile_guided_chunks(segments, 100, 2)
        assert sum(c.size for c in chunks) == 100
        assert abs(chunks[0].size - 50) <= 1  # symmetric cost -> middle cut

    def test_no_signal_returns_empty(self):
        assert profile_guided_chunks([], 100, 4) == []
        assert profile_guided_chunks([ChunkProfile(1, 100, 0.0)], 100, 4) == []
        assert profile_guided_chunks([ChunkProfile(1, 10, 1.0)], 0, 4) == []

    def test_count_clamped_to_total(self):
        chunks = profile_guided_chunks([ChunkProfile(1, 3, 1.0)], 3, 10)
        assert [(c.first, c.last) for c in chunks] == [(1, 1), (2, 2), (3, 3)]

    def test_returns_openmp_chunk_instances(self):
        chunks = profile_guided_chunks([ChunkProfile(1, 10, 1.0)], 10, 2)
        assert all(isinstance(chunk, Chunk) for chunk in chunks)


# ---------------------------------------------------------------------- #
# backend choice
# ---------------------------------------------------------------------- #
class TestChooseBackend:
    def test_unexplored_candidates_first_in_heuristic_order(self):
        profiles = {"engine": BackendProfile(backend="engine", elapsed_seconds=[0.5])}
        choice = choose_backend(
            profiles, ["engine", "native", "hybrid"], ["hybrid", "native", "engine"]
        )
        assert choice == "hybrid"

    def test_exploits_the_measured_fastest(self):
        profiles = {
            "engine": BackendProfile(backend="engine", elapsed_seconds=[0.5]),
            "native": BackendProfile(backend="native", elapsed_seconds=[0.1]),
            "hybrid": BackendProfile(backend="hybrid", elapsed_seconds=[0.3]),
        }
        choice = choose_backend(
            profiles, ["engine", "native", "hybrid"], ["hybrid", "native", "engine"]
        )
        assert choice == "native"

    def test_candidates_outside_the_viable_set_are_ignored(self):
        profiles = {"native": BackendProfile(backend="native", elapsed_seconds=[0.1])}
        assert choose_backend(profiles, ["engine"], ["native", "engine"]) == "engine"

    def test_empty_candidates_raise(self):
        with pytest.raises(ProfileError, match="no viable"):
            choose_backend({}, [], ["engine"])
