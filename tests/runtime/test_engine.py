"""Integration tests for the persistent engine and the session layer.

One module-scoped session (2 workers) backs every test: starting pools is
the expensive part, and sharing one is exactly how the engine is meant to
be used.
"""

import numpy as np
import pytest

from repro.kernels import get_kernel, run_collapsed_engine, run_original, verify_kernel
from repro.openmp import Chunk, ScheduleKind, run_chunks_in_processes
from repro.runtime import (
    EngineError,
    RuntimeSession,
    SharedBuffers,
    build_plan,
    collapse_and_run,
)

VALUES = {"N": 24}


@pytest.fixture(scope="module")
def session():
    with RuntimeSession(workers=2) as session:
        yield session


def failing_op(data, indices, values):
    raise RuntimeError("deliberate kernel failure")


def chunk_sum_worker(first_pc: int, last_pc: int, parameter_values) -> int:
    """Classic executor-style worker, engine-dispatchable (module-level)."""
    return sum(range(first_pc, last_pc + 1))


def mark_visit_op(data, indices, values):
    data["visits"][indices] += 1.0


class TestEngineCorrectness:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided", "adaptive"])
    def test_utma_matches_run_original_under_every_policy(self, session, schedule):
        expected = run_original(get_kernel("utma"), VALUES)
        result = session.run("utma", VALUES, schedule=schedule)
        assert np.array_equal(result["c"], expected["c"])

    def test_ltmp_fallback_iteration_path_matches(self, session):
        # ltmp has no chunk_op: workers walk the per-iteration fallback
        expected = run_original(get_kernel("ltmp"), {"N": 16})
        result = session.run("ltmp", {"N": 16}, schedule="adaptive")
        assert np.allclose(result["c"], expected["c"])

    def test_run_collapsed_engine_with_caller_data(self, session):
        kernel = get_kernel("utma")
        data = kernel.make_data(VALUES)
        expected = run_original(kernel, VALUES, data)
        result = run_collapsed_engine(kernel, VALUES, data, session=session)
        assert np.array_equal(result["c"], expected["c"])
        assert np.all(data["c"] == 0)  # caller's arrays are never mutated

    def test_verify_kernel_includes_the_engine_path(self, session):
        assert verify_kernel(get_kernel("utma"), VALUES, session=session)


class TestEngineRunResult:
    def test_counts_cover_every_iteration_exactly_once(self, session):
        kernel = get_kernel("utma")
        plan = session.plan_for("utma", VALUES, schedule="adaptive")
        with SharedBuffers.create(kernel.make_data(VALUES)) as buffers:
            result = session.execute(plan, buffers=buffers)
        session.engine.forget(plan)
        assert sum(result.results) == plan.total_iterations
        assert result.iterations == plan.total_iterations
        assert len(result.assignments) == len(result.chunks)
        assert len(result.chunk_seconds) == len(result.chunks)
        assert all(worker in (0, 1) for worker in result.assignments)
        assert result.schedule.kind is ScheduleKind.ADAPTIVE

    def test_static_chunks_run_on_their_assigned_workers(self, session):
        kernel = get_kernel("utma")
        plan = session.plan_for("utma", VALUES, schedule="static")
        with SharedBuffers.create(kernel.make_data(VALUES)) as buffers:
            result = session.execute(plan, buffers=buffers)
        session.engine.forget(plan)
        for chunk, worker in zip(result.chunks, result.assignments):
            assert worker == chunk.thread % session.engine.workers

    def test_empty_domain_executes_without_dispatch(self, session):
        plan = build_plan("utma", {"N": 0}, schedule="static")
        result = session.engine.execute(plan)
        assert result.results == ()
        assert result.chunks == ()


class TestErrorHandling:
    def test_worker_failure_raises_and_pool_survives(self, session):
        from repro.ir import Loop, LoopNest

        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")], parameters=["N"], name="boom"
        )
        plan = build_plan(nest, {"N": 6}, schedule="static", iteration_op=failing_op)
        with pytest.raises(EngineError, match="deliberate kernel failure"):
            session.engine.execute(plan)
        session.engine.forget(plan)
        # the pool must still serve good plans afterwards
        expected = run_original(get_kernel("utma"), VALUES)
        assert np.array_equal(session.run("utma", VALUES)["c"], expected["c"])

    def test_workers_must_be_positive(self):
        from repro.runtime import RuntimeEngine

        with pytest.raises(EngineError):
            RuntimeEngine(workers=0)

    def test_unpicklable_worker_is_rejected_eagerly(self, session):
        # a closure would die in the queue feeder thread and hang the parent;
        # the engine refuses it up front instead
        bound = 7
        with pytest.raises(EngineError, match="picklable"):
            session.engine.map_chunks(lambda f, l, v: bound, [Chunk(1, 5)], {})

    def test_dead_worker_is_detected_fast_and_pool_restarts(self):
        from repro.runtime import RuntimeEngine

        with RuntimeEngine(workers=2, task_timeout=60.0) as engine:
            engine._processes[0].terminate()
            engine._processes[0].join()
            with pytest.raises(EngineError, match="died"):
                engine.map_chunks(chunk_sum_worker, [Chunk(1, 10)], {})
            # the broken pool was torn down; the next call starts a fresh one
            result = engine.map_chunks(chunk_sum_worker, [Chunk(1, 10)], {})
            assert result.results == (55,)


class TestExecutorRewiring:
    def test_map_chunks_matches_fresh_pool_results(self, session):
        total = 200
        chunks = [Chunk(1, 80, 0), Chunk(81, 150, 1), Chunk(151, total, 0)]
        through_engine = run_chunks_in_processes(
            chunk_sum_worker, total, {}, workers=2, chunks=chunks, engine=session.engine
        )
        fresh_pool = run_chunks_in_processes(chunk_sum_worker, total, {}, workers=2, chunks=chunks)
        assert through_engine.results == fresh_pool.results
        assert sum(through_engine.results) == total * (total + 1) // 2

    def test_schedule_strings_cut_the_chunks(self, session):
        result = run_chunks_in_processes(
            chunk_sum_worker, 100, {}, workers=2, schedule="dynamic,30", engine=session.engine
        )
        assert [chunk.size for chunk in result.chunks] == [30, 30, 30, 10]
        assert result.schedule.chunk_size == 30


class TestAnalysisRewiring:
    def test_measure_execution_throughput_modes(self, session):
        from repro.analysis import measure_execution_throughput

        kernel = get_kernel("utma")
        rows = {
            mode: measure_execution_throughput(
                kernel, VALUES, mode=mode, workers=2, session=session
            )
            for mode in ("serial", "inline", "engine")
        }
        total = kernel.collapsed().total_iterations(VALUES)
        for mode, row in rows.items():
            assert row.iterations == total, mode
            assert row.elapsed_seconds > 0, mode
            assert row.iterations_per_second > 0, mode
        assert rows["serial"].workers == 1
        assert rows["engine"].workers == 2

    def test_unknown_mode_is_rejected(self):
        from repro.analysis import measure_execution_throughput

        with pytest.raises(ValueError, match="unknown mode"):
            measure_execution_throughput(get_kernel("utma"), VALUES, mode="threads")


class TestSession:
    def test_plans_are_cached_by_structure(self, session):
        first = session.plan_for("utma", VALUES, schedule="adaptive")
        second = session.plan_for("utma", VALUES, schedule="adaptive")
        assert first is second
        different = session.plan_for("utma", {"N": 25}, schedule="adaptive")
        assert different is not first

    def test_collapse_and_run_with_explicit_session(self, session):
        expected = run_original(get_kernel("utma"), VALUES)
        result = collapse_and_run("utma", VALUES, session=session)
        assert np.array_equal(result["c"], expected["c"])

    def test_collapse_and_run_accepts_nest_sources(self, session):
        from repro.ir import Loop, LoopNest, enumerate_iterations

        nest = LoopNest(
            [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")], parameters=["N"], name="visit2"
        )
        values = {"N": 10}
        data = {"visits": np.zeros((10, 12))}
        result = collapse_and_run(
            nest, values, session=session, schedule="static", iteration_op=mark_visit_op, data=data
        )
        expected = np.zeros((10, 12))
        for indices in enumerate_iterations(nest, values):
            expected[indices] += 1.0
        # nest sources mutate the caller's arrays in place and report the run
        assert np.array_equal(data["visits"], expected)
        assert sum(result.results) == int(expected.sum())

    def test_repeated_runs_reuse_buffers_and_stay_correct(self, session):
        expected = run_original(get_kernel("utma"), VALUES)
        before = session.cache_info()["buffers"]
        for _ in range(3):
            result = session.run("utma", VALUES, schedule="static")
            assert np.array_equal(result["c"], expected["c"])
        assert session.cache_info()["buffers"] == max(before, 1)
