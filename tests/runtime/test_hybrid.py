"""The hybrid backend: engine scheduling driving compiled chunk execution.

Contract under test, layer by layer:

* *worker-side attachment* — the parent compiles the translation unit once,
  workers ``dlopen`` the cached shared object by path and execute chunks
  through the serial ``repro_run_range`` (proved by native-only plans that
  have no Python operations to fall back on);
* *differential equality* — hybrid results are element-wise identical to
  the Python engine and to the whole-range native call;
* *fallback* — without a C compiler, ``backend="hybrid"`` degrades to the
  engine and still produces the identical result;
* *cache keying* — schedule changes never reuse a stale native module or a
  stale plan (the PR's audit of the ``ScheduleSpec`` cache keys).
"""

import numpy as np
import pytest

from repro.ir import Loop, LoopNest, enumerate_iterations, iteration_count
from repro.native import native_available

needs_compiler = pytest.mark.skipif(
    not native_available(), reason="no C compiler on this machine"
)


def _mark_visit(data, indices, values):  # module-level: picklable
    data["visits"][indices] += 1.0


def _triangle_nest() -> LoopNest:
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
        parameters=["N"],
        name="triangle",
    )


@pytest.fixture(scope="module")
def session():
    from repro.runtime import RuntimeSession

    with RuntimeSession(workers=2) as session:
        yield session


# ---------------------------------------------------------------------- #
# differential equality on kernels
# ---------------------------------------------------------------------- #
@needs_compiler
class TestKernelEquality:
    @pytest.mark.parametrize("name,n", [("utma", 96), ("ltmp", 48)])
    def test_hybrid_equals_engine_and_native(self, session, name, n):
        from repro.kernels import get_kernel, run_collapsed_native, run_original

        kernel = get_kernel(name)
        values = {"N": n}
        original = run_original(kernel, values)
        hybrid = session.run(name, values, backend="hybrid", schedule="adaptive")
        engine = session.run(name, values, backend="engine", schedule="adaptive")
        native = run_collapsed_native(kernel, values, threads=2)
        for array in original:
            assert np.allclose(hybrid[array], original[array], atol=1e-9), array
            assert np.allclose(hybrid[array], engine[array], atol=1e-9), array
            assert np.allclose(hybrid[array], native[array], atol=1e-9), array

    def test_elementwise_kernel_is_bit_identical(self, session):
        """utma's body is one add: hybrid must match to the last bit."""
        from repro.kernels import get_kernel, run_original

        values = {"N": 128}
        hybrid = session.run("utma", values, backend="hybrid")
        expected = run_original(get_kernel("utma"), values)
        assert np.array_equal(hybrid["c"], expected["c"])

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided", "adaptive"])
    def test_every_schedule_policy(self, session, schedule):
        from repro.kernels import get_kernel, run_original

        values = {"N": 64}
        hybrid = session.run("utma", values, backend="hybrid", schedule=schedule)
        expected = run_original(get_kernel("utma"), values)
        assert np.array_equal(hybrid["c"], expected["c"]), schedule

    def test_verify_kernel_hybrid_gate(self, session):
        from repro.kernels import get_kernel, verify_kernel

        assert verify_kernel(get_kernel("utma"), backend="hybrid", session=session)

    def test_run_collapsed_hybrid_with_caller_data(self, session):
        """Caller data seeds the run and is not mutated (private copies)."""
        from repro.kernels import get_kernel, run_collapsed_hybrid, run_original

        kernel = get_kernel("utma")
        values = {"N": 48}
        data = kernel.make_data(values)
        before = {name: value.copy() for name, value in data.items()}
        result = run_collapsed_hybrid(kernel, values, data, session=session)
        expected = run_original(kernel, values, data)
        assert np.array_equal(result["c"], expected["c"])
        for name in before:
            assert np.array_equal(data[name], before[name])


# ---------------------------------------------------------------------- #
# worker-side module attachment
# ---------------------------------------------------------------------- #
@needs_compiler
class TestWorkerAttachment:
    def test_native_only_plan_proves_workers_run_the_library(self, session):
        """A plan with a C body and *no Python operations* can only execute
        if every worker loaded the compiled shared object — any silent
        Python fallback would raise EngineError instead."""
        from repro.core import batch_recovery, collapse
        from repro.runtime import SharedBuffers, build_plan

        nest = _triangle_nest()
        values = {"N": 40}
        total = collapse(nest).total_iterations(values)
        plan = build_plan(
            nest,
            values,
            schedule="dynamic,64",
            native=True,
            c_body="trace(pc - 1) = (double)(i * 1000 + j);",
            c_arrays=("trace",),
            array_ndims={"trace": 1},
        )
        assert plan.native_spec is not None
        assert plan.iteration_op is None and plan.chunk_op is None
        with SharedBuffers.create({"trace": np.zeros(total)}) as buffers:
            result = session.engine.execute(plan, buffers=buffers)
            trace = buffers.snapshot()["trace"]
        session.engine.forget(plan)
        assert result.backend == "hybrid"
        assert sum(result.results) == total
        indices = batch_recovery(collapse(nest)).recover_range(1, total, values)
        expected = indices[:, 0] * 1000 + indices[:, 1]
        assert np.array_equal(trace, expected.astype(np.float64))

    def test_second_run_is_pure_dispatch_no_compiler(self, session):
        """Steady state: the cached plan re-executes without any compiler
        invocation (the .so is memoised in-process and cached on disk)."""
        import unittest.mock

        from repro.kernels import get_kernel, run_original
        from repro.native import compiler as compiler_module

        values = {"N": 72}
        session.run("utma", values, backend="hybrid")
        with unittest.mock.patch.object(
            compiler_module.subprocess, "run",
            side_effect=AssertionError("hybrid steady state re-invoked the compiler"),
        ):
            again = session.run("utma", values, backend="hybrid")
        expected = run_original(get_kernel("utma"), values)
        assert np.array_equal(again["c"], expected["c"])

    def test_parser_derived_body_runs_hybrid(self, session):
        """A nest parsed from C-like text carries its own native body."""
        from repro.ir import parse_loop_nest
        from repro.runtime import SharedBuffers, build_plan

        nest, _ = parse_loop_nest(
            """
            for (i = 0; i < N - 1; i++)
              for (j = i + 1; j < N; j++)
                visits(i, j) += 1.0;
            """,
            parameters=["N"],
            name="correlation_text",
        )
        values = {"N": 20}
        plan = build_plan(nest, values, schedule="adaptive", native=True)
        assert plan.native_spec is not None
        expected = np.zeros((20, 20))
        for i, j in enumerate_iterations(nest, values):
            expected[i, j] += 1.0
        with SharedBuffers.create({"visits": np.zeros((20, 20))}) as buffers:
            result = session.engine.execute(plan, buffers=buffers)
            visits = buffers.snapshot()["visits"]
        session.engine.forget(plan)
        assert result.backend == "hybrid"
        assert np.array_equal(visits, expected)


# ---------------------------------------------------------------------- #
# fallback without a compiler
# ---------------------------------------------------------------------- #
class TestFallback:
    def test_hybrid_falls_back_to_engine_without_compiler(self, session, monkeypatch):
        """backend='hybrid' on a compiler-less machine must neither raise
        nor change the result — it runs the Python engine."""
        from repro.kernels import get_kernel, run_original
        from repro.native import clear_module_cache
        from repro.native import compiler as compiler_module

        monkeypatch.setattr(compiler_module, "find_compiler", lambda: None)
        clear_module_cache()  # an earlier test's memoised module must not mask the fallback
        values = {"N": 56}
        data = session.run("utma", values, backend="hybrid")
        expected = run_original(get_kernel("utma"), values)
        assert np.array_equal(data["c"], expected["c"])

    def test_fallback_result_reports_engine_backend(self, session, monkeypatch):
        """Nest sources return the run result, where the substrate that
        actually executed is visible: engine on fallback, hybrid otherwise."""
        from repro.native import clear_module_cache
        from repro.native import compiler as compiler_module

        nest, _ = _parse_visits_nest()
        values = {"N": 12}
        monkeypatch.setattr(compiler_module, "find_compiler", lambda: None)
        clear_module_cache()
        result = session.run(
            nest, values, data={"visits": np.zeros((12, 12))},
            backend="hybrid", iteration_op=_mark_visit,
        )
        assert result.backend == "engine"
        assert sum(result.results) == iteration_count(nest, values)

    def test_fallback_strips_native_only_plan_kwargs(self, session, monkeypatch):
        """An explicit c_body must not break the engine fallback: without a
        compiler the same call degrades, dropping the native-only options."""
        from repro.native import clear_module_cache
        from repro.native import compiler as compiler_module

        nest = _triangle_nest()
        values = {"N": 10}
        monkeypatch.setattr(compiler_module, "find_compiler", lambda: None)
        clear_module_cache()
        result = session.run(
            nest, values, data={"visits": np.zeros((10, 10))},
            backend="hybrid", iteration_op=_mark_visit,
            c_body="visits(i, j) += 1.0;", c_arrays=("visits",),
        )
        assert result.backend == "engine"
        assert sum(result.results) == iteration_count(nest, values)

    def test_hybrid_kernel_without_c_body_is_an_explicit_error(self, session):
        """run_collapsed_hybrid pre-checks the capability with a clear
        message, exactly like run_collapsed_native does."""
        from repro.kernels import get_kernel, run_collapsed_hybrid

        kernel = get_kernel("jacobi1d_skewed")  # executable, no c_body
        with pytest.raises(ValueError, match="no native C body"):
            run_collapsed_hybrid(kernel, dict(kernel.bench_parameters), session=session)

    def test_opless_nest_without_compiler_names_the_compiler(self, session, monkeypatch):
        """A parsed nest with a C body but no Python ops, on a machine
        without a compiler: nothing can run it, and the error must name the
        missing compiler — not complain about missing Python ops."""
        from repro.native import NativeUnavailable, clear_module_cache
        from repro.native import compiler as compiler_module

        nest, _ = _parse_visits_nest()
        monkeypatch.setattr(compiler_module, "find_compiler", lambda: None)
        clear_module_cache()
        with pytest.raises(NativeUnavailable, match="no C compiler"):
            session.run(
                nest, {"N": 8}, data={"visits": np.zeros((8, 8))}, backend="hybrid"
            )

    @needs_compiler
    def test_broken_c_body_with_a_compiler_present_raises(self, session):
        """Fallback is for *missing compilers* only: a compilation failure
        of the caller's own C body must surface, not silently run the
        engine."""
        from repro.native import NativeUnavailable

        nest, _ = _parse_visits_nest()
        with pytest.raises(NativeUnavailable, match="compilation failed"):
            session.run(
                nest, {"N": 8}, data={"visits": np.zeros((8, 8))},
                backend="hybrid", iteration_op=_mark_visit,
                c_body="this is not C at all;", c_arrays=("visits",),
            )

    @needs_compiler
    def test_verify_kernel_hybrid_never_creates_the_default_session(self, monkeypatch):
        """Verification must not leave a process-wide worker pool behind."""
        from repro.kernels import get_kernel, verify_kernel
        from repro.runtime import session as session_module

        def _forbidden(*_args, **_kwargs):
            raise AssertionError("verify_kernel(hybrid) touched the default session")

        monkeypatch.setattr(session_module, "default_session", _forbidden)
        assert verify_kernel(get_kernel("utma"), parameter_values={"N": 32}, backend="hybrid")

    def test_hybrid_without_any_c_body_is_an_explicit_error(self, session):
        """A source that can never run natively (opaque nest, Python ops
        only) is a caller mistake, not a degraded mode: hybrid refuses it
        loudly instead of silently running the engine."""
        from repro.runtime.plan import PlanError

        nest = _triangle_nest()
        with pytest.raises(PlanError, match="no C body"):
            session.run(
                nest, {"N": 8}, data={"visits": np.zeros((8, 8))},
                backend="hybrid", iteration_op=_mark_visit,
            )

    @needs_compiler
    def test_with_compiler_the_same_call_reports_hybrid(self, session):
        nest, _ = _parse_visits_nest()
        values = {"N": 12}
        result = session.run(
            nest, values, data={"visits": np.zeros((12, 12))},
            backend="hybrid", iteration_op=_mark_visit,
        )
        assert result.backend == "hybrid"
        assert sum(result.results) == iteration_count(nest, values)


def _parse_visits_nest():
    from repro.ir import parse_loop_nest

    return parse_loop_nest(
        """
        for (i = 0; i < N; i++)
          for (j = i; j < N; j++)
            visits(i, j) += 1.0;
        """,
        parameters=["N"],
        name="triangle_text",
    )


# ---------------------------------------------------------------------- #
# worker-side degradation (honest backend reporting)
# ---------------------------------------------------------------------- #
@needs_compiler
class TestWorkerDegradation:
    def test_unbindable_data_degrades_to_python_ops(self, session):
        """float32 buffers cannot bind to the C ABI; with Python ops on the
        plan the workers must degrade — same results, honest backend."""
        nest, _ = _parse_visits_nest()
        values = {"N": 10}
        data = {"visits": np.zeros((10, 10), dtype=np.float32)}
        result = session.run(
            nest, values, data=data, backend="hybrid", iteration_op=_mark_visit
        )
        assert result.backend == "engine"  # degraded, and says so
        assert sum(result.results) == iteration_count(nest, values)
        assert float(data["visits"].sum()) == iteration_count(nest, values)

    def test_vanished_library_degrades_to_python_ops(self, session):
        """A hybrid plan whose .so disappeared between compile and dispatch
        must run the Python ops and report the engine substrate."""
        import dataclasses

        from repro.kernels import get_kernel, run_original
        from repro.native.module import NativeLibrarySpec
        from repro.runtime import SharedBuffers, build_plan

        kernel = get_kernel("utma")
        values = {"N": 40}
        plan = build_plan(kernel, values, schedule="static", native=True)
        broken = dataclasses.replace(
            plan,
            plan_id=plan.plan_id + "-broken",
            native_spec=NativeLibrarySpec(
                library_path="/nonexistent/repro-gone.so",
                parameters=plan.native_spec.parameters,
                arrays=plan.native_spec.arrays,
                array_ndims=plan.native_spec.array_ndims,
            ),
        )
        with SharedBuffers.create(kernel.make_data(values)) as buffers:
            result = session.engine.execute(broken, buffers=buffers)
            c = buffers.snapshot()["c"]
        session.engine.forget(broken)
        assert result.backend == "engine"
        assert np.array_equal(c, run_original(kernel, values)["c"])

    def test_degradation_is_per_attachment_not_permanent(self, session):
        """A failed bind (float32 buffers) must not poison the plan: the
        next attachment with bindable float64 buffers runs natively again."""
        from repro.runtime import SharedBuffers, build_plan

        nest, _ = _parse_visits_nest()
        values = {"N": 10}
        plan = build_plan(
            nest, values, schedule="static", native=True,
            iteration_op=_mark_visit,
        )
        with SharedBuffers.create(
            {"visits": np.zeros((10, 10), dtype=np.float32)}
        ) as buffers:
            degraded = session.engine.execute(plan, buffers=buffers)
        assert degraded.backend == "engine"
        with SharedBuffers.create({"visits": np.zeros((10, 10))}) as buffers:
            recovered = session.engine.execute(plan, buffers=buffers)
            visits = buffers.snapshot()["visits"]
        session.engine.forget(plan)
        assert recovered.backend == "hybrid"
        assert visits.sum() == iteration_count(nest, values)

    def test_rank_conflict_reports_the_real_defect(self):
        """A parsed nest with a body but inconsistent array ranks must name
        the rank conflict, not claim there is no C body."""
        from repro.ir import parse_loop_nest
        from repro.runtime import build_plan
        from repro.runtime.plan import PlanError

        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i) = v(i, 0);", parameters=["N"]
        )
        with pytest.raises(PlanError, match="both 1 and 2 subscripts"):
            build_plan(nest, {"N": 8}, native=True, iteration_op=_mark_visit)

    def test_native_only_plan_with_unbindable_data_fails_loudly(self, session):
        """No Python ops to degrade to: the bind error must surface as an
        EngineError, not execute nothing."""
        from repro.runtime import EngineError, SharedBuffers, build_plan

        nest, _ = _parse_visits_nest()
        values = {"N": 8}
        plan = build_plan(nest, values, native=True)
        with SharedBuffers.create(
            {"visits": np.zeros((8, 8), dtype=np.float32)}
        ) as buffers:
            with pytest.raises(EngineError, match="float64"):
                session.engine.execute(plan, buffers=buffers)
        session.engine.forget(plan)


# ---------------------------------------------------------------------- #
# cache keying (the ScheduleSpec audit)
# ---------------------------------------------------------------------- #
@needs_compiler
class TestCacheKeying:
    def test_adaptive_normalises_to_static_at_the_compile_choke_point(self):
        """compile_native_kernel is where every kernel-compiling path
        normalises the engine-only 'adaptive' policy."""
        from repro.native import compile_native_kernel

        module = compile_native_kernel("utma", schedule="adaptive")
        assert str(module.schedule) == "static"
        assert module is compile_native_kernel("utma", schedule="static")

    def test_schedule_change_never_reuses_a_stale_module(self):
        """The module memo is keyed by the parsed ScheduleSpec: asking for a
        new schedule compiles (or disk-loads) a unit carrying *that*
        schedule, while re-asking for an old one hits the memo."""
        from repro.native import compile_native_kernel

        static = compile_native_kernel("utma", schedule="static")
        dynamic = compile_native_kernel("utma", schedule="dynamic,64")
        assert static is not dynamic
        assert str(static.schedule) == "static"
        assert str(dynamic.schedule) == "dynamic,64"
        assert "schedule(static)" in static.source
        assert "schedule(dynamic, 64)" in dynamic.source
        assert compile_native_kernel("utma", schedule="static") is static

    def test_session_plans_are_keyed_by_schedule_and_backend(self, session):
        """One (kernel, size) under different schedules or backends must
        never share a cached plan — a hybrid plan carries a native spec an
        engine plan must not have."""
        values = {"N": 32}
        static = session.plan_for("utma", values, schedule="static")
        adaptive = session.plan_for("utma", values, schedule="adaptive")
        assert static is not adaptive
        assert session.plan_for("utma", values, schedule="static") is static
        engine_plan = session.plan_for("utma", values, schedule="static")
        hybrid_plan = session.plan_for("utma", values, schedule="static", native=True)
        assert engine_plan is not hybrid_plan
        assert engine_plan.native_spec is None
        assert hybrid_plan.native_spec is not None

    def test_same_shaped_nests_with_different_bodies_get_different_plans(self, session):
        """Two parsed nests with identical loops but different statements
        must not share a cached plan: the statement text *is* the compiled
        behavior now."""
        from repro.ir import parse_loop_nest
        from repro.kernels import get_kernel

        def parsed(op):
            nest, _ = parse_loop_nest(
                f"for (i = 0; i < N; i++)\n  for (j = i; j < N; j++)\n"
                f"    c(i, j) = a(i, j) {op} b(i, j);",
                parameters=["N"],
            )
            return nest

        values = {"N": 24}
        add_plan = session.plan_for(parsed("+"), values, native=True)
        mul_plan = session.plan_for(parsed("*"), values, native=True)
        assert add_plan is not mul_plan
        assert add_plan.native_spec.library_path != mul_plan.native_spec.library_path
        kernel_data = get_kernel("utma").make_data(values)
        add_result = session.run(parsed("+"), values, data=dict(kernel_data), backend="native")
        mul_data = dict(kernel_data)
        session.run(parsed("*"), values, data=mul_data, backend="native")
        assert add_result is not None
        expected = np.triu(kernel_data["a"] * kernel_data["b"])
        assert np.array_equal(np.triu(mul_data["c"]), expected)

    def test_hybrid_plans_share_one_library_across_schedules(self, session):
        """The serial repro_run_range is schedule-independent, so hybrid
        plans of one kernel reuse one compiled shared object — the inverse
        guarantee: sharing where sharing is *correct*."""
        values = {"N": 32}
        a = session.plan_for("utma", values, schedule="static", native=True)
        b = session.plan_for("utma", values, schedule="adaptive", native=True)
        assert a is not b
        assert a.native_spec.library_path == b.native_spec.library_path
