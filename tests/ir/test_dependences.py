"""Tests for the polyhedral dependence tests guarding the collapse precondition."""

import pytest

from repro.ir import ArrayAccess, Loop, LoopNest, Statement, dependence_report, may_carry_dependence


def make_nest(loops, statements, parameters=("N",)):
    return LoopNest(loops, statements, parameters)


def correlation_nest():
    """Fig. 1: the i and j loops carry no dependence (k-reduction is inner)."""
    return make_nest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        [
            Statement(
                "accumulate",
                (
                    ArrayAccess.write("a", "i", "j"),
                    ArrayAccess.read("a", "i", "j"),
                    ArrayAccess.read("b", "k", "i"),
                    ArrayAccess.read("c", "k", "j"),
                ),
            ),
            Statement(
                "mirror",
                (
                    ArrayAccess.write("a", "j", "i"),
                    ArrayAccess.read("a", "i", "j"),
                ),
            ),
        ],
    )


def ltmp_nest():
    """Lower-triangular matrix product: the innermost k loop carries the reduction."""
    return make_nest(
        [Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
        [
            Statement(
                "fma",
                (
                    ArrayAccess.write("c", "i", "j"),
                    ArrayAccess.read("c", "i", "j"),
                    ArrayAccess.read("a", "i", "k"),
                    ArrayAccess.read("b", "k", "j"),
                ),
            )
        ],
    )


class TestIndependentCases:
    def test_correlation_outer_two_loops_are_independent(self):
        """The motivating example: i and j can be collapsed (Section II)."""
        assert not may_carry_dependence(correlation_nest(), depth=2)

    def test_reduction_not_carried_by_outer_loops(self):
        """ltmp's reduction is carried by k only; collapsing (i, j) is legal."""
        assert not may_carry_dependence(ltmp_nest(), depth=2)

    def test_different_arrays_never_conflict(self):
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", "i"), ArrayAccess.read("b", "i"))),
            ],
        )
        assert not may_carry_dependence(nest)

    def test_constant_subscripts_that_differ(self):
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", 0), ArrayAccess.read("a", 1))),
            ],
        )
        assert not may_carry_dependence(nest)

    def test_gcd_filter(self):
        # a[2i] vs a[2i+1]: even vs odd elements never meet
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", "2*i"), ArrayAccess.read("a", "2*i + 1"))),
            ],
        )
        assert not may_carry_dependence(nest)

    def test_statements_without_accesses_are_trusted(self):
        nest = make_nest([Loop.make("i", 0, "N")], [Statement("opaque")])
        assert not may_carry_dependence(nest)


class TestDependentCases:
    def test_ltmp_k_loop_carries_the_reduction(self):
        assert may_carry_dependence(ltmp_nest(), depth=3)

    def test_loop_carried_flow_dependence(self):
        # a[i+1] = f(a[i]) is carried by i
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", "i + 1"), ArrayAccess.read("a", "i"))),
            ],
        )
        assert may_carry_dependence(nest)

    def test_anti_dependence_detected(self):
        # a[i] = f(a[i+1]) (anti-dependence) is also carried by i
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", "i"), ArrayAccess.read("a", "i + 1"))),
            ],
        )
        assert may_carry_dependence(nest)

    def test_output_dependence_on_inner_subscript_only(self):
        # writing a[j] from a (i, j) nest: different i write the same a[j]
        nest = make_nest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "N")],
            [Statement("s", (ArrayAccess.write("a", "j"), ArrayAccess.read("b", "i", "j")))],
        )
        # two statements are needed for an output dependence pair; model by
        # repeating the statement (write vs write of the other instance)
        nest = make_nest(
            [Loop.make("i", 0, "N"), Loop.make("j", 0, "N")],
            [
                Statement("s1", (ArrayAccess.write("a", "j"),)),
                Statement("s2", (ArrayAccess.write("a", "j"), ArrayAccess.read("a", "j"))),
            ],
        )
        assert may_carry_dependence(nest, depth=2)

    def test_subscript_arity_mismatch_is_conservative(self):
        nest = make_nest(
            [Loop.make("i", 0, "N")],
            [
                Statement("s", (ArrayAccess.write("a", "i"), ArrayAccess.read("a", "i", "i"))),
            ],
        )
        assert may_carry_dependence(nest)


class TestReport:
    def test_report_contains_every_ordered_pair(self):
        report = dependence_report(correlation_nest(), depth=2)
        assert len(report) > 0
        assert all(result.source.is_write for result in report)

    def test_report_reasons_are_informative(self):
        report = dependence_report(correlation_nest(), depth=2)
        assert any("empty" in result.reason or "different arrays" in result.reason for result in report)

    def test_report_str(self):
        report = dependence_report(ltmp_nest(), depth=3)
        assert any("may depend" in str(result) for result in report)

    def test_triangular_mirror_needs_domain_reasoning(self):
        """a[j][i] vs a[i][j] only conflict at i == j, which the triangular
        domain excludes — the polyhedral test proves independence where
        ZIV/GCD alone could not."""
        report = dependence_report(correlation_nest(), depth=2)
        mirror_pairs = [
            result
            for result in report
            if result.source.array == "a" and result.sink.array == "a" and result.source.subscripts != result.sink.subscripts
        ]
        assert mirror_pairs
        assert all(not result.may_depend for result in mirror_pairs)
