"""Tests for the C-like loop nest parser."""

import pytest

from repro.ir import ParseError, parse_loop_nest
from repro.polyhedra import AffineExpr


CORRELATION_SOURCE = """
#pragma omp parallel for private(j, k) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++)
    S(i, j);
"""

FIGURE6_SOURCE = """
for (i = 0; i < N - 1; i++)
  for (j = 0; j < i + 1; j++)
    for (k = j; k < i + 1; k++)
      S(i, j, k);
"""


class TestBasicParsing:
    def test_correlation_structure(self):
        nest, pragma = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert nest.depth == 2
        assert nest.iterators == ("i", "j")
        assert nest.loop("j").lower == AffineExpr.parse("i + 1")
        assert pragma.schedule == "static"
        assert pragma.collapse is None

    def test_figure6_structure(self):
        nest, _ = parse_loop_nest(FIGURE6_SOURCE, parameters=["N"])
        assert nest.depth == 3
        assert nest.loop("k").lower == AffineExpr.variable("j")
        assert nest.loop("k").upper == AffineExpr.parse("i + 1")

    def test_statement_names_collected(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert [s.name for s in nest.statements] == ["S"]

    def test_collapse_clause(self):
        source = "#pragma omp parallel for collapse(2) schedule(static)\n" + CORRELATION_SOURCE.split("\n", 2)[2]
        nest, pragma = parse_loop_nest(source, parameters=["N"])
        assert pragma.collapse == 2

    def test_schedule_with_chunk(self):
        source = CORRELATION_SOURCE.replace("schedule(static)", "schedule(dynamic, 16)")
        _, pragma = parse_loop_nest(source, parameters=["N"])
        assert pragma.schedule == "dynamic"
        assert pragma.chunk == 16

    def test_less_equal_upper_bound_becomes_exclusive(self):
        source = "for (i = 0; i <= N; i++)\n  S(i);"
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.loop("i").upper == AffineExpr.parse("N + 1")

    def test_int_declaration_and_braces_tolerated(self):
        source = """
        for (int i = 0; i < N; i++) {
          for (int j = 0; j < i + 1; j++) {
            S(i, j);
          }
        }
        """
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.depth == 2

    def test_comments_and_blank_lines_skipped(self):
        source = "// a comment\n\n" + CORRELATION_SOURCE
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.depth == 2


class TestParserErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_loop_nest("", parameters=["N"])

    def test_mixed_iterators_in_header(self):
        with pytest.raises(ParseError, match="mixes iterators"):
            parse_loop_nest("for (i = 0; j < N; i++)\n S(i);", parameters=["N"])

    def test_non_affine_bound(self):
        with pytest.raises(ParseError, match="non-affine|unsupported"):
            parse_loop_nest("for (i = 0; i < N*N; i++)\n S(i);", parameters=["N"])

    def test_unsupported_statement_line(self):
        with pytest.raises(ParseError, match="unsupported line"):
            parse_loop_nest("while (1) {}", parameters=["N"])

    def test_pragma_after_loop_rejected(self):
        source = "for (i = 0; i < N; i++)\n#pragma omp parallel for\n  S(i);"
        with pytest.raises(ParseError, match="pragma"):
            parse_loop_nest(source, parameters=["N"])

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_loop_nest("for (i = 0; i < M; i++)\n S(i);", parameters=["N"])

    def test_non_unit_stride_rejected(self):
        with pytest.raises(ParseError):
            parse_loop_nest("for (i = 0; i < N; i += 2)\n S(i);", parameters=["N"])


class TestRoundTrip:
    def test_parsed_nest_counts_match_paper(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert nest.iteration_count().evaluate({"N": 10}) == 45

    def test_parsed_figure6_count(self):
        nest, _ = parse_loop_nest(FIGURE6_SOURCE, parameters=["N"])
        assert nest.iteration_count().evaluate({"N": 7}) == (7 ** 3 - 7) // 6

    def test_source_round_trip_reparses(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        reparsed, _ = parse_loop_nest(nest.source(), parameters=["N"])
        assert reparsed.bounds() == nest.bounds()


class TestAssignmentStatements:
    """Array-assignment statements: dependence-visible accesses + C text."""

    SOURCE = """
    #pragma omp parallel for collapse(2) schedule(static)
    for (i = 0; i < N; i++)
      for (j = i; j < N; j++)
        c(i, j) = a(i, j) + b(i, j);
    """

    def test_accesses_and_c_text(self):
        nest, _ = parse_loop_nest(self.SOURCE, parameters=["N"])
        (statement,) = nest.statements
        assert statement.c_text == "c(i, j) = a(i, j) + b(i, j);"
        assert [str(w) for w in statement.writes()] == ["W:c[i][j]"]
        assert [str(r) for r in statement.reads()] == ["R:a[i][j]", "R:b[i][j]"]

    def test_compound_assignment_also_reads_the_target(self):
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i, i) += w(i, 0);", parameters=["N"]
        )
        (statement,) = nest.statements
        assert [str(w) for w in statement.writes()] == ["W:v[i][i]"]
        assert [str(r) for r in statement.reads()] == ["R:v[i][i]", "R:w[i][0]"]

    def test_math_calls_are_not_array_reads(self):
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i, 0) = sqrt(w(i, i));", parameters=["N"]
        )
        (statement,) = nest.statements
        assert {access.array for access in statement.accesses} == {"v", "w"}

    def test_array_shadowing_a_math_call_keeps_its_reads(self):
        """An array named 'exp' is proven an array by the LHS write; its
        RHS read must not vanish (it can carry a dependence)."""
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  exp(i, 0) = exp(i, 1) + 1.0;",
            parameters=["N"],
        )
        (statement,) = nest.statements
        assert [str(r) for r in statement.reads()] == ["R:exp[i][1]"]

    def test_whole_c99_math_roster_is_recognised(self):
        """log10, tanh & friends must not become phantom array reads."""
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n"
            "  v(i, 0) = log10(i + 1) + tanh(i) + hypot(i, i + 1);",
            parameters=["N"],
        )
        (statement,) = nest.statements
        assert {access.array for access in statement.accesses} == {"v"}

    def test_math_roster_is_user_extensible(self):
        from repro.ir.parser import C_MATH_CALLS

        C_MATH_CALLS.add("my_helper")
        try:
            nest, _ = parse_loop_nest(
                "for (i = 0; i < N; i++)\n  v(i, 0) = my_helper(i + 1);",
                parameters=["N"],
            )
            assert {a.array for a in nest.statements[0].accesses} == {"v"}
        finally:
            C_MATH_CALLS.discard("my_helper")

    def test_native_array_ndims_follow_subscript_counts(self):
        from repro.ir import native_array_ndims

        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  hist(i) += w(i, 0);", parameters=["N"]
        )
        assert native_array_ndims(nest) == {"hist": 1, "w": 2}

    def test_inconsistent_subscript_counts_are_rejected(self):
        from repro.ir import native_array_ndims

        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i) = v(i, 0);", parameters=["N"]
        )
        with pytest.raises(ParseError, match="both 1 and 2 subscripts"):
            native_array_ndims(nest)

    def test_non_affine_subscript_is_rejected(self):
        with pytest.raises(ParseError, match="subscript"):
            parse_loop_nest(
                "for (i = 0; i < N; i++)\n  v(i * i, 0) = 1.0;", parameters=["N"]
            )

    def test_parenthesised_subscripts_fail_loudly_not_silently(self):
        """A read like c((i - 1), j) cannot be captured by the access
        pattern; dropping it would hide a loop-carried dependence, so the
        parser must refuse the line instead."""
        with pytest.raises(ParseError, match="nested parentheses"):
            parse_loop_nest(
                "for (i = 1; i < N; i++)\n  c(i, 0) = c((i - 1), 0);",
                parameters=["N"],
            )

    def test_c_text_excludes_tolerated_close_braces(self):
        """Brace-style sources are accepted, but nest syntax must not leak
        into the emitted C body (unbalanced braces would not compile)."""
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++) {\n"
            "  for (j = i; j < N; j++) {\n"
            "    visits(i, j) += 1.0; }}",
            parameters=["N"],
        )
        assert nest.statements[0].c_text == "visits(i, j) += 1.0;"

    def test_zero_argument_calls_are_tolerated_as_functions(self):
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  v(i, 0) = f();", parameters=["N"]
        )
        assert {a.array for a in nest.statements[0].accesses} == {"v"}

    def test_native_body_joins_statements_and_orders_arrays(self):
        from repro.ir import native_body

        nest, _ = parse_loop_nest(self.SOURCE, parameters=["N"])
        body, arrays = native_body(nest)
        assert body == "c(i, j) = a(i, j) + b(i, j);"
        assert arrays == ("c", "a", "b")

    def test_native_body_refuses_opaque_statements(self):
        from repro.ir import native_body

        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  S(i);", parameters=["N"]
        )
        with pytest.raises(ParseError, match="no C text"):
            native_body(nest)

    def test_opaque_statements_still_parse(self):
        nest, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  S(i);", parameters=["N"]
        )
        assert nest.statements[0].name == "S"
        assert nest.statements[0].c_text is None

    def test_dependence_test_sees_parsed_accesses(self):
        """A parsed reduction (c(0,0) += ...) carries a loop-carried
        dependence the conservative test must flag; the element-wise
        assignment must pass."""
        from repro.ir import may_carry_dependence

        reduction, _ = parse_loop_nest(
            "for (i = 0; i < N; i++)\n  c(0, 0) += a(i, 0);", parameters=["N"]
        )
        assert may_carry_dependence(reduction, 1)
        elementwise, _ = parse_loop_nest(self.SOURCE, parameters=["N"])
        assert not may_carry_dependence(elementwise, 2)
