"""Tests for the C-like loop nest parser."""

import pytest

from repro.ir import ParseError, parse_loop_nest
from repro.polyhedra import AffineExpr


CORRELATION_SOURCE = """
#pragma omp parallel for private(j, k) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++)
    S(i, j);
"""

FIGURE6_SOURCE = """
for (i = 0; i < N - 1; i++)
  for (j = 0; j < i + 1; j++)
    for (k = j; k < i + 1; k++)
      S(i, j, k);
"""


class TestBasicParsing:
    def test_correlation_structure(self):
        nest, pragma = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert nest.depth == 2
        assert nest.iterators == ("i", "j")
        assert nest.loop("j").lower == AffineExpr.parse("i + 1")
        assert pragma.schedule == "static"
        assert pragma.collapse is None

    def test_figure6_structure(self):
        nest, _ = parse_loop_nest(FIGURE6_SOURCE, parameters=["N"])
        assert nest.depth == 3
        assert nest.loop("k").lower == AffineExpr.variable("j")
        assert nest.loop("k").upper == AffineExpr.parse("i + 1")

    def test_statement_names_collected(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert [s.name for s in nest.statements] == ["S"]

    def test_collapse_clause(self):
        source = "#pragma omp parallel for collapse(2) schedule(static)\n" + CORRELATION_SOURCE.split("\n", 2)[2]
        nest, pragma = parse_loop_nest(source, parameters=["N"])
        assert pragma.collapse == 2

    def test_schedule_with_chunk(self):
        source = CORRELATION_SOURCE.replace("schedule(static)", "schedule(dynamic, 16)")
        _, pragma = parse_loop_nest(source, parameters=["N"])
        assert pragma.schedule == "dynamic"
        assert pragma.chunk == 16

    def test_less_equal_upper_bound_becomes_exclusive(self):
        source = "for (i = 0; i <= N; i++)\n  S(i);"
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.loop("i").upper == AffineExpr.parse("N + 1")

    def test_int_declaration_and_braces_tolerated(self):
        source = """
        for (int i = 0; i < N; i++) {
          for (int j = 0; j < i + 1; j++) {
            S(i, j);
          }
        }
        """
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.depth == 2

    def test_comments_and_blank_lines_skipped(self):
        source = "// a comment\n\n" + CORRELATION_SOURCE
        nest, _ = parse_loop_nest(source, parameters=["N"])
        assert nest.depth == 2


class TestParserErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_loop_nest("", parameters=["N"])

    def test_mixed_iterators_in_header(self):
        with pytest.raises(ParseError, match="mixes iterators"):
            parse_loop_nest("for (i = 0; j < N; i++)\n S(i);", parameters=["N"])

    def test_non_affine_bound(self):
        with pytest.raises(ParseError, match="non-affine|unsupported"):
            parse_loop_nest("for (i = 0; i < N*N; i++)\n S(i);", parameters=["N"])

    def test_unsupported_statement_line(self):
        with pytest.raises(ParseError, match="unsupported line"):
            parse_loop_nest("while (1) {}", parameters=["N"])

    def test_pragma_after_loop_rejected(self):
        source = "for (i = 0; i < N; i++)\n#pragma omp parallel for\n  S(i);"
        with pytest.raises(ParseError, match="pragma"):
            parse_loop_nest(source, parameters=["N"])

    def test_undeclared_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_loop_nest("for (i = 0; i < M; i++)\n S(i);", parameters=["N"])

    def test_non_unit_stride_rejected(self):
        with pytest.raises(ParseError):
            parse_loop_nest("for (i = 0; i < N; i += 2)\n S(i);", parameters=["N"])


class TestRoundTrip:
    def test_parsed_nest_counts_match_paper(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        assert nest.iteration_count().evaluate({"N": 10}) == 45

    def test_parsed_figure6_count(self):
        nest, _ = parse_loop_nest(FIGURE6_SOURCE, parameters=["N"])
        assert nest.iteration_count().evaluate({"N": 7}) == (7 ** 3 - 7) // 6

    def test_source_round_trip_reparses(self):
        nest, _ = parse_loop_nest(CORRELATION_SOURCE, parameters=["N"])
        reparsed, _ = parse_loop_nest(nest.source(), parameters=["N"])
        assert reparsed.bounds() == nest.bounds()
