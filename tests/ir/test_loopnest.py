"""Tests for the loop-nest IR."""

import pytest

from repro.ir import ArrayAccess, Loop, LoopNest, Statement
from repro.polyhedra import AffineExpr
from repro.symbolic import Polynomial


def correlation_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("a", "i", "j"),
                    ArrayAccess.read("a", "i", "j"),
                ),
            )
        ],
        parameters=["N"],
        name="correlation",
    )


class TestLoop:
    def test_make_coerces_bounds(self):
        loop = Loop.make("j", "i + 1", "N")
        assert loop.lower == AffineExpr.parse("i + 1")
        assert loop.upper == AffineExpr.variable("N")

    def test_trip_count_expression(self):
        loop = Loop.make("j", "i + 1", "N")
        assert loop.trip_count_expression() == Polynomial.variable("N") - Polynomial.variable("i") - 1

    def test_header_source(self):
        assert Loop.make("i", 0, "N - 1").header_source() == "for (i = 0; i < N - 1; i++)"

    def test_parallel_flag_default(self):
        assert Loop.make("i", 0, 10).parallel


class TestArrayAccessAndStatement:
    def test_read_write_constructors(self):
        read = ArrayAccess.read("b", "k", "i")
        write = ArrayAccess.write("a", "i", "j")
        assert not read.is_write and write.is_write
        assert len(read.subscripts) == 2

    def test_statement_reads_writes(self):
        statement = correlation_nest().statements[0]
        assert len(statement.writes()) == 1
        assert len(statement.reads()) == 1

    def test_str_representations(self):
        access = ArrayAccess.write("a", "i", "j")
        assert str(access) == "W:a[i][j]"
        assert "update" in str(correlation_nest().statements[0])


class TestLoopNestConstruction:
    def test_requires_at_least_one_loop(self):
        with pytest.raises(ValueError):
            LoopNest([], parameters=["N"])

    def test_rejects_duplicate_iterators(self):
        with pytest.raises(ValueError):
            LoopNest([Loop.make("i", 0, 10), Loop.make("i", 0, 10)])

    def test_rejects_inner_iterator_in_outer_bound(self):
        # the outer bound must not reference the inner iterator
        with pytest.raises(ValueError):
            LoopNest([Loop.make("i", 0, "j"), Loop.make("j", 0, 10)])

    def test_rejects_unknown_symbol_in_bound(self):
        with pytest.raises(ValueError):
            LoopNest([Loop.make("i", 0, "M")], parameters=["N"])

    def test_accepts_fig5_model(self):
        nest = LoopNest(
            [
                Loop.make("i", 0, "N"),
                Loop.make("j", "i", "N + i"),
                Loop.make("k", "i + j", "N + j"),
            ],
            parameters=["N"],
        )
        assert nest.depth == 3


class TestLoopNestQueries:
    def test_depth_and_iterators(self):
        nest = correlation_nest()
        assert nest.depth == 2
        assert nest.iterators == ("i", "j")

    def test_loop_lookup(self):
        nest = correlation_nest()
        assert nest.loop("j").lower == AffineExpr.parse("i + 1")
        with pytest.raises(KeyError):
            nest.loop("z")

    def test_bounds_order(self):
        bounds = correlation_nest().bounds()
        assert [b[0] for b in bounds] == ["i", "j"]

    def test_is_rectangular(self):
        assert not correlation_nest().is_rectangular()
        rectangular = LoopNest([Loop.make("i", 0, "N"), Loop.make("j", 0, "M")], parameters=["N", "M"])
        assert rectangular.is_rectangular()
        # only the outermost loop of the correlation nest is rectangular
        assert correlation_nest().is_rectangular(depth=1)

    def test_prefix(self):
        outer = correlation_nest().prefix(1)
        assert outer.depth == 1
        assert outer.iterators == ("i",)
        with pytest.raises(ValueError):
            correlation_nest().prefix(0)

    def test_prefix_keeps_statements_at_full_depth(self):
        nest = correlation_nest()
        assert nest.prefix(2).statements == nest.statements
        assert nest.prefix(1).statements == ()

    def test_domain_counts(self):
        nest = correlation_nest()
        assert nest.domain().count({"N": 6}) == 15
        assert nest.domain(depth=1).count({"N": 6}) == 5

    def test_iteration_count_polynomial(self):
        nest = correlation_nest()
        N = Polynomial.variable("N")
        assert nest.iteration_count() == (N * (N - 1)) / 2

    def test_source_rendering(self):
        text = correlation_nest().source()
        assert "for (i = 0; i < N - 1; i++)" in text
        assert "for (j = i + 1; j < N; j++)" in text
        assert "update(i, j);" in text

    def test_repr_mentions_name_and_depth(self):
        assert "correlation" in repr(correlation_nest())
