"""Tests for iteration enumeration and the odometer incrementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Loop, LoopNest, Odometer, enumerate_iterations, iteration_count


def correlation_nest():
    return LoopNest([Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")], parameters=["N"])


def figure6_nest():
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
        parameters=["N"],
    )


def brute_force_correlation(n):
    return [(i, j) for i in range(n - 1) for j in range(i + 1, n)]


def brute_force_figure6(n):
    return [(i, j, k) for i in range(n - 1) for j in range(i + 1) for k in range(j, i + 1)]


class TestEnumeration:
    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_correlation_order_matches_brute_force(self, n):
        assert list(enumerate_iterations(correlation_nest(), {"N": n})) == brute_force_correlation(n)

    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_figure6_order_matches_brute_force(self, n):
        assert list(enumerate_iterations(figure6_nest(), {"N": n})) == brute_force_figure6(n)

    def test_partial_depth_enumeration(self):
        outer_only = list(enumerate_iterations(correlation_nest(), {"N": 5}, depth=1))
        assert outer_only == [(0,), (1,), (2,), (3,)]

    def test_empty_domain(self):
        assert list(enumerate_iterations(correlation_nest(), {"N": 1})) == []

    def test_iteration_count(self):
        assert iteration_count(correlation_nest(), {"N": 10}) == 45
        assert iteration_count(figure6_nest(), {"N": 7}) == (7 ** 3 - 7) // 6

    def test_nest_with_empty_middle_rows(self):
        """Rows whose inner loop is empty are skipped without being yielded."""
        nest = LoopNest(
            [Loop.make("i", 0, 6), Loop.make("j", "2*i", 7)],
            parameters=[],
        )
        expected = [(i, j) for i in range(6) for j in range(2 * i, 7)]
        assert list(enumerate_iterations(nest, {})) == expected


class TestOdometer:
    def test_first_iteration(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        assert odometer.first() == (0, 1)

    def test_first_of_empty_domain_is_none(self):
        odometer = Odometer(correlation_nest(), {"N": 1})
        assert odometer.first() is None

    def test_increment_within_row(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        assert odometer.increment((0, 1)) == (0, 2)

    def test_increment_carries_to_next_row(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        assert odometer.increment((0, 5)) == (1, 2)

    def test_increment_at_last_iteration_returns_none(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        assert odometer.increment((4, 5)) is None

    def test_increment_matches_figure4_code(self):
        """The odometer reproduces `j++; if (j>=N) { i++; j=i+1; }` exactly."""
        n = 8
        odometer = Odometer(correlation_nest(), {"N": n})
        i, j = 0, 1
        current = (0, 1)
        while True:
            j += 1
            if j >= n:
                i += 1
                j = i + 1
            expected = (i, j) if i < n - 1 else None
            current = odometer.increment(current)
            assert current == expected
            if current is None:
                break

    def test_depth_restricted_odometer(self):
        odometer = Odometer(figure6_nest(), {"N": 6}, depth=2)
        assert odometer.first() == (0, 0)
        assert odometer.increment((0, 0)) == (1, 0)
        assert odometer.increment((1, 1)) == (2, 0)

    def test_advance_steps(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        walked = odometer.first()
        for _ in range(4):
            walked = odometer.increment(walked)
        assert odometer.advance((0, 1), 4) == walked

    def test_advance_past_end_returns_none(self):
        odometer = Odometer(correlation_nest(), {"N": 3})
        assert odometer.advance((0, 1), 10) is None

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            Odometer(correlation_nest(), {"N": 5}, depth=3)

    def test_missing_parameters_rejected(self):
        with pytest.raises(ValueError):
            Odometer(correlation_nest(), {})

    def test_wrong_arity_increment_rejected(self):
        odometer = Odometer(correlation_nest(), {"N": 5})
        with pytest.raises(ValueError):
            odometer.increment((1, 2, 3))

    def test_bounds_helpers(self):
        odometer = Odometer(correlation_nest(), {"N": 6})
        assert odometer.lower_bound(1, (2,)) == 3
        assert odometer.upper_bound(1, (2,)) == 6


class TestOdometerAgainstEnumeration:
    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_walking_the_odometer_visits_every_iteration_in_order(self, n):
        nest = figure6_nest()
        odometer = Odometer(nest, {"N": n})
        walked = []
        current = odometer.first()
        while current is not None:
            walked.append(current)
            current = odometer.increment(current)
        assert walked == brute_force_figure6(n)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=7),
    skew=st.integers(min_value=0, max_value=2),
)
def test_property_odometer_walk_equals_nested_loops(n, skew):
    """For skewed trapezoidal nests the odometer walk equals the Python loops."""
    nest = LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", f"{skew}*i", f"N + {skew}*i")],
        parameters=["N"],
    )
    expected = [(i, j) for i in range(n) for j in range(skew * i, n + skew * i)]
    assert list(enumerate_iterations(nest, {"N": n})) == expected
