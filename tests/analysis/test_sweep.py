"""The conformance-sweep harness itself: scenarios, cells, gate, report.

The full matrix runs in ``benchmarks/bench_paper_sweep.py``; these tests
pin the *harness* semantics on a reduced matrix — scenario enumeration,
differential comparison (including that a wrong substrate is *caught*),
rank cross-checking, skip-vs-fail viability, and the report schema that
``REPORT_sweep.json``/``REPORT_sweep.md`` commit to.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.sweep import (
    BACKENDS,
    DEFAULT_SCHEDULES,
    SweepScenario,
    check_rank_conformance,
    default_flag_sets,
    default_scenarios,
    kernel_scenarios,
    run_sweep,
    transformed_scenarios,
)
from repro.ir import Loop, LoopNest, iteration_count
from repro.native import native_available


class TestScenarioEnumeration:
    def test_every_executable_kernel_is_a_scenario(self):
        from repro.kernels import executable_kernels

        names = {scenario.name for scenario in kernel_scenarios()}
        assert names == {kernel.name for kernel in executable_kernels()}

    def test_smoke_clamp_shrinks_extents_but_keeps_small_parameters(self):
        by_name = {s.name: s for s in kernel_scenarios(max_extent=16)}
        assert all(
            value <= 16 for s in by_name.values() for value in s.parameter_values.values()
        )
        # small structural parameters (rank-K update depth) survive the clamp
        assert by_name["cholesky_update"].parameter_values["K"] == 5

    def test_default_scenarios_include_one_tiled_and_one_skewed_nest(self):
        kinds = [scenario.kind for scenario in default_scenarios(max_extent=12)]
        assert kinds.count("skewed") == 1
        assert kinds.count("tiled") == 1
        assert kinds.count("kernel") == len(kernel_scenarios())

    def test_transformed_scenarios_are_executable_domains(self):
        """The nests enumerate, collapse, and the grid covers every index."""
        for scenario in transformed_scenarios(max_extent=12):
            total = iteration_count(scenario.nest, scenario.parameter_values)
            assert total > 0
            assert scenario.collapsed().total_iterations(scenario.parameter_values) == total
            reference = scenario.reference()  # raises IndexError if grid too small
            assert reference["grid"].sum() == total

    def test_flag_sets_always_contain_the_default_and_never_fast_math(self):
        sets = default_flag_sets()
        assert sets["default"] == ()
        assert not any("-ffast-math" in flags for flags in sets.values())


@pytest.fixture(scope="module")
def mini_report():
    """One reduced sweep shared by the gate/report tests below."""
    scenarios = [
        s for s in kernel_scenarios(max_extent=12) if s.name in ("utma", "ltmp")
    ] + transformed_scenarios(max_extent=12)
    return run_sweep(
        scenarios=scenarios,
        schedules=("static", "dynamic"),
        backends=("compiled", "engine", "native", "auto"),
        workers=2,
        repeats=1,
    )


class TestDifferentialGate:
    def test_mini_sweep_is_conformant(self, mini_report):
        assert mini_report.ok
        assert mini_report.mismatches == []

    def test_every_cell_ran_against_the_original_order(self, mini_report):
        expected_backends = {"compiled", "engine", "auto"}
        if native_available():
            expected_backends.add("native")
        for scenario in ("utma", "ltmp", "skewed_rect", "tiled_triangle"):
            for schedule in ("static", "dynamic"):
                ran = {
                    c["backend"]
                    for c in mini_report.cells
                    if c["scenario"] == scenario and c["schedule"] == schedule
                }
                assert ran == expected_backends, (scenario, schedule)

    def test_auto_cells_record_their_resolved_substrate(self, mini_report):
        auto_cells = [c for c in mini_report.cells if c["backend"] == "auto"]
        assert auto_cells
        assert all(
            c["resolved_backend"] in ("engine", "native", "hybrid") for c in auto_cells
        )

    def test_rank_checks_cover_every_scenario(self, mini_report):
        names = {check["scenario"] for check in mini_report.rank_checks}
        assert names == {"utma", "ltmp", "skewed_rect", "tiled_triangle"}
        assert all(check["ok"] for check in mini_report.rank_checks)

    def test_timings_and_gains_are_populated(self, mini_report):
        for cell in mini_report.cells:
            assert cell["seconds"] > 0.0
            assert cell["gain_vs_serial"] is not None  # static/compiled baseline ran

    @pytest.mark.skipif(not native_available(), reason="no C compiler on this machine")
    def test_a_lying_substrate_is_caught_not_raised(self):
        """The whole point of the gate: a substrate computing something
        different from the original order must surface as a recorded
        mismatch (and flip ``report.ok``), never pass silently."""
        scenario = transformed_scenarios(max_extent=8)[0]
        lying = SweepScenario(
            name="lying_rect",
            kind=scenario.kind,
            parameter_values=scenario.parameter_values,
            nest=scenario.nest,
            grid_shape=scenario.grid_shape,
            c_body="grid(t, x) += 2.0;",  # native disagrees with the Python op
        )
        report = run_sweep(
            scenarios=[lying], schedules=("static",), backends=("compiled", "native"),
            workers=2, repeats=1, flag_sets={"default": ()},
        )
        assert not report.ok
        assert [m["backend"] for m in report.mismatches] == ["native"]
        assert report.mismatches[0]["array"] == "grid"
        assert report.mismatches[0]["max_abs_diff"] == pytest.approx(1.0)

    @pytest.mark.skipif(not native_available(), reason="no C compiler on this machine")
    def test_a_crashing_substrate_is_a_recorded_failure(self):
        """A cell whose backend raises is a conformance failure with the
        error recorded — the sweep itself keeps going and the other
        substrates still report."""
        scenario = transformed_scenarios(max_extent=8)[0]
        broken = SweepScenario(
            name="broken_rect",
            kind=scenario.kind,
            parameter_values=scenario.parameter_values,
            nest=scenario.nest,
            grid_shape=scenario.grid_shape,
            c_body="this is not C;",  # native cell fails to compile
        )
        report = run_sweep(
            scenarios=[broken], schedules=("static",), backends=("compiled", "native"),
            workers=2, repeats=1, flag_sets={"default": ()},
        )
        assert not report.ok
        by_backend = {cell["backend"]: cell for cell in report.cells}
        assert by_backend["compiled"]["ok"] is True
        assert by_backend["native"]["ok"] is False
        assert "NativeUnavailable" in by_backend["native"]["error"]


class TestRankConformance:
    def test_kernel_ranks_agree_across_recovery_substrates(self):
        scenario = kernel_scenarios(max_extent=16)[0]
        check = check_rank_conformance(scenario, default_flag_sets())
        assert check["ok"]
        assert "scalar" in check["backends"] and "batch" in check["backends"]
        if native_available():
            assert any(b.startswith("native[") for b in check["backends"])
        assert check["probes"][0] == 1
        assert check["probes"][-1] == check["total_iterations"]


class TestReportSchema:
    def test_json_report_is_sorted_and_round_trips(self, mini_report, tmp_path):
        json_path = tmp_path / "REPORT_sweep.json"
        md_path = tmp_path / "REPORT_sweep.md"
        mini_report.write(json_path, md_path)

        loaded = json.loads(json_path.read_text())
        assert list(loaded) == sorted(loaded)  # top-level keys sorted
        assert loaded["summary"]["ok"] is True
        assert loaded["summary"]["cells"] == len(mini_report.cells)
        assert {s["name"] for s in loaded["config"]["scenarios"]} == {
            "utma", "ltmp", "skewed_rect", "tiled_triangle"
        }
        # byte-stable: re-serialising the loaded document reproduces the file
        assert json.dumps(loaded, indent=2, sort_keys=True) + "\n" == json_path.read_text()

    def test_markdown_report_carries_the_matrix(self, mini_report, tmp_path):
        md_path = tmp_path / "REPORT_sweep.md"
        mini_report.write(tmp_path / "r.json", md_path)
        text = md_path.read_text()
        assert "**PASS**" in text
        assert "| scenario" in text
        for name in ("utma", "ltmp", "skewed_rect", "tiled_triangle"):
            assert name in text

    def test_table_renders_without_mismatch_banner_when_clean(self, mini_report):
        table = mini_report.table()
        assert "zero mismatches" in table
        assert "MISMATCH" not in table.replace("zero mismatches", "")

    def test_axes_constants_cover_the_paper_matrix(self):
        assert BACKENDS == ("compiled", "engine", "native", "hybrid", "auto")
        assert DEFAULT_SCHEDULES == ("static", "dynamic", "adaptive")
