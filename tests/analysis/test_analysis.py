"""Tests for load-balance metrics, the gain formula and the overhead model."""

import pytest

from repro.analysis import (
    GainRow,
    OverheadRow,
    format_table,
    gain,
    gain_table,
    iteration_distribution,
    load_balance_report,
    recovery_overhead,
)
from repro.analysis.loadbalance import report_from_simulation
from repro.core import collapse
from repro.ir import Loop, LoopNest
from repro.openmp import CostModel, RecoveryCosts, simulate_outer_parallel


@pytest.fixture
def correlation_nest():
    return LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N"), Loop.make("k", 0, "N")],
        parameters=["N"],
        name="correlation",
    )


@pytest.fixture
def covariance_like_nest():
    # the whole nest is collapsed: one statement per collapsed iteration
    return LoopNest(
        [Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
        parameters=["N"],
        name="covariance",
    )


class TestGain:
    def test_formula(self):
        assert gain(10.0, 5.0) == pytest.approx(0.5)
        assert gain(10.0, 10.0) == 0.0
        assert gain(10.0, 12.0) == pytest.approx(-0.2)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            gain(0.0, 1.0)

    def test_gain_row_properties(self):
        row = GainRow(program="corr", time_static=100.0, time_dynamic=80.0, time_collapsed=50.0)
        assert row.gain_vs_static == pytest.approx(0.5)
        assert row.gain_vs_dynamic == pytest.approx(0.375)

    def test_gain_table_has_six_columns(self):
        rows = gain_table([GainRow("corr", 100.0, 80.0, 50.0)])
        assert len(rows) == 1 and len(rows[0]) == 6
        assert rows[0][0] == "corr"


class TestLoadBalance:
    def test_figure2_distribution_is_decreasing(self, correlation_nest):
        """Fig. 2: under a static split of the outer loop, earlier threads get
        more work than later ones on a triangular domain."""
        loads = iteration_distribution(correlation_nest, {"N": 100}, threads=5)
        assert len(loads) == 5
        assert loads == sorted(loads, reverse=True)
        assert loads[0] > 1.5 * loads[-1]

    def test_report_metrics(self):
        report = load_balance_report([4.0, 2.0, 2.0])
        assert report.max_load == 4.0
        assert report.mean_load == pytest.approx(8.0 / 3)
        assert report.imbalance == pytest.approx(1.5)
        assert report.spread == pytest.approx(2.0)

    def test_report_empty(self):
        report = load_balance_report([])
        assert report.imbalance == 1.0

    def test_report_from_simulation(self, correlation_nest):
        result = simulate_outer_parallel(correlation_nest, {"N": 60}, 6)
        report = report_from_simulation(result)
        assert report.max_load == pytest.approx(result.makespan)

    def test_total_work_is_preserved_by_distribution(self, correlation_nest):
        loads = iteration_distribution(correlation_nest, {"N": 50}, threads=7)
        model = CostModel(correlation_nest)
        assert sum(loads) == pytest.approx(model.total_work({"N": 50}))


class TestOverhead:
    def test_overhead_row_formula(self):
        row = OverheadRow("corr", serial_original=100.0, serial_transformed=103.0, recoveries=12)
        assert row.overhead == pytest.approx(0.03)

    def test_deep_kernels_have_negligible_overhead(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        row = recovery_overhead(collapsed, {"N": 300})
        assert 0 <= row.overhead < 0.01

    def test_fully_collapsed_kernels_have_visible_overhead(self, covariance_like_nest):
        """Fig. 10: covariance/symm-style nests (everything collapsed) pay the
        extra control on every statement instance."""
        collapsed = collapse(covariance_like_nest, 2)
        row = recovery_overhead(collapsed, {"N": 300})
        assert row.overhead > 0.01

    def test_overhead_still_far_below_parallel_gain(self, covariance_like_nest):
        collapsed = collapse(covariance_like_nest, 2)
        row = recovery_overhead(collapsed, {"N": 300})
        assert row.overhead < 0.10

    def test_recovery_count_scales_overhead(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        few = recovery_overhead(collapsed, {"N": 100}, recoveries=1)
        many = recovery_overhead(collapsed, {"N": 100}, recoveries=48)
        assert many.overhead > few.overhead

    def test_custom_cost_model(self, correlation_nest):
        collapsed = collapse(correlation_nest, 2)
        expensive = CostModel(correlation_nest, RecoveryCosts(costly_recovery=10_000.0))
        row = recovery_overhead(collapsed, {"N": 100}, cost_model=expensive)
        assert row.overhead > recovery_overhead(collapsed, {"N": 100}).overhead


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["program", "gain"], [["corr", "+47%"], ["utma", "+39%"]], title="Fig. 9")
        assert "Fig. 9" in text
        assert "program" in text and "corr" in text
        lines = text.splitlines()
        assert len(lines) == 5

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_alignment_pads_cells(self):
        text = format_table(["name", "x"], [["longest-name", "1"], ["s", "2"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])
