"""The documentation link check (also run as a dedicated CI step).

Two invariants keep the docs navigable as they grow:

* no dead relative links — every ``[text](relative/path)`` in the README
  and under ``docs/`` must point at a file that exists in the repository;
* no orphan documents — every ``docs/*.md`` must be reachable from the
  ``docs/README.md`` table of contents (transitively), and the top-level
  README must link into ``docs/``.

External (``http...``) and pure-anchor (``#...``) links are out of scope —
this is a repository-consistency check, not a crawler.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

#: markdown inline links, excluding images; good enough for our own docs
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def _relative_links(markdown_file: Path):
    for match in _LINK_RE.finditer(markdown_file.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def _documentation_files():
    return [REPO_ROOT / "README.md", *sorted(DOCS_DIR.glob("*.md"))]


def test_docs_directory_has_an_index():
    assert (DOCS_DIR / "README.md").is_file(), "docs/README.md (the TOC) is missing"


def test_no_dead_relative_links():
    dead = []
    for markdown_file in _documentation_files():
        for target in _relative_links(markdown_file):
            if not (markdown_file.parent / target).exists():
                dead.append(f"{markdown_file.relative_to(REPO_ROOT)} -> {target}")
    assert not dead, "dead relative links:\n" + "\n".join(dead)


def test_every_doc_is_reachable_from_the_docs_index():
    """BFS over relative links from docs/README.md must cover docs/*.md."""
    index = DOCS_DIR / "README.md"
    seen = {index.resolve()}
    frontier = [index]
    while frontier:
        current = frontier.pop()
        for target in _relative_links(current):
            resolved = (current.parent / target).resolve()
            if resolved.suffix == ".md" and resolved.is_file() and resolved not in seen:
                seen.add(resolved)
                frontier.append(resolved)
    orphans = [
        path.name for path in sorted(DOCS_DIR.glob("*.md")) if path.resolve() not in seen
    ]
    assert not orphans, f"docs not reachable from docs/README.md: {orphans}"


def test_top_level_readme_links_into_docs():
    targets = set(_relative_links(REPO_ROOT / "README.md"))
    assert any(target.startswith("docs/") for target in targets)
    assert "docs/README.md" in targets, "README must link the docs index"
