"""Exact symbolic algebra used by the loop-collapsing pipeline.

This subpackage is the stand-in for the computer-algebra tooling the paper
relies on (Maxima for symbolic roots, ISL/barvinok for counting).  It
provides:

* :mod:`repro.symbolic.monomial` / :mod:`repro.symbolic.polynomial` —
  multivariate polynomials with exact rational (``fractions.Fraction``)
  coefficients, the representation of ranking Ehrhart polynomials.
* :mod:`repro.symbolic.univariate` — a univariate view of a multivariate
  polynomial (coefficients are themselves polynomials in the remaining
  variables), plus numeric helpers.
* :mod:`repro.symbolic.summation` — Bernoulli/Faulhaber closed-form
  summation, the engine behind Ehrhart counting and ranking polynomials.
* :mod:`repro.symbolic.expression` — radical expression trees (sqrt, cube
  roots, arbitrary rational powers) with complex-aware evaluation and
  printers to Python and C99 (``csqrt`` / ``cpow`` / ``creal``).
* :mod:`repro.symbolic.solve` — exact symbolic root formulas for univariate
  polynomial equations of degree 1 to 4 (linear, quadratic, Cardano,
  Ferrari), the inversion engine of Section IV of the paper.
* :mod:`repro.symbolic.compile` — lambdify-style compilation of expressions
  and polynomials into straight-line Python callables, with an optional
  NumPy mode that evaluates whole chunks of values per call (the engine of
  the batch recovery fast path).
"""

from .monomial import Monomial
from .polynomial import Polynomial, Q
from .univariate import UnivariatePolynomial
from .summation import bernoulli_number, faulhaber_polynomial, sum_over_range
from .expression import (
    Expr,
    Const,
    Var,
    Add,
    Mul,
    Pow,
    Floor,
    RealPart,
    expr_from_polynomial,
    simplify,
)
from .solve import solve_univariate_symbolic, SolveError
from .compile import (
    CompileError,
    CompiledExpr,
    CompiledPolynomial,
    compile_expr,
    compile_polynomial,
)

__all__ = [
    "Monomial",
    "Polynomial",
    "Q",
    "UnivariatePolynomial",
    "bernoulli_number",
    "faulhaber_polynomial",
    "sum_over_range",
    "Expr",
    "Const",
    "Var",
    "Add",
    "Mul",
    "Pow",
    "Floor",
    "RealPart",
    "expr_from_polynomial",
    "simplify",
    "solve_univariate_symbolic",
    "SolveError",
    "CompileError",
    "CompiledExpr",
    "CompiledPolynomial",
    "compile_expr",
    "compile_polynomial",
]
