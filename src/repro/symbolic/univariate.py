"""Univariate view of multivariate polynomials.

The symbolic inversion of Section IV of the paper repeatedly treats the
ranking polynomial as a *univariate* polynomial in one index, whose
coefficients are polynomials in the outer indices, the parameters and the
collapsed iterator ``pc``.  :class:`UnivariatePolynomial` captures exactly
that view and adds the numeric utilities the unranker needs (evaluation,
derivative, real-root bracketing via bisection).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Sequence

from .polynomial import Polynomial, Q


class UnivariatePolynomial:
    """``sum_k coefficient[k] * main_var**k`` with polynomial coefficients."""

    __slots__ = ("main_var", "_coefficients")

    def __init__(self, main_var: str, coefficients: Mapping[int, Polynomial] | Sequence[Polynomial]):
        self.main_var = main_var
        coeffs: Dict[int, Polynomial] = {}
        if isinstance(coefficients, Mapping):
            items = coefficients.items()
        else:
            items = enumerate(coefficients)
        for power, poly in items:
            if not isinstance(power, int) or power < 0:
                raise ValueError(f"invalid power {power!r}")
            poly = poly if isinstance(poly, Polynomial) else Polynomial.constant(poly)
            if poly.degree_in(main_var) > 0:
                raise ValueError(f"coefficient of {main_var}^{power} still contains {main_var}")
            if not poly.is_zero():
                coeffs[power] = poly
        self._coefficients = coeffs

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_polynomial(poly: Polynomial, main_var: str) -> "UnivariatePolynomial":
        """Regroup a multivariate polynomial by the powers of ``main_var``."""
        return UnivariatePolynomial(main_var, poly.coefficients_in(main_var))

    def to_polynomial(self) -> Polynomial:
        """Expand back into a flat multivariate polynomial."""
        result = Polynomial.zero()
        x = Polynomial.variable(self.main_var)
        for power, coefficient in self._coefficients.items():
            result = result + coefficient * (x ** power)
        return result

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def degree(self) -> int:
        """Degree in the main variable (0 for the zero polynomial)."""
        return max(self._coefficients, default=0)

    def coefficient(self, power: int) -> Polynomial:
        """Coefficient polynomial of ``main_var**power`` (zero when absent)."""
        return self._coefficients.get(power, Polynomial.zero())

    def coefficients_list(self) -> List[Polynomial]:
        """Dense list ``[c0, c1, ..., c_degree]``."""
        return [self.coefficient(k) for k in range(self.degree + 1)]

    def leading_coefficient(self) -> Polynomial:
        return self.coefficient(self.degree)

    def other_variables(self) -> frozenset:
        names: set = set()
        for poly in self._coefficients.values():
            names |= poly.variables()
        return frozenset(names)

    def is_zero(self) -> bool:
        return not self._coefficients

    # ------------------------------------------------------------------ #
    # arithmetic and calculus
    # ------------------------------------------------------------------ #
    def derivative(self) -> "UnivariatePolynomial":
        """Derivative with respect to the main variable."""
        coeffs: Dict[int, Polynomial] = {}
        for power, coefficient in self._coefficients.items():
            if power > 0:
                coeffs[power - 1] = coefficient * power
        return UnivariatePolynomial(self.main_var, coeffs)

    def substitute_coefficients(self, assignment: Mapping[str, object]) -> "UnivariatePolynomial":
        """Instantiate the *coefficient* variables, keeping the main variable symbolic."""
        coeffs = {
            power: Polynomial.constant(_to_fraction(coefficient.evaluate(assignment)))
            for power, coefficient in self._coefficients.items()
        }
        return UnivariatePolynomial(self.main_var, coeffs)

    def evaluate(self, value, assignment: Mapping[str, object] | None = None):
        """Evaluate at ``main_var = value`` with the remaining variables from ``assignment``."""
        assignment = dict(assignment or {})
        total = 0
        for power, coefficient in sorted(self._coefficients.items()):
            total = total + coefficient.evaluate(assignment) * (value ** power)
        return total

    # ------------------------------------------------------------------ #
    # numeric root helpers (used by the fallback unranker and tests)
    # ------------------------------------------------------------------ #
    def numeric_coefficients(self, assignment: Mapping[str, object]) -> List[Fraction]:
        """Exact numeric coefficients after instantiating the other variables."""
        values = []
        for power in range(self.degree + 1):
            value = self.coefficient(power).evaluate(assignment)
            values.append(value if isinstance(value, Fraction) else Fraction(value))
        return values

    def bisect_root(
        self,
        low: int,
        high: int,
        assignment: Mapping[str, object],
    ) -> int:
        """Largest integer ``x`` in ``[low, high]`` with ``p(x) <= 0``.

        Requires ``p`` to be monotonically increasing over ``[low, high]``
        (which ranking polynomials minus ``pc`` are, along each index).  This
        is the exact-arithmetic fallback unranker used for degrees above 4
        and as a correctness oracle in tests.
        """
        if low > high:
            raise ValueError(f"empty bracket [{low}, {high}]")
        if self.evaluate(low, assignment) > 0:
            raise ValueError("no root in bracket: p(low) > 0")
        lo, hi = low, high
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.evaluate(mid, assignment) <= 0:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def __str__(self) -> str:
        if not self._coefficients:
            return "0"
        parts = []
        for power in sorted(self._coefficients, reverse=True):
            coefficient = self._coefficients[power]
            if power == 0:
                parts.append(f"({coefficient})")
            elif power == 1:
                parts.append(f"({coefficient})*{self.main_var}")
            else:
                parts.append(f"({coefficient})*{self.main_var}^{power}")
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"UnivariatePolynomial[{self.main_var}]({self})"


def _to_fraction(value) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected exact value, got {type(value).__name__}")
