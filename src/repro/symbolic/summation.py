"""Closed-form symbolic summation (Faulhaber / Bernoulli).

Ehrhart counting for the affine loop model of the paper (Fig. 5) reduces to
nested sums of polynomials over parametric integer ranges::

    count = sum_{i1=l1}^{u1-1} sum_{i2=l2(i1)}^{u2(i1)-1} ... 1

Each inner sum of a polynomial in the summation variable has a closed form
obtained from the Faulhaber formulas, which in turn follow from the Bernoulli
numbers.  This module provides exactly that machinery with exact rational
arithmetic, so the resulting Ehrhart and ranking polynomials are exact.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import comb
from typing import Dict

from .polynomial import Polynomial, Q


@lru_cache(maxsize=None)
def bernoulli_number(n: int) -> Fraction:
    """The Bernoulli number ``B_n`` with the ``B_1 = +1/2`` convention.

    The ``+1/2`` convention makes the Faulhaber formula below give the
    *inclusive* sum ``sum_{x=0}^{n} x^k`` directly.  Computed with the
    standard recurrence ``sum_{j=0}^{m} C(m+1, j) B_j = m + 1`` (for the
    ``B_1 = -1/2`` convention) and then sign-adjusted.
    """
    if n < 0:
        raise ValueError("Bernoulli numbers are defined for n >= 0")
    minus = _bernoulli_minus(n)
    if n == 1:
        return -minus
    return minus


@lru_cache(maxsize=None)
def _bernoulli_minus(n: int) -> Fraction:
    """Bernoulli numbers with the classical ``B_1 = -1/2`` convention."""
    if n == 0:
        return Fraction(1)
    total = Fraction(0)
    for j in range(n):
        total += Fraction(comb(n + 1, j)) * _bernoulli_minus(j)
    return -total / (n + 1)


@lru_cache(maxsize=None)
def faulhaber_polynomial(power: int, variable: str = "n") -> Polynomial:
    """Closed form of ``S_power(n) = sum_{x=0}^{n} x**power`` as a polynomial in ``n``.

    Uses Faulhaber's formula
    ``S_k(n) = (1/(k+1)) * sum_{j=0}^{k} C(k+1, j) * B_j^+ * n^(k+1-j)``
    with the ``B_1 = +1/2`` Bernoulli convention, which yields the inclusive
    upper bound directly (``S_0(n) = n + 1`` is handled explicitly since the
    formula above gives ``n`` for ``k = 0`` under the usual conventions).
    """
    if power < 0:
        raise ValueError("power must be non-negative")
    n = Polynomial.variable(variable)
    if power == 0:
        # sum_{x=0}^{n} 1 = n + 1
        return n + 1
    result = Polynomial.zero()
    for j in range(power + 1):
        coefficient = Fraction(comb(power + 1, j)) * bernoulli_number(j)
        if coefficient != 0:
            result = result + Polynomial.constant(coefficient) * (n ** (power + 1 - j))
    return result / (power + 1)


def sum_power_between(power: int, lower: Polynomial, upper: Polynomial) -> Polynomial:
    """Closed form of ``sum_{x=lower}^{upper} x**power`` with polynomial bounds.

    The result equals ``S_power(upper) - S_power(lower - 1)``; it is the
    correct count whenever ``upper >= lower - 1`` (an empty range,
    ``upper = lower - 1``, correctly yields zero).  For ``upper < lower - 1``
    the closed form extrapolates (it may go negative), which mirrors the
    standard Ehrhart-polynomial validity condition that the domain must be
    non-degenerate.
    """
    aux = "__faulhaber_n"
    closed = faulhaber_polynomial(power, aux)
    upper_part = closed.substitute({aux: upper})
    lower_part = closed.substitute({aux: lower - 1})
    return upper_part - lower_part


def sum_over_range(
    summand: Polynomial,
    variable: str,
    lower: Polynomial | int,
    upper: Polynomial | int,
) -> Polynomial:
    """Closed form of ``sum_{variable=lower}^{upper} summand``.

    ``summand`` may involve ``variable`` as well as any other symbols;
    ``lower`` and ``upper`` are polynomials in other symbols (they must not
    involve ``variable`` itself).  The sum is *inclusive* of both bounds, so
    the trip count of ``for (x = l; x < u; x++)`` is
    ``sum_over_range(1, x, l, u - 1)``.
    """
    lower = lower if isinstance(lower, Polynomial) else Polynomial.constant(lower)
    upper = upper if isinstance(upper, Polynomial) else Polynomial.constant(upper)
    if variable in lower.variables() or variable in upper.variables():
        raise ValueError(f"summation bounds must not involve the summation variable {variable!r}")

    grouped: Dict[int, Polynomial] = summand.coefficients_in(variable)
    result = Polynomial.zero()
    for power, coefficient in grouped.items():
        result = result + coefficient * sum_power_between(power, lower, upper)
    return result


def nested_sum(ordered_bounds, summand: Polynomial | int = 1) -> Polynomial:
    """Sum ``summand`` over a whole nest of inclusive parametric ranges.

    ``ordered_bounds`` is a sequence of ``(variable, lower, upper)`` triples
    listed from the *outermost* to the *innermost* dimension; inner bounds
    may reference outer variables.  The summation is performed from the
    innermost range outwards, mirroring how Ehrhart counting of a loop nest
    proceeds.
    """
    result = summand if isinstance(summand, Polynomial) else Polynomial.constant(summand)
    for variable, lower, upper in reversed(list(ordered_bounds)):
        result = sum_over_range(result, variable, lower, upper)
    return result
