"""Exact symbolic root formulas for univariate polynomial equations.

Section IV-B of the paper restricts automatic collapsing to ranking
polynomials whose per-index degree is at most 4, precisely because only
degrees up to 4 admit closed-form radical solutions.  The paper delegates
this step to the Maxima computer-algebra system; this module implements the
same closed forms directly:

* degree 1 — trivial division,
* degree 2 — quadratic formula,
* degree 3 — Cardano's formula (the form used in Figure 7 of the paper,
  with complex cube roots so transiently-complex radicands are handled),
* degree 4 — Ferrari's method via the resolvent cubic.

Coefficients may be arbitrary :class:`~repro.symbolic.polynomial.Polynomial`
objects (they typically involve outer loop indices, size parameters and the
collapsed iterator ``pc``); the returned roots are
:class:`~repro.symbolic.expression.Expr` trees that evaluate through complex
arithmetic.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Union

from .expression import Add, Const, Expr, Mul, Pow, Var, expr_from_polynomial, simplify
from .polynomial import Polynomial
from .univariate import UnivariatePolynomial

CoefficientLike = Union[Polynomial, Expr, int, Fraction]


class SolveError(ValueError):
    """Raised when an equation cannot be solved symbolically (degree 0 or > 4)."""


def _as_expr(value: CoefficientLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, Polynomial):
        return expr_from_polynomial(value)
    if isinstance(value, (int, Fraction)):
        return Const(Fraction(value))
    raise TypeError(f"unsupported coefficient type {type(value).__name__}")


def _sqrt(expr: Expr) -> Expr:
    return Pow(expr, Fraction(1, 2))


def _cbrt(expr: Expr) -> Expr:
    return Pow(expr, Fraction(1, 3))


def solve_linear(coefficients: Sequence[CoefficientLike]) -> List[Expr]:
    """Root of ``c0 + c1*x = 0``."""
    c0, c1 = (_as_expr(c) for c in coefficients[:2])
    return [simplify(Mul((Const(Fraction(-1)), c0, Pow(c1, Fraction(-1)))))]


def solve_quadratic(coefficients: Sequence[CoefficientLike]) -> List[Expr]:
    """Both roots of ``c0 + c1*x + c2*x**2 = 0`` via the quadratic formula."""
    c0, c1, c2 = (_as_expr(c) for c in coefficients[:3])
    discriminant = Add((Mul((c1, c1)), Mul((Const(Fraction(-4)), c2, c0))))
    sqrt_disc = _sqrt(discriminant)
    denom = Pow(Mul((Const(Fraction(2)), c2)), Fraction(-1))
    root_plus = Mul((Add((Mul((Const(Fraction(-1)), c1)), sqrt_disc)), denom))
    root_minus = Mul((Add((Mul((Const(Fraction(-1)), c1)), Mul((Const(Fraction(-1)), sqrt_disc)))), denom))
    return [simplify(root_plus), simplify(root_minus)]


#: The primitive cube root of unity, written with an explicitly complex radical
#: so that the generated code never calls a real ``sqrt`` on a negative value.
_OMEGA = Mul((Const(Fraction(1, 2)), Add((Const(Fraction(-1)), _sqrt(Const(Fraction(-3)))))))
_OMEGA2 = Mul(
    (Const(Fraction(1, 2)), Add((Const(Fraction(-1)), Mul((Const(Fraction(-1)), _sqrt(Const(Fraction(-3))))))))
)


def _as_polynomial_or_none(value: CoefficientLike) -> Polynomial | None:
    if isinstance(value, Polynomial):
        return value
    if isinstance(value, (int, Fraction)):
        return Polynomial.constant(value)
    return None


def solve_cubic(coefficients: Sequence[CoefficientLike]) -> List[Expr]:
    """All three roots of ``c0 + c1*x + c2*x**2 + c3*x**3 = 0`` (Cardano).

    Uses the standard discriminant-based closed form::

        D0 = c2^2 - 3 c3 c1
        D1 = 2 c2^3 - 9 c3 c2 c1 + 27 c3^2 c0
        C  = cbrt((D1 + sqrt(D1^2 - 4 D0^3)) / 2)
        x_k = -(c2 + w^k C + D0 / (w^k C)) / (3 c3),  k = 0, 1, 2

    with ``w`` the primitive cube root of unity.  All radicals are complex,
    so the degenerate-looking cases (negative discriminant) evaluate to the
    right real values, as discussed in Section IV-C of the paper.

    When the coefficients are exact polynomials, the degenerate cases
    ``D0 = 0`` (where the generic formula would divide by a vanishing cube
    root) and ``D0 = D1 = 0`` (triple root) are detected symbolically and
    replaced by the appropriate specialised closed forms.
    """
    c0, c1, c2, c3 = (_as_expr(c) for c in coefficients[:4])
    polys = [_as_polynomial_or_none(c) for c in coefficients[:4]]

    d0: Expr
    d1: Expr
    d0_is_zero = d1_is_zero = False
    if all(p is not None for p in polys):
        p0, p1, p2, p3 = polys  # type: ignore[misc]
        d0_poly = p2 * p2 - 3 * p3 * p1
        d1_poly = 2 * p2 ** 3 - 9 * p3 * p2 * p1 + 27 * p3 * p3 * p0
        d0_is_zero, d1_is_zero = d0_poly.is_zero(), d1_poly.is_zero()
        d0 = expr_from_polynomial(d0_poly)
        d1 = expr_from_polynomial(d1_poly)
    else:
        d0 = Add((Mul((c2, c2)), Mul((Const(Fraction(-3)), c3, c1))))
        d1 = Add(
            (
                Mul((Const(Fraction(2)), c2, c2, c2)),
                Mul((Const(Fraction(-9)), c3, c2, c1)),
                Mul((Const(Fraction(27)), c3, c3, c0)),
            )
        )

    inverse_3a = Mul((Const(Fraction(-1, 3)), Pow(c3, Fraction(-1))))

    if d0_is_zero and d1_is_zero:
        # triple root  x = -c2 / (3 c3)
        root = simplify(Mul((inverse_3a, c2)))
        return [root, root, root]

    if d0_is_zero:
        # With D0 = 0 the resolvent gives C^3 = D1 and the D0/C term vanishes.
        big_c = _cbrt(d1)
        roots = []
        for unit in (Const(Fraction(1)), _OMEGA, _OMEGA2):
            roots.append(simplify(Mul((inverse_3a, Add((c2, Mul((unit, big_c))))))))
        return roots

    inner = Add((Mul((d1, d1)), Mul((Const(Fraction(-4)), d0, d0, d0))))
    big_c = _cbrt(Mul((Const(Fraction(1, 2)), Add((d1, _sqrt(inner))))))

    roots: List[Expr] = []
    for unit in (Const(Fraction(1)), _OMEGA, _OMEGA2):
        rotated = Mul((unit, big_c))
        term = Add((c2, rotated, Mul((d0, Pow(rotated, Fraction(-1))))))
        root = Mul((Const(Fraction(-1, 3)), term, Pow(c3, Fraction(-1))))
        roots.append(simplify(root))
    return roots


def solve_quartic(coefficients: Sequence[CoefficientLike]) -> List[Expr]:
    """Candidate roots of ``c0 + ... + c4*x**4 = 0`` (Ferrari's method).

    Closed form through the resolvent cubic::

        p  = (8 c4 c2 - 3 c3^2) / (8 c4^2)
        q  = (c3^3 - 4 c4 c3 c2 + 8 c4^2 c1) / (8 c4^3)
        D0 = c2^2 - 3 c3 c1 + 12 c4 c0
        D1 = 2 c2^3 - 9 c3 c2 c1 + 27 c3^2 c0 + 27 c4 c1^2 - 72 c4 c2 c0
        Qc = w^m * cbrt((D1 + sqrt(D1^2 - 4 D0^3)) / 2)      (m = 0, 1, 2)
        S  = sqrt(-2p/3 + (Qc + D0/Qc) / (3 c4)) / 2
        x  = -c3/(4 c4) + s1*S + s2 * sqrt(-4S^2 - 2p - s1*q/S) / 2

    for the four sign combinations ``(s1, s2)``.

    Ferrari's parametrisation degenerates when the chosen cube root makes
    ``S`` vanish, so the function returns the candidates for *all three* cube
    roots of the resolvent quantity (up to 12 expressions; any choice with
    ``S != 0`` yields the four true roots).  The unranking step selects the
    convenient candidate by validation, exactly as it already has to select
    among the four sign branches, so the redundancy is harmless.
    """
    c0, c1, c2, c3, c4 = (_as_expr(c) for c in coefficients[:5])
    half = Const(Fraction(1, 2))
    p = Mul(
        (
            Add((Mul((Const(Fraction(8)), c4, c2)), Mul((Const(Fraction(-3)), c3, c3)))),
            Pow(Mul((Const(Fraction(8)), c4, c4)), Fraction(-1)),
        )
    )
    q = Mul(
        (
            Add(
                (
                    Mul((c3, c3, c3)),
                    Mul((Const(Fraction(-4)), c4, c3, c2)),
                    Mul((Const(Fraction(8)), c4, c4, c1)),
                )
            ),
            Pow(Mul((Const(Fraction(8)), c4, c4, c4)), Fraction(-1)),
        )
    )
    d0 = Add((Mul((c2, c2)), Mul((Const(Fraction(-3)), c3, c1)), Mul((Const(Fraction(12)), c4, c0))))
    d1 = Add(
        (
            Mul((Const(Fraction(2)), c2, c2, c2)),
            Mul((Const(Fraction(-9)), c3, c2, c1)),
            Mul((Const(Fraction(27)), c3, c3, c0)),
            Mul((Const(Fraction(27)), c4, c1, c1)),
            Mul((Const(Fraction(-72)), c4, c2, c0)),
        )
    )
    qc_principal = _cbrt(
        Mul((half, Add((d1, _sqrt(Add((Mul((d1, d1)), Mul((Const(Fraction(-4)), d0, d0, d0)))))))))
    )
    base = Mul((Const(Fraction(-1, 4)), c3, Pow(c4, Fraction(-1))))

    roots: List[Expr] = []
    for unit in (Const(Fraction(1)), _OMEGA, _OMEGA2):
        qc = Mul((unit, qc_principal))
        s = Mul(
            (
                half,
                _sqrt(
                    Add(
                        (
                            Mul((Const(Fraction(-2, 3)), p)),
                            Mul(
                                (
                                    Const(Fraction(1, 3)),
                                    Pow(c4, Fraction(-1)),
                                    Add((qc, Mul((d0, Pow(qc, Fraction(-1)))))),
                                )
                            ),
                        )
                    )
                ),
            )
        )
        for s1 in (Fraction(1), Fraction(-1)):
            radicand = Add(
                (
                    Mul((Const(Fraction(-4)), s, s)),
                    Mul((Const(Fraction(-2)), p)),
                    Mul((Const(-s1), q, Pow(s, Fraction(-1)))),
                )
            )
            tail = Mul((half, _sqrt(radicand)))
            for s2 in (Fraction(1), Fraction(-1)):
                root = Add((base, Mul((Const(s1), s)), Mul((Const(s2), tail))))
                roots.append(simplify(root))
    return roots


def solve_univariate_symbolic(poly: UnivariatePolynomial) -> List[Expr]:
    """Symbolic roots of ``poly(main_var) = 0`` for degrees 1 through 4.

    The coefficients of ``poly`` (polynomials in the remaining variables)
    become symbolic sub-expressions of the returned roots.  Raises
    :class:`SolveError` for degree 0 or degree greater than 4 — the same
    limitation as the paper's method (Section IV-B); callers fall back to the
    exact bisection unranker in that case.
    """
    degree = poly.degree
    coefficients = poly.coefficients_list()
    if degree == 0:
        raise SolveError("cannot solve a constant equation for the loop index")
    if degree == 1:
        return solve_linear(coefficients)
    if degree == 2:
        return solve_quadratic(coefficients)
    if degree == 3:
        return solve_cubic(coefficients)
    if degree == 4:
        return solve_quartic(coefficients)
    raise SolveError(
        f"degree {degree} has no general radical solution; "
        "the paper's method is limited to per-index degree <= 4 (Section IV-B)"
    )
