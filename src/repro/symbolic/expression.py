"""Radical expression trees with complex-aware evaluation.

The closed-form roots of ranking polynomials (Section IV of the paper)
involve square roots, cube roots and rational powers whose intermediate
values may transiently be complex even though the final index value is a
plain integer (Section IV-C: "the selection of the convenient root must not
be done relatively to its type ... the indices should be computed by using
complex variables").  This module provides a small immutable expression tree
that:

* is built symbolically from polynomials, rationals and radicals,
* evaluates numerically through Python ``complex`` arithmetic,
* prints to Python source (``cmath``-based) and to C99 source
  (``csqrt`` / ``cpow`` / ``creal`` exactly as in Figure 7 of the paper).
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence, Tuple, Union

from .polynomial import Polynomial

Number = Union[int, float, complex, Fraction]


class Expr:
    """Base class of all expression nodes.  Instances are immutable."""

    # -- operator sugar -------------------------------------------------- #
    def __add__(self, other) -> "Expr":
        return Add((self, _coerce(other)))

    def __radd__(self, other) -> "Expr":
        return Add((_coerce(other), self))

    def __sub__(self, other) -> "Expr":
        return Add((self, Mul((Const(Fraction(-1)), _coerce(other)))))

    def __rsub__(self, other) -> "Expr":
        return Add((_coerce(other), Mul((Const(Fraction(-1)), self))))

    def __mul__(self, other) -> "Expr":
        return Mul((self, _coerce(other)))

    def __rmul__(self, other) -> "Expr":
        return Mul((_coerce(other), self))

    def __truediv__(self, other) -> "Expr":
        return Mul((self, Pow(_coerce(other), Fraction(-1))))

    def __rtruediv__(self, other) -> "Expr":
        return Mul((_coerce(other), Pow(self, Fraction(-1))))

    def __neg__(self) -> "Expr":
        return Mul((Const(Fraction(-1)), self))

    def __pow__(self, exponent) -> "Expr":
        if isinstance(exponent, (int, Fraction)):
            return Pow(self, Fraction(exponent))
        raise TypeError("expression exponents must be exact rationals")

    # -- interface ------------------------------------------------------- #
    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        """Numerically evaluate the expression, always through ``complex``."""
        raise NotImplementedError

    def variables(self) -> frozenset:
        raise NotImplementedError

    def to_python(self) -> str:
        """Python source (expects ``import cmath`` in the generated module)."""
        raise NotImplementedError

    def to_c(self) -> str:
        """C99 source using ``<complex.h>`` functions (``csqrt``, ``cpow``)."""
        raise NotImplementedError


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, Fraction)):
        return Const(Fraction(value))
    if isinstance(value, Polynomial):
        return expr_from_polynomial(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")


@dataclass(frozen=True)
class Const(Expr):
    """An exact rational constant."""

    value: Fraction

    def __post_init__(self):
        object.__setattr__(self, "value", Fraction(self.value))

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        return complex(self.value)

    def variables(self) -> frozenset:
        return frozenset()

    def to_python(self) -> str:
        if self.value.denominator == 1:
            return f"({self.value.numerator})"
        return f"({self.value.numerator} / {self.value.denominator})"

    def to_c(self) -> str:
        if self.value.denominator == 1:
            return f"({self.value.numerator}.0)"
        return f"({self.value.numerator}.0 / {self.value.denominator}.0)"

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A free variable (a loop index, a size parameter or ``pc``)."""

    name: str

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        if self.name not in assignment:
            raise KeyError(f"no value supplied for variable {self.name!r}")
        return complex(assignment[self.name])

    def variables(self) -> frozenset:
        return frozenset({self.name})

    def to_python(self) -> str:
        return self.name

    def to_c(self) -> str:
        return f"(double){self.name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Expr):
    """A sum of two or more sub-expressions."""

    operands: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.operands) < 1:
            raise ValueError("Add needs at least one operand")

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        total = 0j
        for operand in self.operands:
            total += operand.evaluate(assignment)
        return total

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def to_python(self) -> str:
        return "(" + " + ".join(op.to_python() for op in self.operands) + ")"

    def to_c(self) -> str:
        return "(" + " + ".join(op.to_c() for op in self.operands) + ")"

    def __str__(self) -> str:
        return "(" + " + ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Mul(Expr):
    """A product of two or more sub-expressions."""

    operands: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.operands) < 1:
            raise ValueError("Mul needs at least one operand")

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        total = 1 + 0j
        for operand in self.operands:
            total *= operand.evaluate(assignment)
        return total

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def to_python(self) -> str:
        return "(" + " * ".join(op.to_python() for op in self.operands) + ")"

    def to_c(self) -> str:
        return "(" + " * ".join(op.to_c() for op in self.operands) + ")"

    def __str__(self) -> str:
        return "(" + " * ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Pow(Expr):
    """``base ** exponent`` with an exact rational exponent.

    ``exponent = 1/2`` is a (complex) square root, ``1/3`` a principal cube
    root, ``-1`` a reciprocal; arbitrary rationals are supported through
    ``cpow`` / ``cmath``.  Evaluation always goes through complex arithmetic
    so negative radicands never produce ``NaN`` (Section IV-C).
    """

    base: Expr
    exponent: Fraction

    def __post_init__(self):
        object.__setattr__(self, "exponent", Fraction(self.exponent))

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        base = self.base.evaluate(assignment)
        exponent = self.exponent
        if exponent.denominator == 1:
            power = int(exponent)
            if base == 0 and power < 0:
                raise ZeroDivisionError("0 raised to a negative power during recovery evaluation")
            return base ** power
        if exponent == Fraction(1, 2):
            return cmath.sqrt(base)
        return base ** complex(exponent)

    def variables(self) -> frozenset:
        return self.base.variables()

    def _exponent_python(self) -> str:
        if self.exponent.denominator == 1:
            return str(self.exponent.numerator)
        return f"({self.exponent.numerator} / {self.exponent.denominator})"

    def to_python(self) -> str:
        if self.exponent == Fraction(1, 2):
            return f"cmath.sqrt({self.base.to_python()})"
        if self.exponent == Fraction(-1):
            return f"(1 / ({self.base.to_python()}))"
        return f"(({self.base.to_python()}) ** {self._exponent_python()})"

    def to_c(self) -> str:
        if self.exponent == Fraction(1, 2):
            return f"csqrt({self.base.to_c()})"
        if self.exponent == Fraction(-1):
            return f"(1.0 / ({self.base.to_c()}))"
        num, den = self.exponent.numerator, self.exponent.denominator
        return f"cpow({self.base.to_c()}, {num}.0 / {den}.0)"

    def __str__(self) -> str:
        return f"({self.base})^({self.exponent})"


@dataclass(frozen=True)
class Floor(Expr):
    """Integer part of the real part of a sub-expression.

    This is the outermost node of every recovered-index expression:
    ``ik = floor(creal(root_k(...)))``.
    """

    operand: Expr

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        import math

        value = self.operand.evaluate(assignment)
        return complex(math.floor(value.real))

    def variables(self) -> frozenset:
        return self.operand.variables()

    def to_python(self) -> str:
        return f"math.floor(({self.operand.to_python()}).real)"

    def to_c(self) -> str:
        return f"floor(creal({self.operand.to_c()}))"

    def __str__(self) -> str:
        return f"floor({self.operand})"


@dataclass(frozen=True)
class RealPart(Expr):
    """Real part of a complex sub-expression (``creal`` in generated C)."""

    operand: Expr

    def evaluate(self, assignment: Mapping[str, Number]) -> complex:
        return complex(self.operand.evaluate(assignment).real)

    def variables(self) -> frozenset:
        return self.operand.variables()

    def to_python(self) -> str:
        return f"(({self.operand.to_python()}).real)"

    def to_c(self) -> str:
        return f"creal({self.operand.to_c()})"

    def __str__(self) -> str:
        return f"Re({self.operand})"


# ---------------------------------------------------------------------- #
# conversions and light simplification
# ---------------------------------------------------------------------- #
def expr_from_polynomial(poly: Polynomial) -> Expr:
    """Convert a :class:`Polynomial` to an equivalent expression tree."""
    terms = poly.terms()
    if not terms:
        return Const(Fraction(0))
    addends = []
    for monomial, coefficient in sorted(terms.items(), key=lambda kv: kv[0].sort_key(), reverse=True):
        factors: list[Expr] = []
        if coefficient != 1 or monomial.is_constant():
            factors.append(Const(coefficient))
        for var, exp in monomial.powers:
            if exp == 1:
                factors.append(Var(var))
            else:
                factors.append(Pow(Var(var), Fraction(exp)))
        addends.append(factors[0] if len(factors) == 1 else Mul(tuple(factors)))
    return addends[0] if len(addends) == 1 else Add(tuple(addends))


def simplify(expr: Expr) -> Expr:
    """Light structural simplification: flatten nested sums/products and fold constants.

    The goal is readable generated code, not canonical forms; correctness
    never depends on simplification.
    """
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Add):
        operands = []
        constant = Fraction(0)
        for op in expr.operands:
            op = simplify(op)
            if isinstance(op, Add):
                inner = list(op.operands)
            else:
                inner = [op]
            for item in inner:
                if isinstance(item, Const):
                    constant += item.value
                else:
                    operands.append(item)
        if constant != 0 or not operands:
            operands.append(Const(constant))
        return operands[0] if len(operands) == 1 else Add(tuple(operands))
    if isinstance(expr, Mul):
        operands = []
        constant = Fraction(1)
        for op in expr.operands:
            op = simplify(op)
            if isinstance(op, Mul):
                inner = list(op.operands)
            else:
                inner = [op]
            for item in inner:
                if isinstance(item, Const):
                    constant *= item.value
                else:
                    operands.append(item)
        if constant == 0:
            return Const(Fraction(0))
        if constant != 1 or not operands:
            operands.insert(0, Const(constant))
        return operands[0] if len(operands) == 1 else Mul(tuple(operands))
    if isinstance(expr, Pow):
        base = simplify(expr.base)
        if isinstance(base, Const) and expr.exponent.denominator == 1 and expr.exponent >= 0:
            return Const(base.value ** int(expr.exponent))
        if expr.exponent == 1:
            return base
        return Pow(base, expr.exponent)
    if isinstance(expr, Floor):
        return Floor(simplify(expr.operand))
    if isinstance(expr, RealPart):
        return RealPart(simplify(expr.operand))
    return expr
