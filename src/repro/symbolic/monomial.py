"""Monomials: products of variables raised to non-negative integer powers.

A :class:`Monomial` is the key type of the sparse multivariate polynomial
representation in :mod:`repro.symbolic.polynomial`.  It is immutable and
hashable so it can be used as a dictionary key.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Tuple


@dataclass(frozen=True)
class Monomial:
    """An immutable power product ``x1**e1 * x2**e2 * ...``.

    Exponents are strictly positive integers; variables with exponent zero
    are simply absent.  The empty monomial represents the constant ``1``.
    """

    powers: Tuple[Tuple[str, int], ...]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_mapping(mapping: Mapping[str, int]) -> "Monomial":
        """Build a monomial from a ``{variable: exponent}`` mapping.

        Zero exponents are dropped; negative exponents are rejected because
        polynomials only contain non-negative powers.
        """
        items = []
        for var, exp in mapping.items():
            if not isinstance(exp, int):
                raise TypeError(f"exponent of {var!r} must be int, got {type(exp).__name__}")
            if exp < 0:
                raise ValueError(f"negative exponent {exp} for variable {var!r}")
            if exp > 0:
                items.append((str(var), exp))
        return Monomial(tuple(sorted(items)))

    @staticmethod
    def one() -> "Monomial":
        """The constant monomial ``1``."""
        return Monomial(())

    @staticmethod
    def variable(name: str, exponent: int = 1) -> "Monomial":
        """The monomial ``name**exponent``."""
        return Monomial.from_mapping({name: exponent})

    def __post_init__(self) -> None:
        for var, exp in self.powers:
            if exp <= 0:
                raise ValueError(f"monomial stores only positive exponents, got {var}**{exp}")
        names = [var for var, _ in self.powers]
        if names != sorted(names) or len(set(names)) != len(names):
            raise ValueError("monomial powers must be sorted by variable and unique")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Return the ``{variable: exponent}`` dictionary (a copy)."""
        return dict(self.powers)

    @property
    def total_degree(self) -> int:
        """Sum of all exponents."""
        return sum(exp for _, exp in self.powers)

    def degree_in(self, var: str) -> int:
        """Exponent of ``var`` in this monomial (0 when absent)."""
        for name, exp in self.powers:
            if name == var:
                return exp
        return 0

    def variables(self) -> frozenset:
        """The set of variables that appear with a non-zero exponent."""
        return frozenset(var for var, _ in self.powers)

    def is_constant(self) -> bool:
        """True when the monomial is the constant ``1``."""
        return not self.powers

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "Monomial") -> "Monomial":
        if not isinstance(other, Monomial):
            return NotImplemented
        merged = self.as_dict()
        for var, exp in other.powers:
            merged[var] = merged.get(var, 0) + exp
        return Monomial.from_mapping(merged)

    def __pow__(self, exponent: int) -> "Monomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("monomial exponent must be a non-negative integer")
        return Monomial.from_mapping({var: exp * exponent for var, exp in self.powers})

    def divides(self, other: "Monomial") -> bool:
        """True when ``self`` divides ``other`` variable by variable."""
        other_map = other.as_dict()
        return all(other_map.get(var, 0) >= exp for var, exp in self.powers)

    def divide_by(self, other: "Monomial") -> "Monomial":
        """Exact division; raises :class:`ValueError` when not divisible."""
        if not other.divides(self):
            raise ValueError(f"{other} does not divide {self}")
        mine = self.as_dict()
        for var, exp in other.powers:
            mine[var] -= exp
        return Monomial.from_mapping(mine)

    def without(self, var: str) -> "Monomial":
        """Return the monomial with ``var`` removed (its exponent set to 0)."""
        return Monomial(tuple((v, e) for v, e in self.powers if v != var))

    # ------------------------------------------------------------------ #
    # evaluation and ordering
    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: Mapping[str, object]):
        """Evaluate with values from ``assignment`` (Fraction, int, float, complex)."""
        result: object = Fraction(1)
        for var, exp in self.powers:
            if var not in assignment:
                raise KeyError(f"no value supplied for variable {var!r}")
            result = result * (assignment[var] ** exp)
        return result

    def sort_key(self, variable_order: Iterable[str] | None = None) -> tuple:
        """A graded-lexicographic sort key (used only for stable printing)."""
        if variable_order is None:
            return (self.total_degree, self.powers)
        order = {v: idx for idx, v in enumerate(variable_order)}
        vec = tuple(-self.degree_in(v) for v in order)
        return (self.total_degree, vec, self.powers)

    def __str__(self) -> str:
        if not self.powers:
            return "1"
        parts = []
        for var, exp in self.powers:
            parts.append(var if exp == 1 else f"{var}^{exp}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({dict(self.powers)!r})"
