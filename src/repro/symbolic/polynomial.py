"""Sparse multivariate polynomials with exact rational coefficients.

:class:`Polynomial` is the workhorse of the whole reproduction: ranking
Ehrhart polynomials, trip counts, affine loop bounds and intermediate
summation results are all instances of it.  Coefficients are
``fractions.Fraction`` so every computation (counting, ranking, inversion
set-up) is exact — floating point only enters at the very end, when closed
form radical roots are *evaluated*.

The public surface intentionally mirrors what a tiny computer-algebra system
would offer: arithmetic, substitution, evaluation, per-variable degree,
univariate coefficient extraction and printers for Python and C sources.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Rational
from typing import Dict, Iterable, Mapping, Tuple, Union

from .monomial import Monomial

#: Convenience alias used throughout the code base for exact rationals.
Q = Fraction

Scalar = Union[int, Fraction]
PolynomialLike = Union["Polynomial", int, Fraction]


def _as_fraction(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value)
    raise TypeError(f"expected an exact rational coefficient, got {type(value).__name__}")


class Polynomial:
    """A multivariate polynomial ``sum_k c_k * m_k`` with ``c_k`` rational.

    Instances are immutable in practice (no public mutators); arithmetic
    returns new objects.  Zero coefficients are never stored.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Scalar] | None = None):
        cleaned: Dict[Monomial, Fraction] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if not isinstance(monomial, Monomial):
                    raise TypeError("Polynomial keys must be Monomial instances")
                value = _as_fraction(coefficient)
                if value != 0:
                    cleaned[monomial] = value
        self._terms = cleaned

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "Polynomial":
        """The zero polynomial."""
        return Polynomial()

    @staticmethod
    def constant(value: Scalar) -> "Polynomial":
        """A constant polynomial."""
        return Polynomial({Monomial.one(): _as_fraction(value)})

    @staticmethod
    def variable(name: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``name``."""
        return Polynomial({Monomial.variable(name): Fraction(1)})

    @staticmethod
    def from_coefficients(var: str, coefficients: Iterable[Scalar]) -> "Polynomial":
        """Univariate constructor: ``coefficients[k]`` multiplies ``var**k``."""
        terms: Dict[Monomial, Fraction] = {}
        for power, coefficient in enumerate(coefficients):
            value = _as_fraction(coefficient)
            if value != 0:
                terms[Monomial.variable(var, power) if power else Monomial.one()] = value
        return Polynomial(terms)

    @staticmethod
    def affine(coefficients: Mapping[str, Scalar], constant: Scalar = 0) -> "Polynomial":
        """Build ``sum_v coefficients[v] * v + constant``."""
        terms: Dict[Monomial, Fraction] = {}
        for var, coefficient in coefficients.items():
            value = _as_fraction(coefficient)
            if value != 0:
                terms[Monomial.variable(var)] = value
        const = _as_fraction(constant)
        if const != 0:
            terms[Monomial.one()] = const
        return Polynomial(terms)

    @staticmethod
    def _coerce(value: PolynomialLike) -> "Polynomial":
        if isinstance(value, Polynomial):
            return value
        return Polynomial.constant(value)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def terms(self) -> Dict[Monomial, Fraction]:
        """A copy of the ``{monomial: coefficient}`` map."""
        return dict(self._terms)

    def coefficient(self, monomial: Monomial) -> Fraction:
        """Coefficient of ``monomial`` (0 when absent)."""
        return self._terms.get(monomial, Fraction(0))

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        return all(m.is_constant() for m in self._terms)

    def constant_value(self) -> Fraction:
        """Value of a constant polynomial; raises otherwise."""
        if not self.is_constant():
            raise ValueError(f"{self} is not constant")
        return self._terms.get(Monomial.one(), Fraction(0))

    def variables(self) -> frozenset:
        """Every variable that appears with a non-zero coefficient."""
        result: set = set()
        for monomial in self._terms:
            result |= monomial.variables()
        return frozenset(result)

    @property
    def total_degree(self) -> int:
        """Maximum total degree of any monomial (0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(m.total_degree for m in self._terms)

    def degree_in(self, var: str) -> int:
        """Maximum exponent of ``var`` (0 when the variable does not appear)."""
        if not self._terms:
            return 0
        return max((m.degree_in(var) for m in self._terms), default=0)

    def is_affine(self) -> bool:
        """True when every monomial has total degree at most one."""
        return all(m.total_degree <= 1 for m in self._terms)

    def is_integer_valued_on_integers(self, samples: int = 4) -> bool:
        """Heuristic check that the polynomial maps integers to integers.

        Ranking Ehrhart polynomials have rational coefficients but always
        evaluate to integers on integer points; this is used as a sanity
        check in tests and assertions.
        """
        variables = sorted(self.variables())
        from itertools import product

        for point in product(range(samples), repeat=len(variables)):
            value = self.evaluate(dict(zip(variables, point)))
            if not isinstance(value, Fraction):
                return False
            if value.denominator != 1:
                return False
        return True

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: PolynomialLike) -> "Polynomial":
        other = Polynomial._coerce(other)
        terms = dict(self._terms)
        for monomial, coefficient in other._terms.items():
            terms[monomial] = terms.get(monomial, Fraction(0)) + coefficient
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: PolynomialLike) -> "Polynomial":
        return self + (-Polynomial._coerce(other))

    def __rsub__(self, other: PolynomialLike) -> "Polynomial":
        return Polynomial._coerce(other) - self

    def __mul__(self, other: PolynomialLike) -> "Polynomial":
        other = Polynomial._coerce(other)
        terms: Dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                monomial = m1 * m2
                terms[monomial] = terms.get(monomial, Fraction(0)) + c1 * c2
        return Polynomial(terms)

    __rmul__ = __mul__

    def __truediv__(self, scalar: Scalar) -> "Polynomial":
        value = _as_fraction(scalar)
        if value == 0:
            raise ZeroDivisionError("division of a polynomial by zero")
        return Polynomial({m: c / value for m, c in self._terms.items()})

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("polynomial exponent must be a non-negative integer")
        result = Polynomial.constant(1)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            base = base * base
            power >>= 1
        return result

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def denominator(self) -> int:
        """Least common multiple of all coefficient denominators (>= 1).

        For a degree-``d`` Ehrhart/ranking polynomial this divides ``d!``:
        multiplying by it clears every fraction, which is what makes exact
        integer bracket evaluation possible (see :meth:`integer_form`).
        """
        den = 1
        for coefficient in self._terms.values():
            den = den * coefficient.denominator // math.gcd(den, coefficient.denominator)
        return den

    def integer_form(self) -> Tuple["Polynomial", int]:
        """The denominator-cleared pair ``(num, den)`` with ``self == num / den``.

        ``num`` has integer coefficients only and ``den >= 1`` is the LCM of
        the coefficient denominators.  A comparison ``self(x) <= q`` over
        integers then becomes the *exact* integer comparison
        ``num(x) <= q * den`` — no floating point anywhere.  This is the
        foundation of the exact rank-recovery contract: every bracket check
        in the scalar, batch, generated-Python and generated-C paths runs on
        this form (``__int128`` in C, arbitrary-precision ``int`` in Python).
        """
        den = self.denominator()
        numerator = Polynomial({m: c * den for m, c in self._terms.items()})
        return numerator, den

    def has_integer_coefficients(self) -> bool:
        """True when every coefficient has denominator 1."""
        return all(c.denominator == 1 for c in self._terms.values())

    def evaluate_int(self, assignment: Mapping[str, int]) -> int:
        """Exact arbitrary-precision integer evaluation.

        Requires integer coefficients (:meth:`integer_form` produces them)
        and integer variable values; arguments are coerced through ``int()``
        so NumPy integer scalars cannot silently overflow.  This is the
        exact-bracket primitive of the recovery guard — unlike
        :meth:`evaluate` it never touches :class:`~fractions.Fraction`
        arithmetic, so it is cheap enough to sit on the correction path.
        """
        total = 0
        for monomial, coefficient in self._terms.items():
            if coefficient.denominator != 1:
                raise ValueError(
                    f"evaluate_int requires integer coefficients; {self} has {coefficient} "
                    "(clear denominators with integer_form() first)"
                )
            term = coefficient.numerator
            for var, exp in monomial.powers:
                term *= int(assignment[var]) ** exp
            total += term
        return total

    # ------------------------------------------------------------------ #
    # substitution and evaluation
    # ------------------------------------------------------------------ #
    def substitute(self, assignment: Mapping[str, PolynomialLike]) -> "Polynomial":
        """Simultaneously substitute variables by polynomials (or scalars).

        Variables absent from ``assignment`` are left untouched.
        """
        substitutions = {name: Polynomial._coerce(value) for name, value in assignment.items()}
        result = Polynomial.zero()
        for monomial, coefficient in self._terms.items():
            term = Polynomial.constant(coefficient)
            for var, exp in monomial.powers:
                if var in substitutions:
                    term = term * (substitutions[var] ** exp)
                else:
                    term = term * Polynomial({Monomial.variable(var, exp): Fraction(1)})
            result = result + term
        return result

    def evaluate(self, assignment: Mapping[str, object]):
        """Evaluate numerically.

        Returns a :class:`~fractions.Fraction` when every supplied value is
        exact; floats/complex propagate naturally otherwise.  Raises
        :class:`KeyError` when a needed variable is missing.
        """
        total: object = Fraction(0)
        for monomial, coefficient in self._terms.items():
            total = total + coefficient * monomial.evaluate(assignment)
        return total

    def evaluate_partial(self, assignment: Mapping[str, object]) -> "Polynomial":
        """Substitute scalar values for some variables, keeping the rest symbolic."""
        return self.substitute({k: Polynomial.constant(_as_fraction(v)) for k, v in assignment.items()})

    def coefficients_in(self, var: str) -> Dict[int, "Polynomial"]:
        """Group the polynomial as a univariate polynomial in ``var``.

        Returns ``{exponent: coefficient-polynomial}`` where the coefficient
        polynomials no longer contain ``var``.
        """
        grouped: Dict[int, Dict[Monomial, Fraction]] = {}
        for monomial, coefficient in self._terms.items():
            exponent = monomial.degree_in(var)
            reduced = monomial.without(var)
            bucket = grouped.setdefault(exponent, {})
            bucket[reduced] = bucket.get(reduced, Fraction(0)) + coefficient
        return {exp: Polynomial(terms) for exp, terms in grouped.items() if Polynomial(terms) != Polynomial.zero()}

    def derivative(self, var: str) -> "Polynomial":
        """Formal partial derivative with respect to ``var``."""
        terms: Dict[Monomial, Fraction] = {}
        for monomial, coefficient in self._terms.items():
            exponent = monomial.degree_in(var)
            if exponent == 0:
                continue
            reduced = monomial.as_dict()
            reduced[var] = exponent - 1
            new_monomial = Monomial.from_mapping(reduced)
            terms[new_monomial] = terms.get(new_monomial, Fraction(0)) + coefficient * exponent
        return Polynomial(terms)

    # ------------------------------------------------------------------ #
    # printing
    # ------------------------------------------------------------------ #
    def _sorted_terms(self):
        return sorted(self._terms.items(), key=lambda kv: kv[0].sort_key(), reverse=True)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for monomial, coefficient in self._sorted_terms():
            if monomial.is_constant():
                chunk = str(coefficient)
            elif coefficient == 1:
                chunk = str(monomial)
            elif coefficient == -1:
                chunk = f"-{monomial}"
            else:
                chunk = f"{coefficient}*{monomial}"
            parts.append(chunk)
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Polynomial({self})"

    def _term_source(self, monomial: Monomial, coefficient: Fraction, *, cast: str) -> str:
        factors = []
        if coefficient.denominator == 1:
            if coefficient != 1 or monomial.is_constant():
                factors.append(str(coefficient.numerator))
        else:
            factors.append(f"({coefficient.numerator}{cast} / {coefficient.denominator})")
        for var, exp in monomial.powers:
            factors.extend([var] * exp)
        return " * ".join(factors) if factors else "1"

    def to_python_source(self) -> str:
        """Render as a Python expression string using ``Fraction``-free arithmetic.

        Rational coefficients are emitted as exact divisions so evaluating the
        string with integer variable values yields floats only where division
        is genuinely fractional.
        """
        if not self._terms:
            return "0"
        parts = [self._term_source(m, c, cast="") for m, c in self._sorted_terms()]
        return " + ".join(f"({p})" for p in parts)

    def to_c_source(self) -> str:
        """Render as a C expression string (double arithmetic for fractions)."""
        if not self._terms:
            return "0"
        parts = [self._term_source(m, c, cast=".0") for m, c in self._sorted_terms()]
        return " + ".join(f"({p})" for p in parts)
