"""Compiling symbolic objects to plain Python callables (the recovery fast path).

The recovery expressions of Section IV are built and *selected* symbolically,
but in the hot path of every executor they are merely *evaluated* — over and
over, once per collapsed iteration.  Walking the :class:`~repro.symbolic.Expr`
tree (or the :class:`~repro.symbolic.Polynomial` term map) for each ``pc``
pays a Python-object toll per node per iteration.

This module removes that toll with a lambdify-style compiler: an expression
is rendered once into straight-line Python arithmetic (every distinct
sub-expression assigned to one temporary, shared sub-trees emitted once) and
``exec``-compiled into a function of its free variables.  Two modes exist:

* ``"scalar"`` — one value per call, through Python ``complex`` arithmetic,
  matching :meth:`Expr.evaluate` (Section IV-C requires complex intermediate
  values).  Compiled *polynomials* keep exact ``Fraction`` arithmetic, so at
  integer points they reproduce :meth:`Polynomial.evaluate` exactly.
* ``"numpy"`` — the same straight-line code over NumPy arrays: one call
  evaluates a whole chunk of ``pc`` values.  This is the engine of
  :class:`repro.core.batch.BatchRecovery`.
* ``"integer"`` (polynomials only) — straight-line *integer* arithmetic
  with no coercion prologue: the polynomial must have integer coefficients
  (see :meth:`Polynomial.integer_form`), and the compiled function computes
  exactly over whatever integer carrier the caller passes — Python ``int``
  scalars, ``int64`` NumPy arrays (fast, exact while magnitudes fit) or
  ``object``-dtype arrays of big ints (exact at any magnitude).  This mode
  powers the exact vectorized bracket checks of the batch recovery.

NumPy is an optional dependency of this module alone: importing it without
NumPy installed works, and only ``mode="numpy"`` raises.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .expression import Add, Const, Expr, Floor, Mul, Pow, RealPart, Var
from .polynomial import Polynomial

try:  # pragma: no cover - exercised implicitly by every numpy-mode test
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

#: The evaluation modes supported by the compiler.
MODES = ("scalar", "numpy", "integer")

#: Modes an :class:`Expr` tree supports (radical roots need complex floats).
EXPR_MODES = ("scalar", "numpy")


class CompileError(ValueError):
    """Raised for unknown modes, unsupported nodes or missing NumPy."""


def _require_mode(mode: str, allowed=MODES) -> None:
    if mode not in allowed:
        raise CompileError(f"unknown compile mode {mode!r}; expected one of {allowed}")
    if mode == "numpy" and _np is None:
        raise CompileError("mode='numpy' requires NumPy, which is not installed")


def _check_variables(needed: frozenset, variables: Sequence[str]) -> Tuple[str, ...]:
    ordered = tuple(variables)
    missing = needed - set(ordered)
    if missing:
        raise CompileError(f"compiled signature {ordered} is missing variables {sorted(missing)}")
    if len(set(ordered)) != len(ordered):
        raise CompileError(f"duplicate names in compiled signature {ordered}")
    return ordered


class _Emitter:
    """Accumulates straight-line assignments with sub-tree memoisation."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._memo: Dict[object, str] = {}
        self._counter = 0

    def assign(self, key: object, rhs: str) -> str:
        """Bind ``rhs`` to a fresh temporary, reusing it for an equal ``key``."""
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        name = f"_t{self._counter}"
        self._counter += 1
        self.lines.append(f"{name} = {rhs}")
        self._memo[key] = name
        return name


# ---------------------------------------------------------------------- #
# expression compilation
# ---------------------------------------------------------------------- #
def _emit_expr(expr: Expr, emitter: _Emitter, mode: str) -> str:
    """Emit ``expr`` into the straight-line program; return its temporary."""
    if isinstance(expr, Const):
        value = expr.value
        # numpy mode keeps even constants complex, so sqrt/pow of a negative
        # constant sub-expression stays on the complex plane (Section IV-C)
        # instead of NumPy's real-domain nan
        suffix = " + 0j" if mode == "numpy" else ""
        if value.denominator == 1:
            return emitter.assign(expr, f"({value.numerator}{suffix})")
        return emitter.assign(expr, f"({value.numerator} / {value.denominator}{suffix})")
    if isinstance(expr, Var):
        return expr.name  # bound (and coerced) in the function prologue
    if isinstance(expr, Add):
        parts = [_emit_expr(op, emitter, mode) for op in expr.operands]
        return emitter.assign(expr, " + ".join(parts))
    if isinstance(expr, Mul):
        parts = [_emit_expr(op, emitter, mode) for op in expr.operands]
        return emitter.assign(expr, " * ".join(parts))
    if isinstance(expr, Pow):
        base = _emit_expr(expr.base, emitter, mode)
        exponent = expr.exponent
        if exponent == Fraction(1, 2):
            fn = "_sqrt" if mode == "scalar" else "_np.sqrt"
            return emitter.assign(expr, f"{fn}({base})")
        if exponent.denominator == 1:
            return emitter.assign(expr, f"{base} ** ({int(exponent)})")
        # arbitrary rational exponent through a complex power, as in
        # Expr.evaluate / the paper's cpow-generated C (Fig. 7)
        if mode == "scalar":
            return emitter.assign(
                expr, f"{base} ** complex({exponent.numerator} / {exponent.denominator})"
            )
        return emitter.assign(expr, f"{base} ** ({exponent.numerator} / {exponent.denominator})")
    if isinstance(expr, Floor):
        operand = _emit_expr(expr.operand, emitter, mode)
        if mode == "scalar":
            return emitter.assign(expr, f"complex(_floor(({operand}).real))")
        return emitter.assign(expr, f"_np.floor(_np.real({operand}))")
    if isinstance(expr, RealPart):
        operand = _emit_expr(expr.operand, emitter, mode)
        if mode == "scalar":
            return emitter.assign(expr, f"complex(({operand}).real)")
        return emitter.assign(expr, f"_np.real({operand})")
    raise CompileError(f"cannot compile expression node of type {type(expr).__name__}")


@dataclass(frozen=True)
class CompiledExpr:
    """A compiled radical expression: call it with one value per variable.

    ``function(*values)`` evaluates the straight-line program; ``variables``
    fixes the positional order.  In scalar mode arguments are coerced to
    ``complex`` and a ``complex`` comes back; in numpy mode arguments are
    broadcast to ``complex128`` arrays and an array comes back.
    """

    expr: Expr
    variables: Tuple[str, ...]
    mode: str
    source: str
    function: Callable

    def __call__(self, *values):
        return self.function(*values)

    def evaluate(self, assignment: Mapping[str, object]):
        """Mapping-based evaluation, mirroring :meth:`Expr.evaluate`."""
        return self.function(*(assignment[name] for name in self.variables))


def compile_expr(
    expr: Expr,
    variables: Optional[Sequence[str]] = None,
    mode: str = "scalar",
    name: str = "_compiled_expr",
) -> CompiledExpr:
    """Compile an :class:`Expr` tree into a positional-argument function.

    ``variables`` defaults to the expression's free variables in sorted
    order; pass it explicitly to fix a calling convention (the batch
    recovery does, so ``pc`` always comes first).
    """
    _require_mode(mode, EXPR_MODES)
    ordered = _check_variables(
        expr.variables(), variables if variables is not None else sorted(expr.variables())
    )
    emitter = _Emitter()
    result = _emit_expr(expr, emitter, mode)

    lines = [f"def {name}({', '.join(ordered)}):"]
    for var in ordered:
        if mode == "scalar":
            lines.append(f"    {var} = complex({var})")
        else:
            lines.append(f"    {var} = _np.asarray({var}, dtype=_np.complex128)")
    lines.extend(f"    {line}" for line in emitter.lines)
    lines.append(f"    return {result}")
    source = "\n".join(lines) + "\n"

    namespace = {"_sqrt": cmath.sqrt, "_floor": math.floor, "_np": _np}
    exec(compile(source, f"<compiled-expr:{name}>", "exec"), namespace)
    return CompiledExpr(
        expr=expr, variables=ordered, mode=mode, source=source, function=namespace[name]
    )


# ---------------------------------------------------------------------- #
# polynomial compilation
# ---------------------------------------------------------------------- #
def _emit_polynomial(poly: Polynomial, emitter: _Emitter, mode: str) -> str:
    """Emit a polynomial as a sum of monomial products over shared powers."""
    terms = sorted(poly.terms().items(), key=lambda kv: kv[0].sort_key(), reverse=True)
    if not terms:
        return emitter.assign(("const", 0), "0")

    def power_of(var: str, exp: int) -> str:
        if exp == 1:
            return var
        return emitter.assign(("pow", var, exp), f"{var} ** {exp}")

    addends: List[str] = []
    for monomial, coefficient in terms:
        factors: List[str] = []
        if coefficient.denominator == 1:
            if coefficient != 1 or monomial.is_constant():
                factors.append(
                    emitter.assign(("const", coefficient), f"({coefficient.numerator})")
                )
        elif mode == "integer":
            raise CompileError(
                f"mode='integer' requires integer coefficients; got {coefficient} "
                "(clear denominators with Polynomial.integer_form() first)"
            )
        elif mode == "scalar":
            factors.append(
                emitter.assign(
                    ("const", coefficient),
                    f"_Q({coefficient.numerator}, {coefficient.denominator})",
                )
            )
        else:
            factors.append(
                emitter.assign(
                    ("const", coefficient),
                    f"({coefficient.numerator} / {coefficient.denominator})",
                )
            )
        for var, exp in monomial.powers:
            factors.append(power_of(var, exp))
        addends.append(emitter.assign(("term", monomial), " * ".join(factors)))
    return emitter.assign(("sum", poly), " + ".join(addends))


@dataclass(frozen=True)
class CompiledPolynomial:
    """A compiled polynomial: straight-line arithmetic over its variables.

    Scalar mode keeps exact arithmetic — called with ``int``/``Fraction``
    arguments it returns exactly what :meth:`Polynomial.evaluate` returns.
    NumPy mode evaluates element-wise over ``float64`` arrays.  Integer mode
    (integer-coefficient polynomials only) emits bare integer arithmetic
    with no coercion, so the same compiled function evaluates exactly over
    Python ``int``, ``int64`` arrays or ``object``-dtype big-int arrays.
    """

    polynomial: Polynomial
    variables: Tuple[str, ...]
    mode: str                 # "scalar" | "numpy" | "integer" (exact, no coercion)
    source: str
    function: Callable

    def __call__(self, *values):
        return self.function(*values)

    def evaluate(self, assignment: Mapping[str, object]):
        """Mapping-based evaluation, mirroring :meth:`Polynomial.evaluate`."""
        return self.function(*(assignment[name] for name in self.variables))


def compile_polynomial(
    poly: Polynomial,
    variables: Optional[Sequence[str]] = None,
    mode: str = "scalar",
    name: str = "_compiled_poly",
) -> CompiledPolynomial:
    """Compile a :class:`Polynomial` into a positional-argument function."""
    _require_mode(mode)
    ordered = _check_variables(
        poly.variables(), variables if variables is not None else sorted(poly.variables())
    )
    emitter = _Emitter()
    result = _emit_polynomial(poly, emitter, mode)

    lines = [f"def {name}({', '.join(ordered)}):"]
    if mode == "numpy":
        for var in ordered:
            lines.append(f"    {var} = _np.asarray({var}, dtype=_np.float64)")
    lines.extend(f"    {line}" for line in emitter.lines)
    lines.append(f"    return {result}")
    source = "\n".join(lines) + "\n"

    namespace = {"_Q": Fraction, "_np": _np}
    exec(compile(source, f"<compiled-poly:{name}>", "exec"), namespace)
    return CompiledPolynomial(
        polynomial=poly, variables=ordered, mode=mode, source=source, function=namespace[name]
    )
