"""The gain metric of Section VII.

The paper reports, for every program, the gain of the collapsed+static
version over the original loop nest parallelised with ``schedule(static)``
(blue bars of Fig. 9) and over ``schedule(dynamic)`` (red bars)::

    gain = (time_without_collapsing - time_with_collapsing) / time_without_collapsing

A positive gain means collapsing wins; 0.5 means the collapsed version runs
in half the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence


def gain(time_without: float, time_with: float) -> float:
    """The paper's gain formula (Section VII)."""
    if time_without <= 0:
        raise ValueError("the reference execution time must be positive")
    return (time_without - time_with) / time_without


@dataclass(frozen=True)
class GainRow:
    """One bar group of Fig. 9: a program and its gains against both baselines."""

    program: str
    time_static: float
    time_dynamic: float
    time_collapsed: float

    @property
    def gain_vs_static(self) -> float:
        return gain(self.time_static, self.time_collapsed)

    @property
    def gain_vs_dynamic(self) -> float:
        return gain(self.time_dynamic, self.time_collapsed)

    def as_table_row(self) -> List[str]:
        return [
            self.program,
            f"{self.time_static:.1f}",
            f"{self.time_dynamic:.1f}",
            f"{self.time_collapsed:.1f}",
            f"{self.gain_vs_static:+.2%}",
            f"{self.gain_vs_dynamic:+.2%}",
        ]


def gain_table(rows: Sequence[GainRow]) -> List[List[str]]:
    """Render Fig. 9 as rows: program, times and both gains."""
    return [row.as_table_row() for row in rows]
