"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render an aligned, pipe-separated text table.

    Used by every benchmark to print the rows/series the corresponding paper
    figure reports, so the harness output can be compared side by side with
    the paper.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
