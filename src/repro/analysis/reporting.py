"""Table rendering (plain text and markdown) for the harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render an aligned, pipe-separated text table.

    Used by every benchmark to print the rows/series the corresponding paper
    figure reports, so the harness output can be compared side by side with
    the paper.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render a GitHub-flavoured markdown table (used by ``REPORT_*.md`` files).

    Same row contract as :func:`format_table`; cells are padded so the raw
    text stays column-aligned and diffable.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} columns")
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render(cells: Sequence[str]) -> str:
        body = " | ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(cells))
        return f"| {body} |"

    lines: List[str] = []
    if title:
        lines.extend((f"## {title}", ""))
    lines.append(render(headers))
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)
