"""Analysis and reporting of the scheduling experiments.

Implements the quantities the paper reports:

* the per-thread iteration distribution of Fig. 2 and generic load-balance
  metrics (:mod:`repro.analysis.loadbalance`),
* the gain formula of Section VII (:mod:`repro.analysis.gains`),
* the serial control-overhead of Fig. 10, simulated and measured
  (:mod:`repro.analysis.overhead`),
* plain-text and markdown table rendering used by the benchmark harness
  (:mod:`repro.analysis.reporting`),
* the full-paper conformance sweep — every kernel × schedule × backend
  under one differential harness (:mod:`repro.analysis.sweep`).
"""

from .loadbalance import LoadBalanceReport, iteration_distribution, load_balance_report
from .gains import GainRow, gain, gain_table
from .overhead import (
    EXECUTION_MODES,
    MeasuredRecovery,
    MeasuredRun,
    OverheadRow,
    measure_execution_throughput,
    measure_recovery_throughput,
    recovery_overhead,
)
from .reporting import format_markdown_table, format_table
from .sweep import (
    BACKENDS,
    DEFAULT_SCHEDULES,
    SweepReport,
    SweepScenario,
    check_rank_conformance,
    default_flag_sets,
    default_scenarios,
    kernel_scenarios,
    run_sweep,
    transformed_scenarios,
)

__all__ = [
    "LoadBalanceReport",
    "iteration_distribution",
    "load_balance_report",
    "GainRow",
    "gain",
    "gain_table",
    "EXECUTION_MODES",
    "MeasuredRecovery",
    "MeasuredRun",
    "OverheadRow",
    "measure_execution_throughput",
    "measure_recovery_throughput",
    "recovery_overhead",
    "format_markdown_table",
    "format_table",
    "BACKENDS",
    "DEFAULT_SCHEDULES",
    "SweepReport",
    "SweepScenario",
    "check_rank_conformance",
    "default_flag_sets",
    "default_scenarios",
    "kernel_scenarios",
    "run_sweep",
    "transformed_scenarios",
]
