"""Analysis and reporting of the scheduling experiments.

Implements the quantities the paper reports:

* the per-thread iteration distribution of Fig. 2 and generic load-balance
  metrics (:mod:`repro.analysis.loadbalance`),
* the gain formula of Section VII (:mod:`repro.analysis.gains`),
* the serial control-overhead of Fig. 10, simulated and measured
  (:mod:`repro.analysis.overhead`),
* plain-text table rendering used by the benchmark harness
  (:mod:`repro.analysis.reporting`).
"""

from .loadbalance import LoadBalanceReport, iteration_distribution, load_balance_report
from .gains import GainRow, gain, gain_table
from .overhead import (
    EXECUTION_MODES,
    MeasuredRecovery,
    MeasuredRun,
    OverheadRow,
    measure_execution_throughput,
    measure_recovery_throughput,
    recovery_overhead,
)
from .reporting import format_table

__all__ = [
    "LoadBalanceReport",
    "iteration_distribution",
    "load_balance_report",
    "GainRow",
    "gain",
    "gain_table",
    "EXECUTION_MODES",
    "MeasuredRecovery",
    "MeasuredRun",
    "OverheadRow",
    "measure_execution_throughput",
    "measure_recovery_throughput",
    "recovery_overhead",
    "format_table",
]
