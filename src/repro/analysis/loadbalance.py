"""Load-balance metrics and the Fig. 2 iteration distribution.

Figure 2 of the paper shows how a static schedule of the outermost loop of
the correlation nest distributes wildly different amounts of work to 5
threads (the first thread owns the widest rows of the triangle).  These
helpers compute that distribution — in iterations of the full nest, i.e. in
units of actual work — for any nest and thread count, plus the summary
metrics used by the benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..ir import LoopNest, enumerate_iterations
from ..openmp.costmodel import CostModel
from ..openmp.schedule import static_schedule
from ..openmp.simulator import SimulationResult


@dataclass(frozen=True)
class LoadBalanceReport:
    """Summary of how evenly work is spread over the threads."""

    per_thread: tuple
    max_load: float
    min_load: float
    mean_load: float

    @property
    def imbalance(self) -> float:
        """max / mean — 1.0 means perfect balance; Fig. 2's static split is ~2x."""
        return self.max_load / self.mean_load if self.mean_load else 1.0

    @property
    def spread(self) -> float:
        """max / min over the threads that received any work."""
        return self.max_load / self.min_load if self.min_load else float("inf")


def iteration_distribution(
    nest: LoopNest,
    parameter_values: Mapping[str, int],
    threads: int,
    cost_model: Optional[CostModel] = None,
) -> List[float]:
    """Work received by each thread when the *outermost* loop is split statically.

    This reproduces Fig. 2: thread 0 gets the first ``ceil(rows/threads)``
    rows of the triangle, and with them far more inner iterations than the
    last thread.
    """
    cost_model = cost_model or CostModel(nest)
    work_of = cost_model.compile_work(1, parameter_values)
    outer_values = [indices[0] for indices in enumerate_iterations(nest, parameter_values, depth=1)]
    loads = [0.0] * threads
    for chunk in static_schedule(len(outer_values), threads):
        loads[chunk.thread] += sum(
            work_of(outer_values[index]) for index in range(chunk.first - 1, chunk.last)
        )
    return loads


def load_balance_report(loads: Sequence[float]) -> LoadBalanceReport:
    """Summarise a per-thread load vector (from the simulator or the distribution)."""
    values = list(loads)
    if not values:
        return LoadBalanceReport(per_thread=(), max_load=0.0, min_load=0.0, mean_load=0.0)
    active = [v for v in values if v > 0]
    return LoadBalanceReport(
        per_thread=tuple(values),
        max_load=max(values),
        min_load=min(active) if active else 0.0,
        mean_load=sum(values) / len(values),
    )


def report_from_simulation(result: SimulationResult) -> LoadBalanceReport:
    """Load-balance view of a simulated execution (busy times per thread)."""
    return load_balance_report(result.busy_times())
