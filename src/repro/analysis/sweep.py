"""The full-paper conformance sweep: every kernel × schedule × backend.

The paper's headline evidence is its result tables and Figs. 9/10 — gains
measured across kernels, schedules and execution schemes.  This module turns
that whole matrix into one differentially-checked harness:

* **scenarios** — every executable registry kernel
  (:func:`repro.kernels.executable_kernels`) plus transformed nests the
  paper exercises but the registry only simulates: a *skewed* rectangle
  (rhomboidal domain, :func:`repro.transforms.skew`) and the *tile loops* of
  a tiled triangle (:func:`repro.transforms.tile_triangular`), both executed
  for real through the collapse/polyhedra machinery on a visits grid;
* **schedules** — the paper's ``static`` and ``dynamic`` families plus this
  reproduction's cost-model ``adaptive`` policy;
* **backends** — the five substrates behind ``collapse_and_run``:
  serial ``compiled`` (vectorized batch recovery), the persistent
  ``engine``, whole-range ``native`` C/OpenMP, ``hybrid``
  (engine-scheduled native chunks) and the profile-guided ``auto``;
* **compiler flags** — an extra axis for the compiled substrates
  (``-march=native`` by default when the compiler accepts it;
  ``-ffast-math`` is deliberately *not* a default — the differential gate
  compares against IEEE Python baselines).

Every cell's output arrays are compared element-wise against the original
lexicographic-order run (the paper's own correctness protocol), and every
scenario's recovered ranks are cross-checked scalar vs batch vs compiled C
at probe ``pc`` values.  A sweep with ``report.ok`` is a machine-checked
statement that all substrates agree on the entire scenario matrix; the
report (``REPORT_sweep.json`` + markdown table) carries per-cell timings
and Section VII-style gains against the serial baseline.

See docs/sweep.md for the report schema and how to add a scenario.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core import batch_recovery, chunk_iterator_factory, collapse
from ..ir import Loop, LoopNest, enumerate_iterations
from ..openmp.schedule import (
    ScheduleKind,
    ScheduleSpec,
    dynamic_chunks,
    schedule_chunks,
    static_schedule,
)
from ..transforms import skew, tile_triangular
from .gains import gain
from .reporting import format_markdown_table, format_table

#: the five substrates behind ``collapse_and_run``, in escalation order
BACKENDS = ("compiled", "engine", "native", "hybrid", "auto")

#: the schedule kinds of the paper's experiments plus the adaptive policy
DEFAULT_SCHEDULES = ("static", "dynamic", "adaptive")

#: flag sets needing a compiled substrate (the others ignore the axis)
FLAGGED_BACKENDS = ("native", "hybrid")


# ---------------------------------------------------------------------- #
# visit-grid operations (module-level: engine workers pickle them by name)
# ---------------------------------------------------------------------- #
def _visit_op(data, indices, values) -> None:
    """Count one visit of a transformed-nest iteration on the grid."""
    data["grid"][indices] += 1.0


def _visit_chunk_op(data, indices, values) -> None:
    # rows of one chunk are distinct iterations (unranking is a bijection),
    # so the fancy-indexed scatter increments every visited cell exactly once
    data["grid"][indices[:, 0], indices[:, 1]] += 1.0


# ---------------------------------------------------------------------- #
# scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepScenario:
    """One program of the sweep: a registry kernel or a transformed nest.

    Kernel scenarios carry only the kernel name (data, operations and the C
    body come from the registry).  Nest scenarios execute a visits grid —
    ``grid[indices] += 1`` per iteration — over ``grid_shape``, with
    ``c_body`` as the native/hybrid spelling of the same operation.
    """

    name: str
    kind: str  # "kernel" | "tiled" | "skewed"
    parameter_values: Mapping[str, int]
    kernel_name: Optional[str] = None
    nest: Optional[LoopNest] = None
    grid_shape: Tuple[int, int] = ()
    c_body: Optional[str] = None

    @property
    def is_kernel(self) -> bool:
        return self.kernel_name is not None

    def kernel(self):
        from ..kernels import get_kernel

        return get_kernel(self.kernel_name)

    def collapsed(self):
        if self.is_kernel:
            return self.kernel().collapsed()
        return collapse(self.nest, 2)

    def source_nest(self) -> LoopNest:
        return self.kernel().nest if self.is_kernel else self.nest

    def make_data(self) -> Dict[str, np.ndarray]:
        if self.is_kernel:
            return self.kernel().make_data(self.parameter_values)
        return {"grid": np.zeros(self.grid_shape)}

    def supports_native(self) -> bool:
        """True when the scenario has a C spelling (compiler not considered)."""
        return self.kernel().supports_native if self.is_kernel else self.c_body is not None

    def reference(self) -> Dict[str, np.ndarray]:
        """The original lexicographic-order run — the differential baseline."""
        if self.is_kernel:
            from ..kernels import run_original

            return run_original(self.kernel(), self.parameter_values)
        data = self.make_data()
        for indices in enumerate_iterations(self.nest, self.parameter_values):
            _visit_op(data, indices, self.parameter_values)
        return data


def _smoke_values(parameters: Mapping[str, int], max_extent: int) -> Dict[str, int]:
    """Clamp every extent-like parameter so the full matrix stays smoke-sized."""
    return {name: min(int(value), max_extent) for name, value in parameters.items()}


def kernel_scenarios(max_extent: int = 48) -> List[SweepScenario]:
    """One scenario per executable registry kernel, at clamped smoke sizes."""
    from ..kernels import executable_kernels

    return [
        SweepScenario(
            name=kernel.name,
            kind="kernel",
            parameter_values=_smoke_values(kernel.bench_parameters, max_extent),
            kernel_name=kernel.name,
        )
        for kernel in executable_kernels()
    ]


def transformed_scenarios(max_extent: int = 48) -> List[SweepScenario]:
    """The transformed-nest scenarios: one skewed and one tiled domain.

    * ``skewed_rect`` — a rectangular ``(t, x)`` nest skewed by
      ``x -> x + t`` (the Pluto wavefront transformation), giving the
      rhomboidal domain of the paper's introduction; executed point by
      point on the visits grid.
    * ``tiled_triangle`` — the affine *tile-loop* nest of a Pluto-style
      tiled upper-triangular pair (``it in [0, NT)``, ``jt in [it, NT)``),
      the domain behind the paper's ``*_tiled`` variants; executed tile by
      tile on the visits grid.
    """
    t_extent = max(2, min(12, max_extent // 4))
    x_extent = max(4, min(32, max_extent))
    base = LoopNest(
        [Loop.make("t", 0, "T"), Loop.make("x", 0, "N")],
        parameters=["T", "N"],
        name="sweep_rect",
    )
    skewed = skew(base, target="x", source="t", factor=1)

    triangle_n = max(8, min(48, max_extent))
    triangle = LoopNest(
        [Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N")],
        parameters=["N"],
        name="sweep_triangle",
    )
    tiled = tile_triangular(triangle, tile_size=8, name="sweep_triangle_tiled")
    tile_values = tiled.tile_parameters({"N": triangle_n})
    tiles = tile_values["NT"]

    return [
        SweepScenario(
            name="skewed_rect",
            kind="skewed",
            parameter_values={"T": t_extent, "N": x_extent},
            nest=skewed,
            grid_shape=(t_extent, x_extent + t_extent),
            c_body="grid(t, x) += 1.0;",
        ),
        SweepScenario(
            name="tiled_triangle",
            kind="tiled",
            parameter_values=dict(tile_values),
            nest=tiled.tile_nest,
            grid_shape=(tiles, tiles),
            c_body="grid(it, jt) += 1.0;",
        ),
    ]


def default_scenarios(max_extent: int = 48) -> List[SweepScenario]:
    """Every executable kernel plus the tiled and skewed transformed nests."""
    return kernel_scenarios(max_extent) + transformed_scenarios(max_extent)


def default_flag_sets() -> Dict[str, Tuple[str, ...]]:
    """The compiler-flags axis this machine supports.

    Always contains ``"default"`` (no extra flags).  ``-march=native`` is
    added when a compiler exists and accepts it; ``-ffast-math`` is *never*
    added by default — it changes floating-point semantics, and the sweep's
    whole point is bit-for-bit/IEEE agreement with the Python baselines
    (callers may still pass it explicitly to ``run_sweep``).
    """
    from ..native import flags_supported, native_available

    sets: Dict[str, Tuple[str, ...]] = {"default": ()}
    if native_available() and flags_supported(("-march=native",)):
        sets["march-native"] = ("-march=native",)
    return sets


# ---------------------------------------------------------------------- #
# cell execution
# ---------------------------------------------------------------------- #
def _serial_chunks(collapsed, parameter_values, spec: ScheduleSpec, workers: int):
    """The chunk list the serial ``compiled`` backend walks for one schedule."""
    total = collapsed.total_iterations(parameter_values)
    if spec.kind is ScheduleKind.ADAPTIVE:
        from ..runtime.plan import adaptive_chunks  # deferred: runtime sits above

        return adaptive_chunks(collapsed, parameter_values, workers)
    if spec.kind is ScheduleKind.DYNAMIC and spec.chunk_size is None:
        # mirror the engine's oversubscribed default rather than OpenMP's
        # chunk of 1 (pure per-iteration overhead in a serial walk)
        return dynamic_chunks(total, max(1, -(-total // (workers * 4))))
    if spec.kind is ScheduleKind.STATIC:
        return static_schedule(total, workers)
    return schedule_chunks(spec, total, workers)


def _run_compiled(scenario: SweepScenario, spec: ScheduleSpec, workers: int):
    """The serial baseline substrate: batch-recovered chunks, Python ops."""
    collapsed = scenario.collapsed()
    values = scenario.parameter_values
    data = scenario.make_data()
    chunks = _serial_chunks(collapsed, values, spec, workers)
    if scenario.is_kernel:
        from ..kernels import run_collapsed_chunks

        return run_collapsed_chunks(
            scenario.kernel(), values, data, chunks=chunks, recovery="compiled"
        )
    walker = chunk_iterator_factory(collapsed, values, "compiled")
    for chunk in chunks:
        for indices in walker(chunk.first, chunk.last):
            _visit_op(data, indices, values)
    return data


def _run_native(scenario: SweepScenario, spec: ScheduleSpec, workers: int, flags):
    """Whole-range compiled C/OpenMP (adaptive normalises to static)."""
    values = scenario.parameter_values
    if scenario.is_kernel:
        from ..kernels import run_collapsed_native

        return run_collapsed_native(
            scenario.kernel(), values, schedule=spec, threads=workers,
            compile_flags=flags,
        )
    from ..native import compile_collapsed

    if spec.kind is ScheduleKind.ADAPTIVE:
        spec = ScheduleSpec.parse("static")
    module = compile_collapsed(
        scenario.collapsed(), body=scenario.c_body, arrays=("grid",),
        schedule=spec, extra_flags=flags,
    )
    data = scenario.make_data()
    module.run(data, values, threads=workers)
    return data


def _run_session(scenario: SweepScenario, spec: ScheduleSpec, backend: str, session, flags):
    """One run through the session layer (engine, hybrid or auto)."""
    values = scenario.parameter_values
    if scenario.is_kernel:
        kwargs = {}
        if flags and backend == "hybrid":
            kwargs["compile_flags"] = tuple(flags)
        return session.run(
            scenario.kernel_name, values, schedule=spec, backend=backend, **kwargs
        )
    data = scenario.make_data()
    kwargs = dict(iteration_op=_visit_op, chunk_op=_visit_chunk_op)
    if scenario.c_body is not None and backend in ("hybrid", "auto"):
        kwargs.update(c_body=scenario.c_body, c_arrays=("grid",))
        if flags and backend == "hybrid":
            kwargs["compile_flags"] = tuple(flags)
    session.run(scenario.nest, values, data=data, schedule=spec, backend=backend, **kwargs)
    return data


def _resolved_auto(scenario: SweepScenario, spec: ScheduleSpec) -> str:
    """What ``backend="auto"`` resolves to for this cell right now."""
    from ..runtime import resolve_auto_backend

    if scenario.is_kernel:
        return resolve_auto_backend(scenario.kernel(), scenario.parameter_values, spec)
    return resolve_auto_backend(
        scenario.nest,
        scenario.parameter_values,
        spec,
        data=True,  # the sweep always supplies grid data
        allow_native=False,  # ad-hoc ops: mirrors the session's own gating
        iteration_op=_visit_op,
        c_body=scenario.c_body,
    )


# ---------------------------------------------------------------------- #
# the sweep
# ---------------------------------------------------------------------- #
@dataclass
class SweepReport:
    """Everything one sweep measured, plus its differential verdict."""

    config: Dict[str, object]
    cells: List[Dict[str, object]] = field(default_factory=list)
    rank_checks: List[Dict[str, object]] = field(default_factory=list)
    mismatches: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell matched the baseline and every rank agreed."""
        return not self.mismatches and all(check["ok"] for check in self.rank_checks)

    def summary(self) -> Dict[str, object]:
        return {
            "cells": len(self.cells),
            "failed_cells": sum(1 for cell in self.cells if not cell["ok"]),
            "mismatches": len(self.mismatches),
            "ok": self.ok,
            "rank_checks": len(self.rank_checks),
            "scenarios": len({cell["scenario"] for cell in self.cells}),
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "cells": self.cells,
            "config": self.config,
            "mismatches": self.mismatches,
            "rank_checks": self.rank_checks,
            "summary": self.summary(),
        }

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def _rows(self) -> Tuple[List[str], List[List[str]]]:
        """Fig. 9/10-style rows: scenario × schedule, one column per backend."""
        columns: List[str] = []
        for cell in self.cells:
            label = cell["backend"]
            if cell["flags"] != "default":
                label = f"{label}[{cell['flags']}]"
            if label not in columns:
                columns.append(label)
        by_key: Dict[Tuple[str, str], Dict[str, Dict[str, object]]] = {}
        for cell in self.cells:
            label = cell["backend"]
            if cell["flags"] != "default":
                label = f"{label}[{cell['flags']}]"
            by_key.setdefault((cell["scenario"], cell["schedule"]), {})[label] = cell
        rows = []
        for (scenario, schedule), cells in by_key.items():
            row = [scenario, schedule]
            for label in columns:
                cell = cells.get(label)
                if cell is None:
                    row.append("-")
                    continue
                text = f"{cell['seconds']:.4f}s"
                if cell.get("gain_vs_serial") is not None:
                    text += f" ({cell['gain_vs_serial']:+.0%})"
                if not cell["ok"]:
                    text += " MISMATCH"
                row.append(text)
            rows.append(row)
        return ["scenario", "schedule", *columns], rows

    def table(self) -> str:
        headers, rows = self._rows()
        verdict = "zero mismatches" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return format_table(
            headers, rows,
            title=f"Conformance sweep — seconds (gain vs serial compiled/static); {verdict}",
        )

    def markdown(self) -> str:
        headers, rows = self._rows()
        summary = self.summary()
        lines = [
            "# Conformance sweep report",
            "",
            f"Differential verdict: **{'PASS' if self.ok else 'FAIL'}** — "
            f"{summary['cells']} cells over {summary['scenarios']} scenarios, "
            f"{summary['mismatches']} mismatches, "
            f"{summary['rank_checks']} rank cross-checks.",
            "",
            "Each cell shows wall-clock seconds and, in parentheses, the "
            "Section VII gain against the scenario's serial compiled/static "
            "baseline (positive: faster than serial).",
            "",
            format_markdown_table(headers, rows),
        ]
        return "\n".join(lines) + "\n"

    def write(self, json_path, markdown_path=None) -> None:
        """Write ``REPORT_sweep.json`` (sorted keys) and the markdown table."""
        Path(json_path).write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        if markdown_path is not None:
            Path(markdown_path).write_text(self.markdown())


def _rank_probes(total: int) -> List[int]:
    probes = {1, 2, total // 3, total // 2, total - 1, total}
    return sorted(pc for pc in probes if 1 <= pc <= total)


def check_rank_conformance(
    scenario: SweepScenario, flag_sets: Mapping[str, Sequence[str]]
) -> Dict[str, object]:
    """Cross-check recovered ranks: scalar vs batch vs compiled C (per flag set).

    Probes a handful of ``pc`` values (ends, interior, around the middle)
    and requires the scalar unranker, the vectorized batch recovery and —
    when a compiler exists — the compiled ``repro_recover_range`` under
    *every* flag set to produce identical index tuples.
    """
    from ..native import native_available

    collapsed = scenario.collapsed()
    values = scenario.parameter_values
    total = collapsed.total_iterations(values)
    pcs = _rank_probes(total)
    backends = ["scalar", "batch"]
    failures: List[str] = []

    scalar = [tuple(collapsed.recover_indices(pc, values)) for pc in pcs]
    batch = batch_recovery(collapsed).recover_pcs(np.array(pcs, dtype=np.int64), values)
    for pc, expected, got in zip(pcs, scalar, (tuple(row) for row in batch)):
        if expected != got:
            failures.append(f"batch disagrees with scalar at pc={pc}: {got} != {expected}")

    if native_available() and scenario.supports_native():
        from ..native import compile_collapsed

        for label, flags in flag_sets.items():
            backends.append(f"native[{label}]")
            try:
                if scenario.is_kernel:
                    kernel = scenario.kernel()
                    module = compile_collapsed(
                        collapsed, body=kernel.c_body, arrays=kernel.c_arrays,
                        extra_flags=tuple(flags),
                    )
                else:
                    module = compile_collapsed(
                        collapsed, body=scenario.c_body, arrays=("grid",),
                        extra_flags=tuple(flags),
                    )
            except Exception as error:  # an unbuildable recoverer is a failure
                failures.append(
                    f"native[{label}] failed to build: {type(error).__name__}"
                )
                continue
            for pc, expected in zip(pcs, scalar):
                got = tuple(module.recover_range(pc, pc, values)[0])
                if got != expected:
                    failures.append(
                        f"native[{label}] disagrees with scalar at pc={pc}: "
                        f"{got} != {expected}"
                    )

    return {
        "backends": backends,
        "failures": failures,
        "ok": not failures,
        "probes": pcs,
        "scenario": scenario.name,
        "total_iterations": total,
    }


def _compare(reference, result, atol: float) -> Tuple[bool, float, Optional[str]]:
    """Element-wise comparison of a cell's arrays against the baseline."""
    worst = 0.0
    for name, expected in reference.items():
        got = result.get(name)
        if got is None:
            return False, float("inf"), name
        diff = float(np.max(np.abs(np.asarray(got) - expected))) if np.size(expected) else 0.0
        worst = max(worst, diff)
        if not np.allclose(got, expected, atol=atol):
            return False, worst, name
    return True, worst, None


def run_sweep(
    scenarios: Optional[Sequence[SweepScenario]] = None,
    schedules: Sequence[str] = DEFAULT_SCHEDULES,
    backends: Sequence[str] = BACKENDS,
    workers: int = 2,
    flag_sets: Optional[Mapping[str, Sequence[str]]] = None,
    repeats: int = 1,
    atol: float = 1e-9,
    session=None,
    max_extent: int = 48,
) -> SweepReport:
    """Run the conformance matrix and return its :class:`SweepReport`.

    For every scenario the original-order run is the baseline; every
    (schedule, backend[, flags]) cell then executes ``repeats`` times on
    fresh data — the differential gate checks the first run's arrays, the
    recorded ``seconds`` is the fastest run (so one-off compilations don't
    masquerade as substrate cost).  Unviable cells (no compiler, no C body)
    are *skipped*, not failed: viability is machine-dependent, conformance
    is not.  Nothing raises on a mismatch — the report records it
    (``report.ok``), and the callers (bench, CI gate) assert.

    ``flag_sets`` maps axis labels to extra compiler flag tuples for the
    ``native``/``hybrid`` cells; default: :func:`default_flag_sets`.
    """
    from ..native import native_available
    from ..runtime import RuntimeSession

    scenarios = list(scenarios) if scenarios is not None else default_scenarios(max_extent)
    flag_sets = dict(flag_sets) if flag_sets is not None else default_flag_sets()
    if "default" not in flag_sets:
        flag_sets = {"default": (), **flag_sets}
    compiled_available = native_available()

    report = SweepReport(
        config={
            "atol": atol,
            "backends": list(backends),
            "flag_sets": {label: list(flags) for label, flags in flag_sets.items()},
            "native_available": compiled_available,
            "repeats": repeats,
            "scenarios": [
                {
                    "kind": scenario.kind,
                    "name": scenario.name,
                    "parameter_values": dict(scenario.parameter_values),
                }
                for scenario in scenarios
            ],
            "schedules": list(schedules),
            "workers": workers,
        }
    )

    owns_session = session is None
    needs_session = any(name in backends for name in ("engine", "hybrid", "auto"))
    if owns_session and needs_session:
        session = RuntimeSession(workers=workers)
    try:
        for scenario in scenarios:
            reference = scenario.reference()
            report.rank_checks.append(check_rank_conformance(scenario, flag_sets))
            serial_seconds: Dict[str, float] = {}
            for schedule in schedules:
                spec = ScheduleSpec.parse(schedule)
                for backend in backends:
                    if backend in ("native", "hybrid") and not (
                        compiled_available and scenario.supports_native()
                    ):
                        continue  # unviable here: a skip, not a failure
                    labels = flag_sets if backend in FLAGGED_BACKENDS else {"default": ()}
                    for label, flags in labels.items():
                        cell = _run_cell(
                            scenario, spec, str(spec), backend, label, tuple(flags),
                            session, workers, repeats, reference, atol,
                        )
                        if backend == "compiled" and spec.kind is ScheduleKind.STATIC:
                            serial_seconds[scenario.name] = cell["seconds"]
                        report.cells.append(cell)
                        if not cell["ok"]:
                            report.mismatches.append(
                                {
                                    "array": cell.pop("failed_array", None),
                                    "backend": backend,
                                    "flags": label,
                                    "max_abs_diff": cell["max_abs_diff"],
                                    "scenario": scenario.name,
                                    "schedule": str(spec),
                                }
                            )
            baseline = serial_seconds.get(scenario.name)
            for cell in report.cells:
                if cell["scenario"] == scenario.name and baseline:
                    cell["gain_vs_serial"] = gain(baseline, cell["seconds"])
        for check in report.rank_checks:
            if not check["ok"]:
                report.mismatches.append(
                    {
                        "backend": "rank-recovery",
                        "failures": check["failures"],
                        "scenario": check["scenario"],
                    }
                )
    finally:
        if owns_session and session is not None:
            session.close()
    return report


def _run_cell(
    scenario, spec, schedule_text, backend, flag_label, flags,
    session, workers, repeats, reference, atol,
):
    """Execute one (scenario, schedule, backend, flags) cell; never raises."""
    cell: Dict[str, object] = {
        "backend": backend,
        "flags": flag_label,
        "gain_vs_serial": None,
        "kind": scenario.kind,
        "ok": True,
        "max_abs_diff": 0.0,
        "scenario": scenario.name,
        "schedule": schedule_text,
        "seconds": 0.0,
    }
    if backend == "auto":
        cell["resolved_backend"] = _resolved_auto(scenario, spec)
    timings: List[float] = []
    result = None
    try:
        for round_index in range(max(1, repeats)):
            started = time.perf_counter()
            if backend == "compiled":
                run = _run_compiled(scenario, spec, workers)
            elif backend == "native":
                run = _run_native(scenario, spec, workers, flags)
            else:
                run = _run_session(scenario, spec, backend, session, flags)
            timings.append(time.perf_counter() - started)
            if round_index == 0:
                result = run
    except Exception as error:  # a crashed substrate is a conformance failure
        cell["ok"] = False
        cell["error"] = f"{type(error).__name__}: {error}"
        cell["max_abs_diff"] = float("inf")
        cell["seconds"] = sum(timings) or 0.0
        return cell
    cell["seconds"] = min(timings)
    ok, worst, failed_array = _compare(reference, result, atol)
    cell["ok"] = ok
    cell["max_abs_diff"] = worst
    if failed_array is not None:
        cell["failed_array"] = failed_array
    return cell
