"""The control-overhead experiment of Fig. 10.

The paper compares two *serial* executions of each kernel: the original
nest, and the transformed (collapsed) nest in which the costly root
evaluations are performed 12 times — as they would be for 12 threads — and
every other iteration recovers its indices through the incrementation code.
The reported percentage is the extra control time of the transformed code.

In the simulated cost model this overhead has two parts:

* ``recoveries x costly_recovery`` — the 12 closed-form evaluations,
* ``collapsed_iterations x increment_penalty`` — the (small) extra cost of
  the generated incrementation and bound re-evaluation compared with the
  original loop control.

The relative overhead is therefore tiny when the collapsed loops surround a
deep compute loop (correlation, trmm, ...), and visibly larger when *all*
loops of the nest are collapsed so that every single statement instance pays
the extra control (covariance, symm in the paper's Fig. 10) — the same shape
the paper observes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

from ..core import CollapsedLoop, batch_recovery, resolve_recovery_backend
from ..ir import iteration_count
from ..openmp.costmodel import CostModel, RecoveryCosts


@dataclass(frozen=True)
class OverheadRow:
    """One bar of Fig. 10."""

    program: str
    serial_original: float
    serial_transformed: float
    recoveries: int

    @property
    def overhead(self) -> float:
        """Relative control overhead of the transformed serial code."""
        return (self.serial_transformed - self.serial_original) / self.serial_original


def recovery_overhead(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recoveries: int = 12,
    cost_model: Optional[CostModel] = None,
    increment_penalty: float = 0.02,
) -> OverheadRow:
    """Simulated Fig. 10 measurement for one collapsed kernel.

    ``recoveries`` is the number of costly root evaluations (12 in the paper,
    one per thread); ``increment_penalty`` is the extra cost, in units of
    ``unit_work``, of the generated incrementation relative to the original
    loop control, paid once per collapsed iteration.
    """
    cost_model = cost_model or CostModel(collapsed.nest)
    costs: RecoveryCosts = cost_model.costs
    total_work = cost_model.total_work(parameter_values)
    collapsed_iterations = iteration_count(collapsed.nest, parameter_values, collapsed.depth)

    serial_original = total_work
    serial_transformed = (
        total_work
        + recoveries * costs.costly_recovery
        + collapsed_iterations * increment_penalty * costs.unit_work
    )
    return OverheadRow(
        program=collapsed.nest.name,
        serial_original=serial_original,
        serial_transformed=serial_transformed,
        recoveries=recoveries,
    )


@dataclass(frozen=True)
class MeasuredRecovery:
    """Wall-clock throughput of one recovery back end over a collapsed loop.

    Where :func:`recovery_overhead` reports the paper's *simulated* Fig. 10
    quantity, this row reports what the Python reproduction actually pays to
    recover indices — the cost the compiled batch path exists to remove.
    """

    program: str
    recovery: str          # "symbolic" (per-pc closed forms) or "compiled" (batch)
    iterations: int
    elapsed_seconds: float

    @property
    def iterations_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.iterations / self.elapsed_seconds


def measure_recovery_throughput(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recovery: str = "compiled",
    repeat: int = 1,
) -> MeasuredRecovery:
    """Time the recovery of *every* index of the collapsed loop.

    ``recovery="symbolic"`` evaluates the closed-form roots once per ``pc``
    (the Fig. 3 cost the overhead experiment is about); ``"compiled"`` runs
    the vectorized batch path of :mod:`repro.core.batch` over the whole
    range.  The best of ``repeat`` runs is reported.  Both back ends produce
    identical indices, so the ratio of two measurements is a pure recovery
    speedup.
    """
    resolve_recovery_backend(recovery)
    total = collapsed.total_iterations(parameter_values)
    if recovery == "compiled":
        recoverer = batch_recovery(collapsed)

        def run() -> None:
            recoverer.recover_range(1, total, parameter_values)

    else:

        def run() -> None:
            for pc in range(1, total + 1):
                collapsed.recover_indices(pc, parameter_values)

    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return MeasuredRecovery(
        program=collapsed.nest.name,
        recovery=recovery,
        iterations=total,
        elapsed_seconds=best,
    )


@dataclass(frozen=True)
class MeasuredRun:
    """Wall-clock throughput of one *execution* path over a kernel.

    Completes :class:`MeasuredRecovery` one layer up: not just recovering the
    indices but actually running the kernel body through one of the three
    execution paths the repository provides — ``"serial"`` (the original
    lexicographic order), ``"inline"`` (collapsed chunks in this process,
    compiled recovery) and ``"engine"`` (the persistent shared-memory pool
    of :mod:`repro.runtime`).  Ratios between two rows of the same kernel
    and size are end-to-end speedups.
    """

    program: str
    mode: str
    iterations: int
    elapsed_seconds: float
    workers: int = 1

    @property
    def iterations_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.iterations / self.elapsed_seconds


#: the execution paths measure_execution_throughput understands
EXECUTION_MODES = ("serial", "inline", "engine")


def measure_execution_throughput(
    kernel,
    parameter_values: Mapping[str, int],
    mode: str = "engine",
    workers: int = 2,
    repeat: int = 1,
    session=None,
) -> MeasuredRun:
    """Time one execution path of a kernel; best of ``repeat`` runs.

    ``"engine"`` routes through a :class:`repro.runtime.RuntimeSession` and
    performs one untimed warm-up run so the measurement reflects the steady
    state the persistent runtime exists for — plan compiled, workers
    attached; the pool start-up cost is a property of the session, not of
    each run.  Without a caller-provided session a dedicated one is created
    (and torn down) for the measurement, so ``workers`` is always the pool
    size that actually ran — worker-scaling sweeps stay honest.  The serial
    and inline baselines are the untouched original paths.
    """
    from ..kernels.execution import run_collapsed_chunks, run_collapsed_engine, run_original

    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {EXECUTION_MODES}")
    collapsed = kernel.collapsed()
    total = collapsed.total_iterations(parameter_values)

    own_session = None
    try:
        if mode == "serial":
            run = lambda: run_original(kernel, parameter_values)
        elif mode == "inline":
            run = lambda: run_collapsed_chunks(
                kernel, parameter_values, threads=workers, recovery="compiled"
            )
            run()  # warm-up: compile the batch recovery, same footing as engine mode
        else:
            if session is None:
                from ..runtime import RuntimeSession

                session = own_session = RuntimeSession(workers=workers)
            run = lambda: run_collapsed_engine(
                kernel, parameter_values, workers=workers, session=session
            )
            run()  # warm-up: register the plan, attach the buffers

        best = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
    finally:
        if own_session is not None:
            own_session.close()
    return MeasuredRun(
        program=kernel.name,
        mode=mode,
        iterations=total,
        elapsed_seconds=best,
        workers=1 if mode == "serial" else (session.engine.workers if mode == "engine" else workers),
    )
