"""The control-overhead experiment of Fig. 10.

The paper compares two *serial* executions of each kernel: the original
nest, and the transformed (collapsed) nest in which the costly root
evaluations are performed 12 times — as they would be for 12 threads — and
every other iteration recovers its indices through the incrementation code.
The reported percentage is the extra control time of the transformed code.

In the simulated cost model this overhead has two parts:

* ``recoveries x costly_recovery`` — the 12 closed-form evaluations,
* ``collapsed_iterations x increment_penalty`` — the (small) extra cost of
  the generated incrementation and bound re-evaluation compared with the
  original loop control.

The relative overhead is therefore tiny when the collapsed loops surround a
deep compute loop (correlation, trmm, ...), and visibly larger when *all*
loops of the nest are collapsed so that every single statement instance pays
the extra control (covariance, symm in the paper's Fig. 10) — the same shape
the paper observes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

from ..core import CollapsedLoop, batch_recovery, resolve_recovery_backend
from ..ir import iteration_count
from ..openmp.costmodel import CostModel, RecoveryCosts


@dataclass(frozen=True)
class OverheadRow:
    """One bar of Fig. 10."""

    program: str
    serial_original: float
    serial_transformed: float
    recoveries: int

    @property
    def overhead(self) -> float:
        """Relative control overhead of the transformed serial code."""
        return (self.serial_transformed - self.serial_original) / self.serial_original


def recovery_overhead(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recoveries: int = 12,
    cost_model: Optional[CostModel] = None,
    increment_penalty: float = 0.02,
) -> OverheadRow:
    """Simulated Fig. 10 measurement for one collapsed kernel.

    ``recoveries`` is the number of costly root evaluations (12 in the paper,
    one per thread); ``increment_penalty`` is the extra cost, in units of
    ``unit_work``, of the generated incrementation relative to the original
    loop control, paid once per collapsed iteration.
    """
    cost_model = cost_model or CostModel(collapsed.nest)
    costs: RecoveryCosts = cost_model.costs
    total_work = cost_model.total_work(parameter_values)
    collapsed_iterations = iteration_count(collapsed.nest, parameter_values, collapsed.depth)

    serial_original = total_work
    serial_transformed = (
        total_work
        + recoveries * costs.costly_recovery
        + collapsed_iterations * increment_penalty * costs.unit_work
    )
    return OverheadRow(
        program=collapsed.nest.name,
        serial_original=serial_original,
        serial_transformed=serial_transformed,
        recoveries=recoveries,
    )


@dataclass(frozen=True)
class MeasuredRecovery:
    """Wall-clock throughput of one recovery back end over a collapsed loop.

    Where :func:`recovery_overhead` reports the paper's *simulated* Fig. 10
    quantity, this row reports what the Python reproduction actually pays to
    recover indices — the cost the compiled batch path exists to remove.
    """

    program: str
    recovery: str          # "symbolic" (per-pc closed forms) or "compiled" (batch)
    iterations: int
    elapsed_seconds: float

    @property
    def iterations_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.iterations / self.elapsed_seconds


def measure_recovery_throughput(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recovery: str = "compiled",
    repeat: int = 1,
) -> MeasuredRecovery:
    """Time the recovery of *every* index of the collapsed loop.

    ``recovery="symbolic"`` evaluates the closed-form roots once per ``pc``
    (the Fig. 3 cost the overhead experiment is about); ``"compiled"`` runs
    the vectorized batch path of :mod:`repro.core.batch` over the whole
    range.  The best of ``repeat`` runs is reported.  Both back ends produce
    identical indices, so the ratio of two measurements is a pure recovery
    speedup.
    """
    resolve_recovery_backend(recovery)
    total = collapsed.total_iterations(parameter_values)
    if recovery == "compiled":
        recoverer = batch_recovery(collapsed)

        def run() -> None:
            recoverer.recover_range(1, total, parameter_values)

    else:

        def run() -> None:
            for pc in range(1, total + 1):
                collapsed.recover_indices(pc, parameter_values)

    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return MeasuredRecovery(
        program=collapsed.nest.name,
        recovery=recovery,
        iterations=total,
        elapsed_seconds=best,
    )
