"""The control-overhead experiment of Fig. 10.

The paper compares two *serial* executions of each kernel: the original
nest, and the transformed (collapsed) nest in which the costly root
evaluations are performed 12 times — as they would be for 12 threads — and
every other iteration recovers its indices through the incrementation code.
The reported percentage is the extra control time of the transformed code.

In the simulated cost model this overhead has two parts:

* ``recoveries x costly_recovery`` — the 12 closed-form evaluations,
* ``collapsed_iterations x increment_penalty`` — the (small) extra cost of
  the generated incrementation and bound re-evaluation compared with the
  original loop control.

The relative overhead is therefore tiny when the collapsed loops surround a
deep compute loop (correlation, trmm, ...), and visibly larger when *all*
loops of the nest are collapsed so that every single statement instance pays
the extra control (covariance, symm in the paper's Fig. 10) — the same shape
the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core import CollapsedLoop
from ..ir import iteration_count
from ..openmp.costmodel import CostModel, RecoveryCosts


@dataclass(frozen=True)
class OverheadRow:
    """One bar of Fig. 10."""

    program: str
    serial_original: float
    serial_transformed: float
    recoveries: int

    @property
    def overhead(self) -> float:
        """Relative control overhead of the transformed serial code."""
        return (self.serial_transformed - self.serial_original) / self.serial_original


def recovery_overhead(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recoveries: int = 12,
    cost_model: Optional[CostModel] = None,
    increment_penalty: float = 0.02,
) -> OverheadRow:
    """Simulated Fig. 10 measurement for one collapsed kernel.

    ``recoveries`` is the number of costly root evaluations (12 in the paper,
    one per thread); ``increment_penalty`` is the extra cost, in units of
    ``unit_work``, of the generated incrementation relative to the original
    loop control, paid once per collapsed iteration.
    """
    cost_model = cost_model or CostModel(collapsed.nest)
    costs: RecoveryCosts = cost_model.costs
    total_work = cost_model.total_work(parameter_values)
    collapsed_iterations = iteration_count(collapsed.nest, parameter_values, collapsed.depth)

    serial_original = total_work
    serial_transformed = (
        total_work
        + recoveries * costs.costly_recovery
        + collapsed_iterations * increment_penalty * costs.unit_work
    )
    return OverheadRow(
        program=collapsed.nest.name,
        serial_original=serial_original,
        serial_transformed=serial_transformed,
        recoveries=recoveries,
    )
