"""Deterministic simulated-time execution of OpenMP schedules.

The simulator reproduces the *scheduling* behaviour the paper measures
without needing real threads (which the GIL would serialise anyway):

* every iteration of the parallel loop has a work amount given by the
  :class:`~repro.openmp.costmodel.CostModel` (the trip count of the loops
  below the parallel level),
* a schedule assigns chunks of those iterations to threads — statically, or
  greedily ("whoever is idle first") for dynamic/guided schedules, which is
  how an OpenMP runtime behaves,
* overheads are charged where the real runtime pays them: one costly index
  recovery per chunk of a collapsed loop, one odometer increment per
  additional collapsed iteration, one dispatch per dynamically acquired
  chunk.

The result records per-thread busy times, from which the makespan, the load
imbalance of Fig. 2 and the gains of Fig. 9 are derived.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import CollapsedLoop, RecoveryStrategy
from ..ir import LoopNest, enumerate_iterations
from .costmodel import CostModel, RecoveryCosts
from .schedule import Chunk, ScheduleKind, dynamic_chunks, guided_chunks, static_chunked_schedule, static_schedule


@dataclass
class ThreadTimeline:
    """What one simulated thread did: how long it was busy and on what."""

    thread: int
    busy_time: float = 0.0
    work_time: float = 0.0
    overhead_time: float = 0.0
    iterations: int = 0
    chunks: int = 0


@dataclass
class SimulationResult:
    """Outcome of one simulated parallel execution."""

    description: str
    threads: int
    timelines: List[ThreadTimeline]
    serial_time: float

    @property
    def makespan(self) -> float:
        """The simulated parallel execution time (the slowest thread)."""
        return max((t.busy_time for t in self.timelines), default=0.0)

    @property
    def total_busy(self) -> float:
        return sum(t.busy_time for t in self.timelines)

    @property
    def total_overhead(self) -> float:
        return sum(t.overhead_time for t in self.timelines)

    @property
    def load_imbalance(self) -> float:
        """Makespan divided by the mean busy time (1.0 = perfectly balanced)."""
        active = [t.busy_time for t in self.timelines if t.busy_time > 0]
        if not active:
            return 1.0
        mean = sum(active) / len(self.timelines)
        return self.makespan / mean if mean else 1.0

    @property
    def speedup(self) -> float:
        """Speed-up of the simulated parallel run over the serial execution."""
        return self.serial_time / self.makespan if self.makespan else float("inf")

    def iterations_per_thread(self) -> List[int]:
        return [t.iterations for t in self.timelines]

    def busy_times(self) -> List[float]:
        return [t.busy_time for t in self.timelines]


# ---------------------------------------------------------------------- #
# helpers
# ---------------------------------------------------------------------- #
def _greedy_assign(
    chunk_costs: Sequence[Tuple[Chunk, float, float]],
    threads: int,
) -> List[ThreadTimeline]:
    """Assign chunks to the earliest-available thread (dynamic/guided schedules).

    ``chunk_costs`` lists ``(chunk, work, overhead)`` in hand-out order; the
    overhead (dispatch + recovery) is charged to the acquiring thread.
    """
    timelines = [ThreadTimeline(thread=t) for t in range(threads)]
    heap = [(0.0, t) for t in range(threads)]
    heapq.heapify(heap)
    for chunk, work, overhead in chunk_costs:
        available, thread = heapq.heappop(heap)
        timeline = timelines[thread]
        timeline.busy_time = available + work + overhead
        timeline.work_time += work
        timeline.overhead_time += overhead
        timeline.iterations += chunk.size
        timeline.chunks += 1
        heapq.heappush(heap, (timeline.busy_time, thread))
    return timelines


def _static_assign(
    chunk_costs: Sequence[Tuple[Chunk, float, float]],
    threads: int,
) -> List[ThreadTimeline]:
    """Accumulate pre-assigned chunks on their threads (static schedules)."""
    timelines = [ThreadTimeline(thread=t) for t in range(threads)]
    for chunk, work, overhead in chunk_costs:
        if chunk.thread is None:
            raise ValueError("static assignment requires chunks with a thread")
        timeline = timelines[chunk.thread]
        timeline.busy_time += work + overhead
        timeline.work_time += work
        timeline.overhead_time += overhead
        timeline.iterations += chunk.size
        timeline.chunks += 1
    return timelines


def _make_chunks(
    kind: ScheduleKind, total: int, threads: int, chunk_size: Optional[int]
) -> Tuple[List[Chunk], bool]:
    """Build the chunk list; returns (chunks, dynamically_assigned)."""
    if kind is ScheduleKind.STATIC:
        return static_schedule(total, threads), False
    if kind is ScheduleKind.STATIC_CHUNKED:
        return static_chunked_schedule(total, threads, chunk_size or 1), False
    if kind is ScheduleKind.DYNAMIC:
        return dynamic_chunks(total, chunk_size or 1), True
    if kind is ScheduleKind.GUIDED:
        return guided_chunks(total, threads, chunk_size or 1), True
    raise ValueError(f"unknown schedule kind {kind}")


# ---------------------------------------------------------------------- #
# original nest, parallelised on its outermost loop
# ---------------------------------------------------------------------- #
def simulate_outer_parallel(
    nest: LoopNest,
    parameter_values: Mapping[str, int],
    threads: int,
    schedule: ScheduleKind = ScheduleKind.STATIC,
    chunk_size: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    work_function: Optional[callable] = None,
) -> SimulationResult:
    """Simulate ``#pragma omp parallel for schedule(...)`` on the outermost loop.

    This is the baseline of the paper's experiments: the outer loop's
    iterations (whose individual costs differ wildly on non-rectangular
    domains) are distributed according to ``schedule``.

    ``work_function`` optionally overrides the cost model with a callable
    taking the outer iterator value and returning its work (used by the
    tiled kernels, whose per-tile work is not a polynomial of the tile
    indices).
    """
    cost_model = cost_model or CostModel(nest)
    costs = cost_model.costs
    work_of = work_function or cost_model.compile_work(1, parameter_values)
    outer_values = [indices[0] for indices in enumerate_iterations(nest, parameter_values, depth=1)]
    total = len(outer_values)
    serial_time = sum(work_of(value) for value in outer_values)

    chunks, dynamic = _make_chunks(schedule, total, threads, chunk_size)
    chunk_costs: List[Tuple[Chunk, float, float]] = []
    for chunk in chunks:
        work = sum(work_of(outer_values[index]) for index in range(chunk.first - 1, chunk.last))
        overhead = costs.dynamic_dispatch if dynamic else 0.0
        chunk_costs.append((chunk, work, overhead))

    timelines = _greedy_assign(chunk_costs, threads) if dynamic else _static_assign(chunk_costs, threads)
    label = schedule.value + (f",{chunk_size}" if chunk_size else "")
    return SimulationResult(
        description=f"{nest.name}: outer loop, schedule({label}), {threads} threads",
        threads=threads,
        timelines=timelines,
        serial_time=serial_time,
    )


# ---------------------------------------------------------------------- #
# collapsed loop
# ---------------------------------------------------------------------- #
def simulate_collapsed_static(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    threads: int,
    schedule: ScheduleKind = ScheduleKind.STATIC,
    chunk_size: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    recovery: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    work_function: Optional[callable] = None,
) -> SimulationResult:
    """Simulate the collapsed ``pc`` loop under an OpenMP schedule.

    Every collapsed iteration's work is the trip count of the loops below the
    collapse depth; the recovery overhead is charged according to Section V:
    one costly recovery per chunk plus one odometer increment per further
    iteration (or one costly recovery per iteration with
    ``RecoveryStrategy.PER_ITERATION``, the Fig. 3 scheme).

    ``work_function`` optionally overrides the cost model with a callable
    taking the collapsed iterators as positional arguments (used by the tiled
    kernels).
    """
    nest = collapsed.nest
    cost_model = cost_model or CostModel(nest)
    costs = cost_model.costs
    depth = collapsed.depth
    work_of = work_function or cost_model.compile_work(depth, parameter_values)

    tuples = list(enumerate_iterations(nest, parameter_values, depth))
    total = len(tuples)
    serial_time = sum(work_of(*indices) for indices in tuples)

    chunks, dynamic = _make_chunks(schedule, total, threads, chunk_size)
    chunk_costs: List[Tuple[Chunk, float, float]] = []
    for chunk in chunks:
        work = sum(work_of(*tuples[index]) for index in range(chunk.first - 1, chunk.last))
        if recovery is RecoveryStrategy.PER_ITERATION:
            overhead = costs.costly_recovery * chunk.size
        else:
            overhead = costs.costly_recovery + costs.increment * (chunk.size - 1)
        if dynamic:
            overhead += costs.dynamic_dispatch
        chunk_costs.append((chunk, work, overhead))

    timelines = _greedy_assign(chunk_costs, threads) if dynamic else _static_assign(chunk_costs, threads)
    label = schedule.value + (f",{chunk_size}" if chunk_size else "")
    return SimulationResult(
        description=(
            f"{nest.name}: collapsed({depth}), schedule({label}), "
            f"{threads} threads, {recovery.value} recovery"
        ),
        threads=threads,
        timelines=timelines,
        serial_time=serial_time,
    )
