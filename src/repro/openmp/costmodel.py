"""Cost models: how long an iteration of the parallel loop takes.

The simulated-time executor needs, for every iteration of the parallel loop
(an outer-loop iteration of the original nest, or one ``pc`` of the
collapsed loop), the amount of work it performs.  For the kernels of the
paper this is simply the number of iterations of the loops *below* the
parallel level, times a per-innermost-iteration unit cost — exactly the
quantity our Ehrhart machinery computes symbolically.

:class:`RecoveryCosts` collects the constant costs of the collapsing
machinery and of the OpenMP runtime that the experiments reason about:

* ``costly_recovery`` — one evaluation of the closed-form roots
  (square/cube roots, floors, complex arithmetic; Section V calls this the
  costly recovery),
* ``increment`` — the *extra* control cost of one collapsed iteration
  compared with the original loop's own index increment (the generated
  Fig. 4 incrementation re-evaluates affine bounds, the original loop does
  not); this is what makes Fig. 10's overhead visible when every collapsed
  iteration is a single statement,
* ``dynamic_dispatch`` — the runtime cost a thread pays to grab the next
  chunk under ``schedule(dynamic)``,
* ``unit_work`` — the cost of one innermost-statement execution, the scale
  against which everything else is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence

from ..ir import LoopNest
from ..polyhedra.counting import loop_nest_count
from ..symbolic import Polynomial


@dataclass(frozen=True)
class RecoveryCosts:
    """Constant costs (in arbitrary time units; ``unit_work`` sets the scale)."""

    unit_work: float = 1.0
    costly_recovery: float = 40.0
    increment: float = 0.15
    dynamic_dispatch: float = 25.0
    parallel_startup: float = 0.0

    def scaled(self, factor: float) -> "RecoveryCosts":
        """A copy with every overhead multiplied by ``factor`` (ablation helper)."""
        return RecoveryCosts(
            unit_work=self.unit_work,
            costly_recovery=self.costly_recovery * factor,
            increment=self.increment * factor,
            dynamic_dispatch=self.dynamic_dispatch * factor,
            parallel_startup=self.parallel_startup * factor,
        )

    def calibrated(self, profile) -> "RecoveryCosts":
        """These costs re-expressed in *measured seconds* from a warm profile.

        ``profile`` is a :class:`~repro.runtime.profile.BackendProfile`
        (or anything with its ``seconds_per_iteration()`` method): the
        measured wall-clock cost of one collapsed iteration replaces the
        a-priori ``unit_work``, and every constant overhead is rescaled by
        the same ratio so the model's *relative* structure — recovery is
        ~40 units, dispatch ~25, and so on — survives the change of unit.
        This is the measure half of the paper's measure→schedule loop: a
        cost model calibrated this way prices chunks in real seconds on
        the machine that produced the profile.  Returns ``self`` unchanged
        when the profile carries no usable measurement (cold store,
        zero-size chunks) or when ``unit_work`` is non-positive — the
        degradation contract is "fall back to the analytic model", never
        an exception.
        """
        seconds = profile.seconds_per_iteration() if profile is not None else None
        if not seconds or seconds <= 0.0 or self.unit_work <= 0.0:
            return self
        ratio = seconds / self.unit_work
        return RecoveryCosts(
            unit_work=seconds,
            costly_recovery=self.costly_recovery * ratio,
            increment=self.increment * ratio,
            dynamic_dispatch=self.dynamic_dispatch * ratio,
            parallel_startup=self.parallel_startup * ratio,
        )


class CostModel:
    """Per-iteration work of a nest, below a given parallel/collapse level.

    ``work_below(level)`` is the symbolic number of innermost iterations
    executed for one fixed assignment of the first ``level`` iterators — the
    Ehrhart polynomial of the remaining sub-nest.  Evaluated numerically it
    gives the weight of one parallel-loop iteration, which is what produces
    the triangular load imbalance of Fig. 2.
    """

    def __init__(self, nest: LoopNest, costs: Optional[RecoveryCosts] = None):
        self.nest = nest
        self.costs = costs or RecoveryCosts()
        self._work_cache: Dict[int, Polynomial] = {}

    # ------------------------------------------------------------------ #
    # symbolic views
    # ------------------------------------------------------------------ #
    def work_below(self, level: int) -> Polynomial:
        """Inner-iteration count below ``level`` (0 <= level <= depth).

        ``level = 0`` gives the whole nest's trip count; ``level = depth``
        gives the constant 1 (the statement itself).
        """
        if not 0 <= level <= self.nest.depth:
            raise ValueError(f"level must be in 0..{self.nest.depth}")
        if level not in self._work_cache:
            remaining = self.nest.bounds()[level:]
            self._work_cache[level] = (
                loop_nest_count(remaining) if remaining else Polynomial.constant(1)
            )
        return self._work_cache[level]

    # ------------------------------------------------------------------ #
    # numeric views
    # ------------------------------------------------------------------ #
    def _evaluate(self, polynomial: Polynomial, assignment: Mapping[str, int]) -> float:
        value = polynomial.evaluate(assignment)
        if isinstance(value, Fraction):
            value = float(value)
        return max(0.0, float(value))

    def iteration_work(
        self,
        indices: Sequence[int],
        parameter_values: Mapping[str, int],
        level: Optional[int] = None,
    ) -> float:
        """Work (inner iterations x unit cost) of one parallel-loop iteration.

        ``indices`` are the values of the first ``level`` iterators (default:
        as many as provided).
        """
        level = len(indices) if level is None else level
        assignment: Dict[str, int] = {name: int(v) for name, v in parameter_values.items()}
        assignment.update({name: int(v) for name, v in zip(self.nest.iterators, indices)})
        inner = self._evaluate(self.work_below(level), assignment)
        return inner * self.costs.unit_work

    def total_work(self, parameter_values: Mapping[str, int]) -> float:
        """Work of the entire nest (the lower bound any schedule must reach)."""
        return self._evaluate(self.work_below(0), parameter_values) * self.costs.unit_work

    def compile_work(self, level: int, parameter_values: Mapping[str, int]):
        """Compile ``work_below(level)`` into a fast numeric callable.

        The returned function takes the first ``level`` iterator values as
        positional arguments and returns the work of that parallel-loop
        iteration.  The simulator calls it once per iteration, so the
        polynomial is turned into plain Python arithmetic instead of being
        re-evaluated through exact rational arithmetic every time.
        """
        polynomial = self.work_below(level).evaluate_partial(dict(parameter_values))
        iterators = ", ".join(self.nest.iterators[:level]) or "_ignored=0"
        source = (
            f"def _work({iterators}):\n"
            f"    return max(0.0, float({polynomial.to_python_source()})) * {float(self.costs.unit_work)!r}\n"
        )
        namespace: Dict[str, object] = {}
        exec(compile(source, "<costmodel>", "exec"), namespace)
        return namespace["_work"]
