"""OpenMP loop schedules as explicit chunk lists.

A *chunk* is a contiguous range of iterations of the parallel loop (either
the outermost original loop or the collapsed ``pc`` loop), identified by its
1-based inclusive bounds.  The three schedule families of the paper's
experiments are provided:

* ``static`` — one contiguous block per thread (OpenMP's default static
  schedule, the blue baseline of Fig. 9),
* ``static, chunk`` — fixed-size chunks dealt round-robin,
* ``dynamic, chunk`` — fixed-size chunks handed to threads on demand; the
  assignment happens in the simulator, this module only cuts the chunks,
* ``guided`` — geometrically decreasing chunks (provided for completeness
  and used by the schedule-ablation benchmark).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional


class ScheduleKind(enum.Enum):
    """The OpenMP ``schedule`` clauses modelled by the simulator."""

    STATIC = "static"
    STATIC_CHUNKED = "static_chunked"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class Chunk:
    """A contiguous block of parallel-loop iterations, 1-based and inclusive."""

    first: int
    last: int
    thread: Optional[int] = None   # pre-assigned thread (static schedules only)

    def __post_init__(self):
        if self.last < self.first:
            raise ValueError(f"empty chunk [{self.first}, {self.last}]")

    @property
    def size(self) -> int:
        return self.last - self.first + 1


def static_schedule(total: int, threads: int) -> List[Chunk]:
    """OpenMP ``schedule(static)``: one near-equal contiguous block per thread.

    Mirrors the usual OpenMP runtime behaviour: the first ``total % threads``
    threads receive one extra iteration.  Threads whose block would be empty
    receive no chunk.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    if total < 0:
        raise ValueError("total must be non-negative")
    chunks: List[Chunk] = []
    base, remainder = divmod(total, threads)
    start = 1
    for thread in range(threads):
        size = base + (1 if thread < remainder else 0)
        if size == 0:
            continue
        chunks.append(Chunk(first=start, last=start + size - 1, thread=thread))
        start += size
    return chunks


def static_chunked_schedule(total: int, threads: int, chunk_size: int) -> List[Chunk]:
    """OpenMP ``schedule(static, chunk)``: fixed chunks dealt round-robin."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if threads < 1:
        raise ValueError("threads must be at least 1")
    chunks: List[Chunk] = []
    index = 0
    start = 1
    while start <= total:
        end = min(start + chunk_size - 1, total)
        chunks.append(Chunk(first=start, last=end, thread=index % threads))
        index += 1
        start = end + 1
    return chunks


def dynamic_chunks(total: int, chunk_size: int) -> List[Chunk]:
    """OpenMP ``schedule(dynamic, chunk)``: the chunks, in hand-out order.

    Thread assignment is decided at run time by whichever thread is idle; the
    simulator performs that greedy assignment, so the chunks carry no thread.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    chunks: List[Chunk] = []
    start = 1
    while start <= total:
        end = min(start + chunk_size - 1, total)
        chunks.append(Chunk(first=start, last=end))
        start = end + 1
    return chunks


def guided_chunks(total: int, threads: int, min_chunk: int = 1) -> List[Chunk]:
    """OpenMP ``schedule(guided)``: each chunk is ``remaining / threads`` large,
    never smaller than ``min_chunk``."""
    if threads < 1:
        raise ValueError("threads must be at least 1")
    if min_chunk < 1:
        raise ValueError("min_chunk must be at least 1")
    chunks: List[Chunk] = []
    start = 1
    remaining = total
    while remaining > 0:
        size = max(min_chunk, math.ceil(remaining / threads))
        size = min(size, remaining)
        chunks.append(Chunk(first=start, last=start + size - 1))
        start += size
        remaining -= size
    return chunks
