"""OpenMP loop schedules as explicit chunk lists.

A *chunk* is a contiguous range of iterations of the parallel loop (either
the outermost original loop or the collapsed ``pc`` loop), identified by its
1-based inclusive bounds.  The three schedule families of the paper's
experiments are provided:

* ``static`` — one contiguous block per thread (OpenMP's default static
  schedule, the blue baseline of Fig. 9),
* ``static, chunk`` — fixed-size chunks dealt round-robin,
* ``dynamic, chunk`` — fixed-size chunks handed to threads on demand; the
  assignment happens in the simulator, this module only cuts the chunks,
* ``guided`` — geometrically decreasing chunks (provided for completeness
  and used by the schedule-ablation benchmark).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Union


class ScheduleKind(enum.Enum):
    """The OpenMP ``schedule`` clauses modelled by the simulator.

    ``ADAPTIVE`` is this reproduction's own extension: chunks sized by the
    cost model so each carries near-equal estimated *work* rather than an
    equal iteration count (see :mod:`repro.runtime.plan`).  It has no OpenMP
    spelling, so the C code generator rejects it.
    """

    STATIC = "static"
    STATIC_CHUNKED = "static_chunked"
    DYNAMIC = "dynamic"
    GUIDED = "guided"
    ADAPTIVE = "adaptive"

    @classmethod
    def from_string(cls, text: Union[str, "ScheduleKind"]) -> "ScheduleKind":
        """Parse a schedule name — the one parser every layer shares.

        Accepts the enum values themselves, the OpenMP clause spellings
        (``"static"``, ``"dynamic"``, ``"guided"``), a trailing chunk size
        (``"dynamic,4"`` — which turns plain ``static`` into
        ``STATIC_CHUNKED``, exactly like the OpenMP clause does), and is
        case/whitespace insensitive.  Used by
        :func:`repro.core.generate_openmp_collapsed`, the executor and the
        runtime engine instead of three ad-hoc string checks.
        """
        return ScheduleSpec.parse(text).kind

    def to_openmp(self) -> str:
        """The OpenMP clause spelling (``STATIC_CHUNKED`` is ``static`` + chunk)."""
        if self is ScheduleKind.ADAPTIVE:
            raise ValueError(
                "schedule 'adaptive' is a runtime-engine policy with no OpenMP spelling"
            )
        return "static" if self is ScheduleKind.STATIC_CHUNKED else self.value


@dataclass(frozen=True)
class ScheduleSpec:
    """A fully parsed schedule clause: the kind plus its optional chunk size.

    This is what ``schedule(dynamic, 4)`` is to OpenMP: the policy *and* its
    granularity, carried together so every runner can report the schedule it
    actually executed (:class:`repro.openmp.executor.ParallelRunResult`,
    :class:`repro.runtime.engine.EngineRunResult`).
    """

    kind: ScheduleKind
    chunk_size: Optional[int] = None

    def __post_init__(self):
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk size must be at least 1, got {self.chunk_size}")

    @classmethod
    def parse(cls, text: Union[str, ScheduleKind, "ScheduleSpec"]) -> "ScheduleSpec":
        """Parse ``"static"``, ``"dynamic,4"``, ``"guided, 2"``, a kind, or a spec."""
        if isinstance(text, ScheduleSpec):
            return text
        if isinstance(text, ScheduleKind):
            return cls(kind=text)
        if not isinstance(text, str):
            raise ValueError(f"cannot parse schedule from {text!r}")
        head, _sep, tail = text.strip().lower().partition(",")
        chunk: Optional[int] = None
        if tail.strip():
            try:
                chunk = int(tail.strip())
            except ValueError:
                raise ValueError(f"invalid chunk size in schedule {text!r}") from None
        aliases = {kind.value: kind for kind in ScheduleKind}
        kind = aliases.get(head.strip())
        if kind is None:
            raise ValueError(
                f"unknown schedule {text!r}; expected one of {sorted(aliases)} "
                "with an optional ',chunk' suffix"
            )
        if kind is ScheduleKind.STATIC and chunk is not None:
            kind = ScheduleKind.STATIC_CHUNKED
        return cls(kind=kind, chunk_size=chunk)

    def to_openmp(self) -> str:
        """The text inside an OpenMP ``schedule(...)`` clause."""
        base = self.kind.to_openmp()
        return f"{base}, {self.chunk_size}" if self.chunk_size is not None else base

    def __str__(self) -> str:
        if self.chunk_size is not None:
            return f"{self.kind.value},{self.chunk_size}"
        return self.kind.value


def schedule_chunks(spec: Union[str, ScheduleKind, ScheduleSpec], total: int, threads: int) -> List[Chunk]:
    """Cut ``[1, total]`` into chunks according to a parsed schedule.

    The single dispatch point of the three classic OpenMP families; the
    cost-model-driven ``ADAPTIVE`` policy needs a collapsed loop and lives in
    :func:`repro.runtime.plan.adaptive_chunks`.
    """
    spec = ScheduleSpec.parse(spec)
    if spec.kind is ScheduleKind.STATIC:
        return static_schedule(total, threads)
    if spec.kind is ScheduleKind.STATIC_CHUNKED:
        return static_chunked_schedule(total, threads, spec.chunk_size or 1)
    if spec.kind is ScheduleKind.DYNAMIC:
        return dynamic_chunks(total, spec.chunk_size or 1)
    if spec.kind is ScheduleKind.GUIDED:
        return guided_chunks(total, threads, spec.chunk_size or 1)
    raise ValueError(
        f"schedule {spec.kind.value!r} needs a cost model; build chunks through "
        "repro.runtime (ExecutionPlan.chunks)"
    )


@dataclass(frozen=True)
class Chunk:
    """A contiguous block of parallel-loop iterations, 1-based and inclusive."""

    first: int
    last: int
    thread: Optional[int] = None   # pre-assigned thread (static schedules only)

    def __post_init__(self):
        if self.last < self.first:
            raise ValueError(f"empty chunk [{self.first}, {self.last}]")

    @property
    def size(self) -> int:
        return self.last - self.first + 1


def static_schedule(total: int, threads: int) -> List[Chunk]:
    """OpenMP ``schedule(static)``: one near-equal contiguous block per thread.

    Mirrors the usual OpenMP runtime behaviour: the first ``total % threads``
    threads receive one extra iteration.  Threads whose block would be empty
    receive no chunk.
    """
    if threads < 1:
        raise ValueError("threads must be at least 1")
    if total < 0:
        raise ValueError("total must be non-negative")
    chunks: List[Chunk] = []
    base, remainder = divmod(total, threads)
    start = 1
    for thread in range(threads):
        size = base + (1 if thread < remainder else 0)
        if size == 0:
            continue
        chunks.append(Chunk(first=start, last=start + size - 1, thread=thread))
        start += size
    return chunks


def static_chunked_schedule(total: int, threads: int, chunk_size: int) -> List[Chunk]:
    """OpenMP ``schedule(static, chunk)``: fixed chunks dealt round-robin."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if threads < 1:
        raise ValueError("threads must be at least 1")
    chunks: List[Chunk] = []
    index = 0
    start = 1
    while start <= total:
        end = min(start + chunk_size - 1, total)
        chunks.append(Chunk(first=start, last=end, thread=index % threads))
        index += 1
        start = end + 1
    return chunks


def dynamic_chunks(total: int, chunk_size: int) -> List[Chunk]:
    """OpenMP ``schedule(dynamic, chunk)``: the chunks, in hand-out order.

    Thread assignment is decided at run time by whichever thread is idle; the
    simulator performs that greedy assignment, so the chunks carry no thread.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    chunks: List[Chunk] = []
    start = 1
    while start <= total:
        end = min(start + chunk_size - 1, total)
        chunks.append(Chunk(first=start, last=end))
        start = end + 1
    return chunks


def guided_chunks(total: int, threads: int, min_chunk: int = 1) -> List[Chunk]:
    """OpenMP ``schedule(guided)``: each chunk is ``remaining / threads`` large,
    never smaller than ``min_chunk``."""
    if threads < 1:
        raise ValueError("threads must be at least 1")
    if min_chunk < 1:
        raise ValueError("min_chunk must be at least 1")
    chunks: List[Chunk] = []
    start = 1
    remaining = total
    while remaining > 0:
        size = max(min_chunk, math.ceil(remaining / threads))
        size = min(size, remaining)
        chunks.append(Chunk(first=start, last=start + size - 1))
        start += size
        remaining -= size
    return chunks
