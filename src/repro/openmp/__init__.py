"""OpenMP-style scheduling substrate.

The paper's evaluation compares three ways of running a non-rectangular
parallel nest on 12 threads:

* the original nest with its outermost loop distributed by a *static*
  schedule (Fig. 2 — heavy load imbalance on triangular domains),
* the original nest with a *dynamic* schedule (better balance, but per-chunk
  dispatch overhead),
* the collapsed nest with a static schedule (the paper's contribution:
  near-perfect balance and no dispatch overhead, at the price of the index
  recovery computation, amortised as in Section V).

Python's GIL prevents measuring these effects with real threads, so this
package provides two substitutes (see README.md):

* :mod:`repro.openmp.simulator` — a deterministic simulated-time executor:
  iterations have costs given by a :mod:`cost model <repro.openmp.costmodel>`
  derived from the kernel's inner trip counts, chunks are assigned to
  threads exactly like the corresponding OpenMP schedule would, and the
  makespan / per-thread load / overhead are computed analytically,
* :mod:`repro.openmp.executor` — a real ``multiprocessing`` executor used by
  the wall-clock spot-check benchmark on coarse-grained kernels.
"""

from .schedule import (
    Chunk,
    ScheduleKind,
    ScheduleSpec,
    schedule_chunks,
    static_schedule,
    static_chunked_schedule,
    dynamic_chunks,
    guided_chunks,
)
from .costmodel import CostModel, RecoveryCosts
from .simulator import SimulationResult, ThreadTimeline, simulate_collapsed_static, simulate_outer_parallel
from .executor import run_chunks_in_processes, run_collapsed_inline, run_serial

__all__ = [
    "Chunk",
    "ScheduleKind",
    "ScheduleSpec",
    "schedule_chunks",
    "static_schedule",
    "static_chunked_schedule",
    "dynamic_chunks",
    "guided_chunks",
    "CostModel",
    "RecoveryCosts",
    "SimulationResult",
    "ThreadTimeline",
    "simulate_collapsed_static",
    "simulate_outer_parallel",
    "run_chunks_in_processes",
    "run_collapsed_inline",
    "run_serial",
]
