"""Real parallel execution through ``multiprocessing``.

Python threads cannot exhibit the scheduling gains the paper measures (the
GIL serialises compute-bound threads), so the wall-clock spot check uses
processes instead: the collapsed iteration range ``[1, total]`` is split
into per-worker chunks exactly like an OpenMP static schedule, and each
worker runs its chunk through a user-provided top-level function.

The worker function receives ``(first_pc, last_pc, parameter_values)`` and
must be importable (picklable); it typically rebuilds the collapsed loop or
uses the generated Python code to walk its chunk over NumPy data.  Workers
return their partial results, which the caller combines — a deliberate
"share nothing" structure, since fork-based shared mutable arrays would not
add anything to what the benchmark measures (per-chunk wall-clock time).

:func:`run_collapsed_inline` complements the process pool: it walks the same
chunk partition in the current process with a selectable index-recovery back
end (``recovery="compiled"`` for the vectorized batch path of
:mod:`repro.core.batch`, ``"symbolic"`` for the paper's scalar scheme).
Compiled recovery functions are ``exec``-generated and therefore not
picklable, which is why the compiled back end lives on the inline runner —
workers that want it rebuild their batch recovery after the fork, hitting
the module-level memo caches.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from .schedule import Chunk, ScheduleKind, ScheduleSpec, schedule_chunks, static_schedule

WorkerFunction = Callable[[int, int, Mapping[str, int]], Any]

#: the schedule every runner reports unless told otherwise — a plain OpenMP
#: static split, which is also what a serial run is: one static chunk.
_STATIC = ScheduleSpec(ScheduleKind.STATIC)


@dataclass(frozen=True)
class ParallelRunResult:
    """Wall-clock outcome of a multiprocessing run.

    ``schedule`` records the schedule the run actually executed under, so
    speedup math never has to guess: a serial baseline reports a real
    single-chunk static schedule, not an implicit one.
    """

    results: Tuple[Any, ...]
    elapsed_seconds: float
    chunks: Tuple[Chunk, ...]
    workers: int
    schedule: ScheduleSpec = _STATIC


def run_serial(worker: WorkerFunction, total: int, parameter_values: Mapping[str, int]) -> ParallelRunResult:
    """Run the whole range ``[1, total]`` in the current process (the baseline).

    The result carries the schedule a serial run really is — the static
    one-thread split, a single chunk ``[1, total]`` on thread 0 — so the
    gain formulas can treat serial and parallel results uniformly.
    """
    chunk_list = static_schedule(total, 1)
    start = time.perf_counter()
    result = worker(1, total, dict(parameter_values)) if total > 0 else None
    elapsed = time.perf_counter() - start
    return ParallelRunResult(
        results=(result,) if total > 0 else (),
        elapsed_seconds=elapsed,
        chunks=tuple(chunk_list),
        workers=1,
        schedule=_STATIC,
    )


def run_chunks_in_processes(
    worker: WorkerFunction,
    total: int,
    parameter_values: Mapping[str, int],
    workers: int,
    chunks: Optional[Sequence[Chunk]] = None,
    start_method: str = "fork",
    schedule: object = "static",
    engine=None,
) -> ParallelRunResult:
    """Run the collapsed range on ``workers`` processes.

    ``chunks`` defaults to the partition that ``schedule`` (anything
    :meth:`ScheduleSpec.parse` accepts) cuts over ``[1, total]`` — the plain
    OpenMP-static split unless told otherwise.  Returns the per-chunk results
    in chunk order together with the elapsed wall-clock time.

    With ``engine=None`` a fresh pool is forked for this one call and torn
    down afterwards (start-up is reported, not hidden — the paper's numbers
    include the OpenMP runtime overheads too).  Pass a started
    :class:`repro.runtime.RuntimeEngine` to route the same chunks through
    its persistent workers instead, which amortises the pool start-up across
    calls; the per-call path is kept as the baseline the engine is measured
    against.  With an engine, its own pool defines the execution: default
    chunks are cut for ``engine.workers`` (not ``workers``) and
    ``start_method`` does not apply — the pool already exists.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    spec = ScheduleSpec.parse(schedule)
    if engine is not None:
        workers = engine.workers
    chunk_list = list(chunks) if chunks is not None else schedule_chunks(spec, total, workers)
    if not chunk_list:
        return ParallelRunResult(
            results=(), elapsed_seconds=0.0, chunks=(), workers=workers, schedule=spec
        )
    if engine is not None:
        return engine.map_chunks(worker, chunk_list, parameter_values, schedule=spec)
    arguments = [(chunk.first, chunk.last, dict(parameter_values)) for chunk in chunk_list]

    start = time.perf_counter()
    if workers == 1:
        results: List[Any] = [worker(*argument) for argument in arguments]
    else:
        context = multiprocessing.get_context(start_method)
        with context.Pool(processes=workers) as pool:
            results = pool.starmap(worker, arguments)
    elapsed = time.perf_counter() - start
    return ParallelRunResult(
        results=tuple(results),
        elapsed_seconds=elapsed,
        chunks=tuple(chunk_list),
        workers=workers,
        schedule=spec,
    )


def run_collapsed_inline(
    collapsed,
    body: Callable[..., Any],
    parameter_values: Mapping[str, int],
    workers: int = 1,
    chunks: Optional[Sequence[Chunk]] = None,
    recovery: str = "compiled",
    schedule: object = "static",
) -> ParallelRunResult:
    """Walk the collapsed loop chunk by chunk in the current process.

    ``body(i1, ..., ic)`` is called for every collapsed iteration; the chunk
    partition defaults to the OpenMP-static split over ``workers`` threads,
    so the iteration-to-chunk assignment is exactly what the parallel run
    would use (chunks simply execute back to back here).  ``recovery``
    selects the back end:

    * ``"compiled"`` — each chunk's index array is recovered in one
      vectorized batch (:class:`repro.core.batch.BatchRecovery`),
    * ``"symbolic"`` — the scalar once-per-chunk scheme of Section V
      (:func:`repro.core.iterate_chunk`).

    The per-chunk results are the executed iteration counts.
    """
    from ..core import chunk_iterator_factory  # local import: no cycle at module load

    spec = ScheduleSpec.parse(schedule)
    total = collapsed.total_iterations(parameter_values)
    chunk_list = list(chunks) if chunks is not None else schedule_chunks(spec, total, workers)
    chunk_indices = chunk_iterator_factory(collapsed, parameter_values, recovery)

    start = time.perf_counter()
    executed: List[int] = []
    for chunk in chunk_list:
        count = 0
        for index_tuple in chunk_indices(chunk.first, chunk.last):
            body(*index_tuple)
            count += 1
        executed.append(count)
    elapsed = time.perf_counter() - start
    return ParallelRunResult(
        results=tuple(executed),
        elapsed_seconds=elapsed,
        chunks=tuple(chunk_list),
        workers=workers,
        schedule=spec,
    )
