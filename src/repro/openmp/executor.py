"""Real parallel execution through ``multiprocessing``.

Python threads cannot exhibit the scheduling gains the paper measures (the
GIL serialises compute-bound threads), so the wall-clock spot check uses
processes instead: the collapsed iteration range ``[1, total]`` is split
into per-worker chunks exactly like an OpenMP static schedule, and each
worker runs its chunk through a user-provided top-level function.

The worker function receives ``(first_pc, last_pc, parameter_values)`` and
must be importable (picklable); it typically rebuilds the collapsed loop or
uses the generated Python code to walk its chunk over NumPy data.  Workers
return their partial results, which the caller combines — a deliberate
"share nothing" structure, since fork-based shared mutable arrays would not
add anything to what the benchmark measures (per-chunk wall-clock time).

:func:`run_collapsed_inline` complements the process pool: it walks the same
chunk partition in the current process with a selectable index-recovery back
end (``recovery="compiled"`` for the vectorized batch path of
:mod:`repro.core.batch`, ``"symbolic"`` for the paper's scalar scheme).
Compiled recovery functions are ``exec``-generated and therefore not
picklable, which is why the compiled back end lives on the inline runner —
workers that want it rebuild their batch recovery after the fork, hitting
the module-level memo caches.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from .schedule import Chunk, static_schedule

WorkerFunction = Callable[[int, int, Mapping[str, int]], Any]


@dataclass(frozen=True)
class ParallelRunResult:
    """Wall-clock outcome of a multiprocessing run."""

    results: Tuple[Any, ...]
    elapsed_seconds: float
    chunks: Tuple[Chunk, ...]
    workers: int


def run_serial(worker: WorkerFunction, total: int, parameter_values: Mapping[str, int]) -> ParallelRunResult:
    """Run the whole range ``[1, total]`` in the current process (the baseline)."""
    start = time.perf_counter()
    result = worker(1, total, dict(parameter_values)) if total > 0 else None
    elapsed = time.perf_counter() - start
    chunk = (Chunk(1, total, 0),) if total > 0 else ()
    return ParallelRunResult(results=(result,) if total > 0 else (), elapsed_seconds=elapsed, chunks=chunk, workers=1)


def run_chunks_in_processes(
    worker: WorkerFunction,
    total: int,
    parameter_values: Mapping[str, int],
    workers: int,
    chunks: Optional[Sequence[Chunk]] = None,
    start_method: str = "fork",
) -> ParallelRunResult:
    """Run the collapsed range on ``workers`` processes with a static split.

    ``chunks`` defaults to the OpenMP-static partition of ``[1, total]``.
    Returns the per-chunk results in chunk order together with the elapsed
    wall-clock time (including process pool start-up, which is reported, not
    hidden — the paper's numbers include the OpenMP runtime overheads too).
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    chunk_list = list(chunks) if chunks is not None else static_schedule(total, workers)
    if not chunk_list:
        return ParallelRunResult(results=(), elapsed_seconds=0.0, chunks=(), workers=workers)
    arguments = [(chunk.first, chunk.last, dict(parameter_values)) for chunk in chunk_list]

    start = time.perf_counter()
    if workers == 1:
        results: List[Any] = [worker(*argument) for argument in arguments]
    else:
        context = multiprocessing.get_context(start_method)
        with context.Pool(processes=workers) as pool:
            results = pool.starmap(worker, arguments)
    elapsed = time.perf_counter() - start
    return ParallelRunResult(
        results=tuple(results),
        elapsed_seconds=elapsed,
        chunks=tuple(chunk_list),
        workers=workers,
    )


def run_collapsed_inline(
    collapsed,
    body: Callable[..., Any],
    parameter_values: Mapping[str, int],
    workers: int = 1,
    chunks: Optional[Sequence[Chunk]] = None,
    recovery: str = "compiled",
) -> ParallelRunResult:
    """Walk the collapsed loop chunk by chunk in the current process.

    ``body(i1, ..., ic)`` is called for every collapsed iteration; the chunk
    partition defaults to the OpenMP-static split over ``workers`` threads,
    so the iteration-to-chunk assignment is exactly what the parallel run
    would use (chunks simply execute back to back here).  ``recovery``
    selects the back end:

    * ``"compiled"`` — each chunk's index array is recovered in one
      vectorized batch (:class:`repro.core.batch.BatchRecovery`),
    * ``"symbolic"`` — the scalar once-per-chunk scheme of Section V
      (:func:`repro.core.iterate_chunk`).

    The per-chunk results are the executed iteration counts.
    """
    from ..core import chunk_iterator_factory  # local import: no cycle at module load

    total = collapsed.total_iterations(parameter_values)
    chunk_list = list(chunks) if chunks is not None else static_schedule(total, workers)
    chunk_indices = chunk_iterator_factory(collapsed, parameter_values, recovery)

    start = time.perf_counter()
    executed: List[int] = []
    for chunk in chunk_list:
        count = 0
        for index_tuple in chunk_indices(chunk.first, chunk.last):
            body(*index_tuple)
            count += 1
        executed.append(count)
    elapsed = time.perf_counter() - start
    return ParallelRunResult(
        results=tuple(executed),
        elapsed_seconds=elapsed,
        chunks=tuple(chunk_list),
        workers=workers,
    )
