"""Reproduction of "Automatic Collapsing of Non-Rectangular Loops" (IPDPS 2017).

Philippe Clauss, Ervin Altintas, Matthieu Kuhn.  *Automatic Collapsing of
Non-Rectangular Loops*, IPDPS 2017, pp. 778-787, DOI 10.1109/IPDPS.2017.34.

The package is organised bottom-up:

* :mod:`repro.symbolic` — exact multivariate polynomials, Faulhaber
  summation, radical expression trees, symbolic root formulas (degree 1-4).
* :mod:`repro.polyhedra` — affine constraints, Fourier-Motzkin elimination,
  Ehrhart counting and parametric lexmin for the affine loop model.
* :mod:`repro.ir` — the perfect affine loop-nest IR, a C-like parser,
  polyhedral dependence tests and the iteration odometer.
* :mod:`repro.core` — the paper's contribution: ranking polynomials, their
  symbolic inversion (unranking), the collapse transformation, recovery
  strategies (including the compiled batch fast path of
  :mod:`repro.core.batch`), Python/C code generation and the vector/GPU
  schemes.
* :mod:`repro.openmp` — OpenMP-style schedules, cost models, a deterministic
  simulated-time executor and a multiprocessing executor.
* :mod:`repro.kernels` — the evaluation kernels (Polybench-derived + utma,
  ltmp and the Pluto-tiled variants).
* :mod:`repro.transforms` — Pluto-lite skewing and tiling.
* :mod:`repro.analysis` — load balance, gains (Fig. 9), recovery overhead
  (Fig. 10) and table rendering.

Quick start::

    from repro import collapse, parse_loop_nest

    nest, _ = parse_loop_nest(
        '''
        for (i = 0; i < N - 1; i++)
          for (j = i + 1; j < N; j++)
            S(i, j);
        ''',
        parameters=["N"],
    )
    collapsed = collapse(nest)
    print(collapsed.describe())                       # ranking polynomial + recovery formulas
    print(collapsed.recover_indices(10, {"N": 10}))   # original (i, j) of iteration 10
"""

from .core import (
    BatchRecovery,
    CollapsedLoop,
    CollapseError,
    RecoveryStrategy,
    batch_recovery,
    collapse,
    compile_collapsed_loop,
    generate_openmp_chunked,
    generate_openmp_collapsed,
    generate_python_source,
    ranking_polynomial,
)
from .ir import Loop, LoopNest, Statement, ArrayAccess, parse_loop_nest
from .symbolic import Polynomial

__version__ = "1.0.0"

__all__ = [
    "BatchRecovery",
    "CollapsedLoop",
    "CollapseError",
    "RecoveryStrategy",
    "batch_recovery",
    "collapse",
    "compile_collapsed_loop",
    "generate_openmp_chunked",
    "generate_openmp_collapsed",
    "generate_python_source",
    "ranking_polynomial",
    "Loop",
    "LoopNest",
    "Statement",
    "ArrayAccess",
    "parse_loop_nest",
    "Polynomial",
    "__version__",
]
