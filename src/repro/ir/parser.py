"""A small C-like textual front end for loop nests.

The paper's tool consumes C sources annotated with OpenMP pragmas.  This
parser accepts the same *shape* of input for the loop headers so that
examples and tests can be written the way the paper prints them::

    #pragma omp parallel for collapse(2) schedule(static)
    for (i = 0; i < N - 1; i++)
      for (j = i + 1; j < N; j++)
        S(i, j);

Only the subset needed for the Fig. 5 model is supported: perfectly nested
``for`` loops with ``<`` or ``<=`` upper bounds, unit increments, affine
bound expressions, an optional ``collapse(n)`` pragma and a single statement
line naming the body.  Anything else raises :class:`ParseError` with a
useful message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..polyhedra import AffineExpr
from .loopnest import Loop, LoopNest, Statement

_FOR_RE = re.compile(
    r"""for\s*\(\s*
        (?:int\s+)?(?P<iterator>[A-Za-z_]\w*)\s*=\s*(?P<lower>[^;]+);\s*
        (?P<iterator2>[A-Za-z_]\w*)\s*(?P<relation><=|<)\s*(?P<upper>[^;]+);\s*
        (?P<iterator3>[A-Za-z_]\w*)\s*(?:\+\+|\+=\s*1)\s*
        \)\s*\{?\s*$""",
    re.VERBOSE,
)

_PRAGMA_RE = re.compile(r"#pragma\s+omp\s+.*", re.IGNORECASE)
_COLLAPSE_RE = re.compile(r"collapse\s*\(\s*(\d+)\s*\)", re.IGNORECASE)
_STATEMENT_RE = re.compile(r"(?P<name>[A-Za-z_]\w*)\s*\((?P<args>[^)]*)\)\s*;?\s*\}*\s*$")


class ParseError(ValueError):
    """Raised when the textual loop nest does not fit the supported subset."""


@dataclass(frozen=True)
class ParsedPragma:
    """The information extracted from an ``#pragma omp`` line."""

    collapse: Optional[int] = None
    schedule: Optional[str] = None
    chunk: Optional[int] = None


def _parse_pragma(line: str) -> ParsedPragma:
    collapse = None
    schedule = None
    chunk = None
    match = _COLLAPSE_RE.search(line)
    if match:
        collapse = int(match.group(1))
    schedule_match = re.search(r"schedule\s*\(\s*(\w+)\s*(?:,\s*(\d+)\s*)?\)", line, re.IGNORECASE)
    if schedule_match:
        schedule = schedule_match.group(1).lower()
        if schedule_match.group(2):
            chunk = int(schedule_match.group(2))
    return ParsedPragma(collapse, schedule, chunk)


def parse_loop_nest(
    text: str,
    parameters: Sequence[str] = (),
    name: str = "parsed_nest",
) -> Tuple[LoopNest, ParsedPragma]:
    """Parse a textual loop nest into a :class:`LoopNest`.

    ``parameters`` lists the symbolic size parameters (``N``, ``M``, ...);
    any other identifier in a bound must be an outer iterator.  Returns the
    nest together with the information found on the OpenMP pragma line (if
    any), so callers can honour ``collapse(n)`` / ``schedule(...)`` requests.
    """
    pragma = ParsedPragma()
    loops: List[Loop] = []
    statements: List[Statement] = []

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        if _PRAGMA_RE.match(line):
            if loops:
                raise ParseError("OpenMP pragmas are only supported before the outermost loop")
            pragma = _parse_pragma(line)
            continue
        match = _FOR_RE.match(line)
        if match:
            iterator = match.group("iterator")
            if match.group("iterator2") != iterator or match.group("iterator3") != iterator:
                raise ParseError(
                    f"loop header mixes iterators: {line!r} "
                    f"(initialised {iterator!r}, tested {match.group('iterator2')!r})"
                )
            try:
                lower = AffineExpr.parse(match.group("lower"))
                upper = AffineExpr.parse(match.group("upper"))
            except ValueError as error:
                raise ParseError(f"non-affine bound in {line!r}: {error}") from error
            if match.group("relation") == "<=":
                upper = upper + 1
            loops.append(Loop(iterator, lower, upper))
            continue
        statement_match = _STATEMENT_RE.match(line)
        if statement_match and loops:
            statements.append(Statement(statement_match.group("name")))
            continue
        if line in ("{", "}", "};"):
            continue
        raise ParseError(f"unsupported line: {raw_line!r}")

    if not loops:
        raise ParseError("no for-loop headers found")

    try:
        nest = LoopNest(loops, statements, parameters, name)
    except ValueError as error:
        raise ParseError(str(error)) from error
    return nest, pragma
