"""A small C-like textual front end for loop nests.

The paper's tool consumes C sources annotated with OpenMP pragmas.  This
parser accepts the same *shape* of input for the loop headers so that
examples and tests can be written the way the paper prints them::

    #pragma omp parallel for collapse(2) schedule(static)
    for (i = 0; i < N - 1; i++)
      for (j = i + 1; j < N; j++)
        S(i, j);

Only the subset needed for the Fig. 5 model is supported: perfectly nested
``for`` loops with ``<`` or ``<=`` upper bounds, unit increments, affine
bound expressions, an optional ``collapse(n)`` pragma and statement lines
naming the body.  Anything else raises :class:`ParseError` with a useful
message.

Statements come in two shapes:

* opaque calls, the way the paper prints them — ``S(i, j);`` — which name
  the body but carry no array information;
* array assignments in the generated-macro style of the native backend —
  ``c(i, j) = a(i, j) + b(i, j);`` or ``visits(i, j) += 1.0;`` — which are
  parsed into :class:`~repro.ir.loopnest.ArrayAccess`\\ es (so the
  dependence tests see them) *and* keep their raw C text, so
  :func:`native_body` can hand the whole nest to the native/hybrid
  backends as a compilable ``c_body``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..polyhedra import AffineExpr
from .loopnest import ArrayAccess, Loop, LoopNest, Statement

_FOR_RE = re.compile(
    r"""for\s*\(\s*
        (?:int\s+)?(?P<iterator>[A-Za-z_]\w*)\s*=\s*(?P<lower>[^;]+);\s*
        (?P<iterator2>[A-Za-z_]\w*)\s*(?P<relation><=|<)\s*(?P<upper>[^;]+);\s*
        (?P<iterator3>[A-Za-z_]\w*)\s*(?:\+\+|\+=\s*1)\s*
        \)\s*\{?\s*$""",
    re.VERBOSE,
)

_PRAGMA_RE = re.compile(r"#pragma\s+omp\s+.*", re.IGNORECASE)
_COLLAPSE_RE = re.compile(r"collapse\s*\(\s*(\d+)\s*\)", re.IGNORECASE)
_STATEMENT_RE = re.compile(r"(?P<name>[A-Za-z_]\w*)\s*\((?P<args>[^)]*)\)\s*;?\s*\}*\s*$")
_ASSIGN_RE = re.compile(
    r"""^(?P<array>[A-Za-z_]\w*)\s*\((?P<subs>[^()]*)\)\s*
        (?P<op>[-+*/]?=)(?!=)\s*
        (?P<rhs>[^;]+);\s*\}*\s*$""",
    re.VERBOSE,
)
_ACCESS_RE = re.compile(r"(?P<name>[A-Za-z_]\w*)\s*\((?P<subs>[^()]*)\)")

#: identifiers on a right-hand side that are C library calls, not array
#: reads — the C99 <math.h> roster.  Extend this set (it is consulted
#: live) before parsing statements that call anything more exotic; an
#: unlisted callee with parenthesised affine arguments is indistinguishable
#: from an array access and will be recorded as one.
C_MATH_CALLS = {
    "sqrt", "cbrt", "fabs", "exp", "exp2", "expm1", "log", "log2", "log10",
    "log1p", "pow", "hypot", "sin", "cos", "tan", "asin", "acos", "atan",
    "atan2", "sinh", "cosh", "tanh", "asinh", "acosh", "atanh", "floor",
    "ceil", "rint", "round", "trunc", "nearbyint", "fmin", "fmax", "fmod",
    "remainder", "fdim", "fma", "copysign", "erf", "erfc", "tgamma",
    "lgamma",
}


class ParseError(ValueError):
    """Raised when the textual loop nest does not fit the supported subset."""


@dataclass(frozen=True)
class ParsedPragma:
    """The information extracted from an ``#pragma omp`` line."""

    collapse: Optional[int] = None
    schedule: Optional[str] = None
    chunk: Optional[int] = None


def _parse_pragma(line: str) -> ParsedPragma:
    collapse = None
    schedule = None
    chunk = None
    match = _COLLAPSE_RE.search(line)
    if match:
        collapse = int(match.group(1))
    schedule_match = re.search(r"schedule\s*\(\s*(\w+)\s*(?:,\s*(\d+)\s*)?\)", line, re.IGNORECASE)
    if schedule_match:
        schedule = schedule_match.group(1).lower()
        if schedule_match.group(2):
            chunk = int(schedule_match.group(2))
    return ParsedPragma(collapse, schedule, chunk)


def _parse_subscripts(text: str, context: str) -> Tuple[AffineExpr, ...]:
    try:
        return tuple(AffineExpr.parse(part) for part in text.split(","))
    except ValueError as error:
        raise ParseError(f"non-affine subscript in {context!r}: {error}") from error


def _parse_assignment(line: str) -> Optional[Statement]:
    """An array-assignment statement, or ``None`` when the line is not one.

    ``c(i, j) = a(i, j) + b(i, j);`` becomes a statement that *both* the
    dependence tests (through its :class:`ArrayAccess` tuple — the write,
    plus a read of the target for compound ``+=``-style operators, plus
    every affine-subscripted read on the right-hand side) and the native
    backend (through the raw line kept in ``Statement.c_text``) understand.
    C math calls (``sqrt`` & friends) are recognised and not mistaken for
    array reads; any other callee must have affine subscripts.
    """
    match = _ASSIGN_RE.match(line)
    if match is None:
        return None
    array = match.group("array")
    subscripts = _parse_subscripts(match.group("subs"), line)
    accesses = [ArrayAccess(array, subscripts, is_write=True)]
    if match.group("op") != "=":  # compound assignment also reads the target
        accesses.append(ArrayAccess(array, subscripts, is_write=False))
    rhs = match.group("rhs")
    recorded = set()
    for read in _ACCESS_RE.finditer(rhs):
        callee = read.group("name")
        if not read.group("subs").strip():
            recorded.add(callee)  # zero-argument call: a function, not an access
            continue
        # the write target is proven to be an array by the LHS, even when
        # its name shadows a math call (an array named 'exp'): dropping the
        # read would hide a loop-carried dependence
        if callee in C_MATH_CALLS and callee != array:
            continue
        recorded.add(callee)
        accesses.append(
            ArrayAccess(callee, _parse_subscripts(read.group("subs"), line), is_write=False)
        )
    # every parenthesised callee must be either a known math call or a
    # captured access: an array read whose subscripts the pattern cannot
    # represent (e.g. 'c((i - 1), j)') must fail loudly, not vanish from
    # the dependence tests
    for callee_match in re.finditer(r"([A-Za-z_]\w*)\s*\(", rhs):
        callee = callee_match.group(1)
        if callee not in C_MATH_CALLS and callee not in recorded:
            raise ParseError(
                f"cannot parse the subscripts of {callee!r} in {line!r}; write them "
                "without nested parentheses (e.g. 'a(i - 1, j)'), or add the name to "
                "repro.ir.parser.C_MATH_CALLS if it is a pure function"
            )
    # keep exactly statement-through-semicolon: the close braces the line
    # pattern tolerates are nest syntax, not statement text — emitting them
    # into a C body would unbalance the generated translation unit
    c_text = line[: match.end("rhs")].rstrip() + ";"
    return Statement(name=f"{array}_update", accesses=tuple(accesses), c_text=c_text)


def parse_array_assignment(line: str) -> Optional[Statement]:
    """Parse one C array-assignment line into a :class:`Statement`, or ``None``.

    The public entry point for callers that audit C text *outside* a full
    nest parse — :mod:`repro.lint` feeds each statement line of a kernel's
    hand-written ``c_body`` through this to recover the access footprint the
    emitted C actually touches.  Accepts exactly the statement subset
    :func:`parse_loop_nest` accepts (``c(i, j) = a(i, j) + b(i, j);``,
    compound ``+=``-style operators, :data:`C_MATH_CALLS` on the right-hand
    side) and raises :class:`ParseError` on an RHS callee it cannot prove to
    be either a math call or an affine access.
    """
    return _parse_assignment(line.strip())


def native_body(nest: LoopNest) -> Tuple[str, Tuple[str, ...]]:
    """The C body and array list of a nest whose statements carry C text.

    Returns ``(c_body, arrays)`` ready for the native/hybrid backends
    (:func:`repro.native.compile_collapsed`,
    :func:`repro.runtime.build_plan`): the statements' raw C lines joined in
    order, plus every accessed array in first-appearance order.  Raises
    :class:`ParseError` when any statement is opaque (``S(i, j);`` carries
    no C text the backend could compile).  Array ranks for the generated
    access macros come from :func:`native_array_ndims`.
    """
    lines: List[str] = []
    arrays: List[str] = []
    for statement in nest.statements:
        if statement.c_text is None:
            raise ParseError(
                f"statement {statement.name!r} of nest {nest.name!r} has no C text; "
                "only array-assignment statements (e.g. 'c(i, j) = a(i, j) + b(i, j);') "
                "can be emitted as a native body"
            )
        lines.append(statement.c_text)
        for access in statement.accesses:
            if access.array not in arrays:
                arrays.append(access.array)
    if not lines:
        raise ParseError(f"nest {nest.name!r} has no statements to emit as a native body")
    return "\n".join(lines), tuple(arrays)


def native_array_ndims(nest: LoopNest) -> dict:
    """Each accessed array's rank, read off the parsed subscript counts.

    ``hist(i)`` is 1-D, ``c(i, j)`` 2-D, ``cube(i, j, k)`` 3-D — the rank
    of the generated access macro must match, so the native backends feed
    this mapping to ``array_ndims``.  An array accessed with *different*
    subscript counts in the same nest has no single valid macro; that is a
    :class:`ParseError`.
    """
    ndims: dict = {}
    for statement in nest.statements:
        for access in statement.accesses:
            rank = len(access.subscripts)
            previous = ndims.setdefault(access.array, rank)
            if previous != rank:
                raise ParseError(
                    f"array {access.array!r} of nest {nest.name!r} is accessed with "
                    f"both {previous} and {rank} subscripts; one access macro cannot "
                    "serve both"
                )
    return ndims


def parse_loop_nest(
    text: str,
    parameters: Sequence[str] = (),
    name: str = "parsed_nest",
) -> Tuple[LoopNest, ParsedPragma]:
    """Parse a textual loop nest into a :class:`LoopNest`.

    ``parameters`` lists the symbolic size parameters (``N``, ``M``, ...);
    any other identifier in a bound must be an outer iterator.  Returns the
    nest together with the information found on the OpenMP pragma line (if
    any), so callers can honour ``collapse(n)`` / ``schedule(...)`` requests.
    """
    pragma = ParsedPragma()
    loops: List[Loop] = []
    statements: List[Statement] = []

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        if _PRAGMA_RE.match(line):
            if loops:
                raise ParseError("OpenMP pragmas are only supported before the outermost loop")
            pragma = _parse_pragma(line)
            continue
        match = _FOR_RE.match(line)
        if match:
            iterator = match.group("iterator")
            if match.group("iterator2") != iterator or match.group("iterator3") != iterator:
                raise ParseError(
                    f"loop header mixes iterators: {line!r} "
                    f"(initialised {iterator!r}, tested {match.group('iterator2')!r})"
                )
            try:
                lower = AffineExpr.parse(match.group("lower"))
                upper = AffineExpr.parse(match.group("upper"))
            except ValueError as error:
                raise ParseError(f"non-affine bound in {line!r}: {error}") from error
            if match.group("relation") == "<=":
                upper = upper + 1
            loops.append(Loop(iterator, lower, upper))
            continue
        if loops:
            assignment = _parse_assignment(line)
            if assignment is not None:
                statements.append(assignment)
                continue
        statement_match = _STATEMENT_RE.match(line)
        if statement_match and loops:
            statements.append(Statement(statement_match.group("name")))
            continue
        if line in ("{", "}", "};"):
            continue
        raise ParseError(f"unsupported line: {raw_line!r}")

    if not loops:
        raise ParseError("no for-loop headers found")

    try:
        nest = LoopNest(loops, statements, parameters, name)
    except ValueError as error:
        raise ParseError(str(error)) from error
    return nest, pragma
