"""Concrete iteration of loop nests: enumeration and odometer incrementation.

Two pieces of machinery live here:

* :func:`enumerate_iterations` — execute the nest's control flow for
  concrete parameter values, yielding index tuples in the original
  lexicographic order.  It is the ground truth every collapsed loop is
  validated against.
* :class:`Odometer` — the "standard indices incrementation of the original
  loop nest" that Section V uses to avoid re-evaluating the costly radical
  recovery at every iteration: given the current index tuple, produce the
  next one by bumping the innermost iterator and carrying into outer loops
  when bounds are exhausted.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .loopnest import LoopNest


def _int_ceil(value) -> int:
    return math.ceil(value)


def _int_floor(value) -> int:
    return math.floor(value)


class Odometer:
    """Stateless incrementation of index tuples for a (possibly partial) nest.

    ``depth`` restricts the odometer to the outermost ``depth`` loops — the
    collapsed sub-nest — which is what the reduced-overhead recovery of
    Section V increments.
    """

    def __init__(self, nest: LoopNest, parameter_values: Mapping[str, int], depth: Optional[int] = None):
        self.nest = nest
        self.depth = nest.depth if depth is None else depth
        if not 1 <= self.depth <= nest.depth:
            raise ValueError(f"depth must be in 1..{nest.depth}")
        self.parameter_values = {name: int(value) for name, value in parameter_values.items()}
        missing = set(nest.parameters) - set(self.parameter_values)
        if missing:
            raise ValueError(f"missing parameter values {sorted(missing)}")

    # ------------------------------------------------------------------ #
    # bounds of one loop for a concrete prefix
    # ------------------------------------------------------------------ #
    def _environment(self, indices: Sequence[int]) -> Dict[str, int]:
        environment = dict(self.parameter_values)
        for iterator, value in zip(self.nest.iterators, indices):
            environment[iterator] = value
        return environment

    def lower_bound(self, level: int, indices: Sequence[int]) -> int:
        """Concrete (ceiled) lower bound of loop ``level`` given outer indices."""
        loop = self.nest.loops[level]
        return _int_ceil(loop.lower.evaluate(self._environment(indices[:level])))

    def upper_bound(self, level: int, indices: Sequence[int]) -> int:
        """Concrete *exclusive* (ceiled) upper bound of loop ``level``."""
        loop = self.nest.loops[level]
        return _int_ceil(loop.upper.evaluate(self._environment(indices[:level])))

    # ------------------------------------------------------------------ #
    # odometer operations
    # ------------------------------------------------------------------ #
    def first(self) -> Optional[Tuple[int, ...]]:
        """The lexicographically first iteration of the sub-nest (or ``None``)."""
        indices: List[int] = []
        for level in range(self.depth):
            low = self.lower_bound(level, indices)
            high = self.upper_bound(level, indices)
            if low >= high:
                return self._advance_prefix(indices)
            indices.append(low)
        return tuple(indices)

    def _advance_prefix(self, indices: List[int]) -> Optional[Tuple[int, ...]]:
        """Find the next valid iteration after an empty inner loop was met."""
        while indices:
            level = len(indices) - 1
            candidate = list(indices[:level]) + [indices[level] + 1]
            if candidate[level] < self.upper_bound(level, candidate):
                completion = self._complete(candidate)
                if completion is not None:
                    return completion
            indices = indices[:level]
        return None

    def _complete(self, prefix: List[int]) -> Optional[Tuple[int, ...]]:
        """Extend a valid prefix with the lexicographic minimum of deeper loops."""
        indices = list(prefix)
        for level in range(len(prefix), self.depth):
            low = self.lower_bound(level, indices)
            high = self.upper_bound(level, indices)
            if low >= high:
                return self._advance_prefix(indices)
            indices.append(low)
        return tuple(indices)

    def increment(self, indices: Sequence[int]) -> Optional[Tuple[int, ...]]:
        """The iteration immediately following ``indices`` (or ``None`` at the end).

        This mirrors the generated-code incrementation of Fig. 4:
        ``j++; if (j >= N) { i++; j = i+1; }`` generalised to any depth and
        to bounds that are affine in the outer iterators.
        """
        if len(indices) != self.depth:
            raise ValueError(f"expected {self.depth} indices, got {len(indices)}")
        current = list(indices)
        level = self.depth - 1
        while level >= 0:
            current[level] += 1
            if current[level] < self.upper_bound(level, current):
                completion = self._complete(current[: level + 1])
                if completion is not None:
                    return completion
            current = current[:level]
            level -= 1
        return None

    def advance(self, indices: Sequence[int], steps: int) -> Optional[Tuple[int, ...]]:
        """Apply :meth:`increment` ``steps`` times (the GPU warp-stride pattern)."""
        current: Optional[Tuple[int, ...]] = tuple(indices)
        for _ in range(steps):
            if current is None:
                return None
            current = self.increment(current)
        return current


def enumerate_iterations(
    nest: LoopNest,
    parameter_values: Mapping[str, int],
    depth: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield the index tuples of the ``depth`` outermost loops in execution order."""
    odometer = Odometer(nest, parameter_values, depth)
    current = odometer.first()
    while current is not None:
        yield current
        current = odometer.increment(current)


def iteration_count(nest: LoopNest, parameter_values: Mapping[str, int], depth: Optional[int] = None) -> int:
    """Concrete number of iterations executed by the ``depth`` outermost loops."""
    return sum(1 for _ in enumerate_iterations(nest, parameter_values, depth))
