"""Data-dependence tests for the collapse precondition.

The collapser of the paper requires the loops being collapsed to carry no
data dependence (Section IV: the loops "do not carry any dependence").  The
paper assumes this has been established by the surrounding compiler (Pluto
in the experiments).  To make the reproduction self-contained, this module
implements a polyhedral dependence test on affine array subscripts:

1. quick conservative filters — the classical ZIV and GCD tests — decide
   the easy cases without building any polyhedron;
2. the remaining pairs are decided by an exact *rational* dependence-system
   test: two copies of the iteration domain (source and sink instances),
   subscript-equality constraints, and a "source lexicographically precedes
   sink at one of the collapsed levels" constraint, checked for emptiness by
   Fourier–Motzkin elimination.

``may_carry_dependence`` returning ``False`` therefore guarantees that the
outer ``depth`` loops can be collapsed and run in parallel; ``True`` means a
dependence may exist (the rational relaxation makes the test conservative,
never unsound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..polyhedra import AffineExpr, Constraint
from ..polyhedra.fourier_motzkin import is_rationally_empty
from .loopnest import ArrayAccess, LoopNest, Statement

_SOURCE_PREFIX = "dep_src_"
_SINK_PREFIX = "dep_snk_"


@dataclass(frozen=True)
class DependenceTestResult:
    """Outcome of testing one ordered pair of accesses."""

    source: ArrayAccess
    sink: ArrayAccess
    may_depend: bool
    reason: str

    def __str__(self) -> str:
        verdict = "may depend" if self.may_depend else "independent"
        return f"{self.source} -> {self.sink}: {verdict} ({self.reason})"


# ---------------------------------------------------------------------- #
# quick filters
# ---------------------------------------------------------------------- #
def _ziv_independent(a: AffineExpr, b: AffineExpr, iterators: Sequence[str]) -> bool:
    """True when both subscripts are iterator-free constants that differ."""
    if any(a.coefficient(v) != 0 or b.coefficient(v) != 0 for v in iterators):
        return False
    return (a - b).constant != 0


def _gcd_independent(a: AffineExpr, b: AffineExpr, iterators: Sequence[str]) -> bool:
    """Classical GCD test on ``a(s) = b(t)`` with independent instances s, t."""
    coefficients: List[Fraction] = []
    for var in iterators:
        for value in (a.coefficient(var), -b.coefficient(var)):
            if value != 0:
                coefficients.append(value)
    constant = b.constant - a.constant
    if not coefficients:
        return False
    denominator = math.lcm(*(c.denominator for c in coefficients), constant.denominator)
    integer_coefficients = [int(c * denominator) for c in coefficients]
    integer_constant = int(constant * denominator)
    gcd = 0
    for value in integer_coefficients:
        gcd = math.gcd(gcd, abs(value))
    return bool(gcd) and integer_constant % gcd != 0


# ---------------------------------------------------------------------- #
# exact rational dependence system
# ---------------------------------------------------------------------- #
def _renamed(expression: AffineExpr, iterators: Sequence[str], prefix: str) -> AffineExpr:
    return expression.substitute({v: AffineExpr.variable(prefix + v) for v in iterators})


def _domain_constraints(nest: LoopNest, prefix: str) -> List[Constraint]:
    constraints: List[Constraint] = []
    iterators = nest.iterators
    for loop in nest.loops:
        variable = AffineExpr.variable(prefix + loop.iterator)
        constraints.append(
            Constraint.greater_equal(variable, _renamed(loop.lower, iterators, prefix))
        )
        constraints.append(
            Constraint.less_than(variable, _renamed(loop.upper, iterators, prefix))
        )
    return constraints


def _carried_dependence_possible(
    nest: LoopNest,
    source: ArrayAccess,
    sink: ArrayAccess,
    depth: int,
) -> Tuple[bool, str]:
    """Is there a source iteration lexicographically before a sink iteration
    (differing within the first ``depth`` levels) touching the same element?"""
    iterators = nest.iterators
    base: List[Constraint] = []
    base.extend(_domain_constraints(nest, _SOURCE_PREFIX))
    base.extend(_domain_constraints(nest, _SINK_PREFIX))
    for a, b in zip(source.subscripts, sink.subscripts):
        base.append(
            Constraint.equals(
                _renamed(a, iterators, _SOURCE_PREFIX), _renamed(b, iterators, _SINK_PREFIX)
            )
        )
    variables = [_SOURCE_PREFIX + v for v in iterators] + [_SINK_PREFIX + v for v in iterators]

    # Both orientations are needed: flow/output dependences (source instance
    # first) and anti dependences (sink instance first) equally prevent the
    # collapsed loops from running in parallel.
    for first, second in ((_SOURCE_PREFIX, _SINK_PREFIX), (_SINK_PREFIX, _SOURCE_PREFIX)):
        for level in range(depth):
            constraints = list(base)
            for equal_level in range(level):
                constraints.append(
                    Constraint.equals(
                        AffineExpr.variable(first + iterators[equal_level]),
                        AffineExpr.variable(second + iterators[equal_level]),
                    )
                )
            constraints.append(
                Constraint.less_than(
                    AffineExpr.variable(first + iterators[level]),
                    AffineExpr.variable(second + iterators[level]),
                )
            )
            if not is_rationally_empty(constraints, variables):
                return True, f"dependence system feasible at level {iterators[level]!r}"
    return False, f"dependence system empty at the {depth} collapsed levels"


def _access_pair_result(
    nest: LoopNest, source: ArrayAccess, sink: ArrayAccess, depth: int
) -> DependenceTestResult:
    if source.array != sink.array:
        return DependenceTestResult(source, sink, False, "different arrays")
    if len(source.subscripts) != len(sink.subscripts):
        return DependenceTestResult(source, sink, True, "subscript arity mismatch; assuming aliasing")

    iterators = nest.iterators
    for a, b in zip(source.subscripts, sink.subscripts):
        if _ziv_independent(a, b, iterators):
            return DependenceTestResult(source, sink, False, "ZIV: constant subscripts differ")
        if _gcd_independent(a, b, iterators):
            return DependenceTestResult(source, sink, False, "GCD test: no integer solution")

    may_depend, reason = _carried_dependence_possible(nest, source, sink, depth)
    return DependenceTestResult(source, sink, may_depend, reason)


def dependence_report(nest: LoopNest, depth: Optional[int] = None) -> List[DependenceTestResult]:
    """Test every ordered write/read and write/write pair of the nest's statements.

    ``depth`` limits the test to dependences *carried by* the outermost
    ``depth`` loops — the candidates for collapsing.  Loop-independent
    dependences (same iteration of the collapsed loops) and dependences
    carried only by deeper sequential loops do not prevent collapsing and are
    reported as independent.
    """
    depth = nest.depth if depth is None else depth
    results: List[DependenceTestResult] = []
    statements: Sequence[Statement] = nest.statements
    for statement in statements:
        for other in statements:
            for write in statement.writes():
                for access in list(other.reads()) + list(other.writes()):
                    if write is access:
                        continue
                    results.append(_access_pair_result(nest, write, access, depth))
    return results


def write_write_report(nest: LoopNest, depth: Optional[int] = None) -> List[DependenceTestResult]:
    """Test every ordered write/write pair — *including* each write against itself.

    :func:`dependence_report` skips the ``write is access`` identity pair, so
    a statement whose only access is a single plain write (``c(0) = ...;``)
    is never tested against its own instances in other iterations.  For
    reads that is harmless, but two *iterations* of the same write statement
    racing on one cell is exactly the write-write conflict the generated-C
    linter must catch: the dependence system instantiates two renamed copies
    of the iteration domain and requires them to differ at a collapsed
    level, so self-pairing is meaningful and the same-iteration case is
    excluded by construction.
    """
    depth = nest.depth if depth is None else depth
    results: List[DependenceTestResult] = []
    for statement in nest.statements:
        for other in nest.statements:
            for write in statement.writes():
                for access in other.writes():
                    results.append(_access_pair_result(nest, write, access, depth))
    return results


def may_carry_dependence(nest: LoopNest, depth: Optional[int] = None) -> bool:
    """Conservative verdict: may any of the outer ``depth`` loops carry a dependence?

    Statements without declared accesses contribute nothing (the caller is
    then responsible for the precondition, exactly as with the paper's tool,
    which relies on the parallel pragmas emitted by Pluto).
    """
    return any(result.may_depend for result in dependence_report(nest, depth))
