"""Loop-nest intermediate representation.

The collapser consumes perfectly nested affine loop nests — the model of
Fig. 5 of the paper.  This subpackage defines that representation
(:class:`~repro.ir.loopnest.Loop`, :class:`~repro.ir.loopnest.LoopNest`,
array accesses and statements), a small C-like textual parser so examples
read like the paper's listings, conservative dependence tests used to check
the "no carried dependence" precondition, and concrete iteration utilities
(lexicographic enumeration and the odometer incrementation that Section V's
cheap index recovery relies on).
"""

from .loopnest import ArrayAccess, Loop, LoopNest, Statement
from .parser import (
    native_array_ndims,
    native_body,
    parse_array_assignment,
    parse_loop_nest,
    ParseError,
)
from .dependences import (
    DependenceTestResult,
    may_carry_dependence,
    dependence_report,
    write_write_report,
)
from .iteration import Odometer, enumerate_iterations, iteration_count

__all__ = [
    "ArrayAccess",
    "Loop",
    "LoopNest",
    "Statement",
    "native_array_ndims",
    "native_body",
    "parse_array_assignment",
    "parse_loop_nest",
    "ParseError",
    "DependenceTestResult",
    "may_carry_dependence",
    "dependence_report",
    "write_write_report",
    "Odometer",
    "enumerate_iterations",
    "iteration_count",
]
