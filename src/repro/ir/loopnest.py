"""The loop-nest model of Fig. 5: perfect nests with affine bounds.

A :class:`LoopNest` is a perfectly nested sequence of :class:`Loop`\\ s (each
``for (i = lower; i < upper; i++)`` with affine bounds over outer iterators
and parameters) around a body of :class:`Statement`\\ s.  Statements carry

* the :class:`ArrayAccess`\\ es they perform (affine subscripts), used by the
  dependence tests, and
* optionally a Python callable, used by the executors and by the kernel
  reference implementations to actually run the nest.

The class also knows how to validate that it fits the model the paper's
collapser accepts and to hand out its iteration domain / trip count through
the polyhedral substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..polyhedra import AffineExpr, Polyhedron
from ..polyhedra.counting import loop_nest_count
from ..symbolic import Polynomial


@dataclass(frozen=True)
class Loop:
    """``for (iterator = lower; iterator < upper; iterator++)``.

    ``upper`` is always *exclusive*, matching both the paper's Fig. 5 model
    and C's idiomatic loop form.  ``parallel`` records whether the loop is
    marked parallel (e.g. carries an ``omp for`` pragma in the source the
    nest was extracted from).
    """

    iterator: str
    lower: AffineExpr
    upper: AffineExpr
    parallel: bool = True

    @staticmethod
    def make(iterator: str, lower, upper, parallel: bool = True) -> "Loop":
        return Loop(iterator, AffineExpr.coerce(lower), AffineExpr.coerce(upper), parallel)

    def trip_count_expression(self) -> Polynomial:
        """Symbolic trip count ``upper - lower`` (valid when non-negative)."""
        return (self.upper - self.lower).to_polynomial()

    def header_source(self) -> str:
        return f"for ({self.iterator} = {self.lower}; {self.iterator} < {self.upper}; {self.iterator}++)"

    def __str__(self) -> str:
        return self.header_source()


@dataclass(frozen=True)
class ArrayAccess:
    """``array[subscripts...]`` with affine subscripts; read or write."""

    array: str
    subscripts: Tuple[AffineExpr, ...]
    is_write: bool = False

    @staticmethod
    def read(array: str, *subscripts) -> "ArrayAccess":
        return ArrayAccess(array, tuple(AffineExpr.coerce(s) for s in subscripts), False)

    @staticmethod
    def write(array: str, *subscripts) -> "ArrayAccess":
        return ArrayAccess(array, tuple(AffineExpr.coerce(s) for s in subscripts), True)

    def __str__(self) -> str:
        kind = "W" if self.is_write else "R"
        indices = "][".join(str(s) for s in self.subscripts)
        return f"{kind}:{self.array}[{indices}]"


@dataclass(frozen=True)
class Statement:
    """A statement instance parameterised by the loop iterators.

    ``compute`` is an optional callable ``compute(indices, arrays)`` invoked
    by the executors with a ``{iterator: value}`` mapping and the dictionary
    of NumPy arrays (or any other state) attached to the run.  ``c_text``
    optionally carries the statement as one line of C source (set by the
    parser for array-assignment statements), which lets the native backend
    emit a ``c_body`` for ad-hoc nests — see :func:`repro.ir.parser.native_body`.
    """

    name: str
    accesses: Tuple[ArrayAccess, ...] = ()
    compute: Optional[Callable[[Mapping[str, int], Dict[str, object]], None]] = None
    c_text: Optional[str] = None

    def reads(self) -> Tuple[ArrayAccess, ...]:
        return tuple(a for a in self.accesses if not a.is_write)

    def writes(self) -> Tuple[ArrayAccess, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.accesses)})"


class LoopNest:
    """A perfect nest of affine loops around a sequence of statements."""

    def __init__(
        self,
        loops: Sequence[Loop],
        statements: Sequence[Statement] = (),
        parameters: Sequence[str] = (),
        name: str = "nest",
    ):
        if not loops:
            raise ValueError("a loop nest needs at least one loop")
        self.loops: Tuple[Loop, ...] = tuple(loops)
        self.statements: Tuple[Statement, ...] = tuple(statements)
        self.parameters: Tuple[str, ...] = tuple(parameters)
        self.name = name
        iterators = [loop.iterator for loop in self.loops]
        if len(set(iterators)) != len(iterators):
            raise ValueError(f"duplicate iterator names in nest {name!r}: {iterators}")
        self._validate_bound_scoping()

    # ------------------------------------------------------------------ #
    # validation of the Fig. 5 model
    # ------------------------------------------------------------------ #
    def _validate_bound_scoping(self) -> None:
        """Every bound may only mention parameters and *outer* iterators."""
        seen: set = set(self.parameters)
        for depth, loop in enumerate(self.loops):
            for bound, which in ((loop.lower, "lower"), (loop.upper, "upper")):
                unknown = bound.variables() - seen
                if unknown:
                    raise ValueError(
                        f"loop {loop.iterator!r} (depth {depth}) has a {which} bound "
                        f"using {sorted(unknown)}, which are neither parameters nor "
                        "outer iterators — the nest does not fit the Fig. 5 model"
                    )
            seen.add(loop.iterator)

    # ------------------------------------------------------------------ #
    # shape queries
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def iterators(self) -> Tuple[str, ...]:
        return tuple(loop.iterator for loop in self.loops)

    def loop(self, iterator: str) -> Loop:
        for loop in self.loops:
            if loop.iterator == iterator:
                return loop
        raise KeyError(f"no loop with iterator {iterator!r}")

    def bounds(self) -> List[Tuple[str, AffineExpr, AffineExpr]]:
        """The ``(iterator, lower, upper_exclusive)`` triples, outermost first."""
        return [(loop.iterator, loop.lower, loop.upper) for loop in self.loops]

    def is_rectangular(self, depth: Optional[int] = None) -> bool:
        """True when the first ``depth`` loops have bounds free of any iterator.

        This is exactly the condition under which OpenMP's own ``collapse``
        clause applies; the paper's contribution is the non-rectangular case.
        """
        depth = self.depth if depth is None else depth
        iterators = set(self.iterators)
        for loop in self.loops[:depth]:
            if (loop.lower.variables() | loop.upper.variables()) & iterators:
                return False
        return True

    def prefix(self, depth: int, name: Optional[str] = None) -> "LoopNest":
        """The sub-nest made of the ``depth`` outermost loops."""
        if not 1 <= depth <= self.depth:
            raise ValueError(f"prefix depth must be in 1..{self.depth}")
        return LoopNest(
            self.loops[:depth],
            self.statements if depth == self.depth else (),
            self.parameters,
            name or f"{self.name}_outer{depth}",
        )

    # ------------------------------------------------------------------ #
    # polyhedral views
    # ------------------------------------------------------------------ #
    def domain(self, depth: Optional[int] = None) -> Polyhedron:
        """Iteration domain of the ``depth`` outermost loops as a polyhedron."""
        depth = self.depth if depth is None else depth
        return Polyhedron.from_bounds(self.bounds()[:depth], self.parameters)

    def iteration_count(self, depth: Optional[int] = None) -> Polynomial:
        """Symbolic trip count (Ehrhart polynomial) of the ``depth`` outer loops."""
        depth = self.depth if depth is None else depth
        return loop_nest_count(self.bounds()[:depth])

    # ------------------------------------------------------------------ #
    # printing
    # ------------------------------------------------------------------ #
    def source(self) -> str:
        """Pretty C-like source of the nest (headers + statement names)."""
        lines = []
        for depth, loop in enumerate(self.loops):
            lines.append("  " * depth + loop.header_source())
        body_indent = "  " * self.depth
        if self.statements:
            for statement in self.statements:
                lines.append(f"{body_indent}{statement.name}({', '.join(self.iterators)});")
        else:
            lines.append(f"{body_indent}S({', '.join(self.iterators)});")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.source()

    def __repr__(self) -> str:
        return f"LoopNest({self.name!r}, depth={self.depth}, parameters={list(self.parameters)})"
