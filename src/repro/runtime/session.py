"""The high-level runtime API: ``collapse_and_run`` with plan caching.

A :class:`RuntimeSession` owns one persistent :class:`RuntimeEngine` plus a
cache of :class:`ExecutionPlan` objects keyed by (nest structure, collapse
depth, parameter values, schedule, recovery back end) — the same structural
key idea as the ``collapse()`` memo cache, one level up.  Asking the session
twice for the same kernel at the same size re-uses the plan, the workers'
compiled state and (for registry kernels run without caller data) the
shared-memory buffers, so a steady-state run is nothing but chunk dispatch.

:func:`collapse_and_run` is the one-call version::

    from repro.runtime import collapse_and_run

    data = collapse_and_run("utma", {"N": 512}, workers=4, schedule="adaptive")

The module-level default session behind it starts its engine lazily on the
first call and is torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..openmp.schedule import ScheduleSpec
from .engine import EngineRunResult, RuntimeEngine
from .plan import ExecutionPlan, PlanError, build_plan
from .profile import ProfileError, choose_backend, default_profile_store, profile_key
from .shm import SharedBuffers


def _profile_key_or_none(source, parameter_values, schedule, depth=None) -> Optional[str]:
    """The source's profile-store key, or ``None`` for unfingerprintable ones."""
    try:
        return profile_key(source, parameter_values, schedule, depth=depth)
    except ProfileError:
        return None


def resolve_auto_backend(
    source,
    parameter_values: Mapping[str, int],
    schedule: object = "adaptive",
    depth: Optional[int] = None,
    data=None,
    store=None,
    allow_native: bool = True,
    **plan_kwargs,
) -> str:
    """The substrate ``backend="auto"`` runs on: measured when warm, heuristic when cold.

    The decision has two stages.  *Viability* first: ``native`` needs a
    native-capable source (a kernel ``c_body``, a parseable nest — with
    caller ``data`` — or an explicit ``c_body=``), a present C compiler and
    ``allow_native`` (sessions clear it when engine-only options like
    ``depth``/``recovery`` are in play); ``hybrid`` needs the same native
    capability and compiler; ``engine`` needs Python operations (an
    executable kernel or ``iteration_op``/``chunk_op``).  On machines with
    ``os.cpu_count() <= 2`` the ``hybrid`` candidate is dropped whenever
    ``native`` is viable — per-chunk dispatch through a 1–2 worker pool
    cannot beat the whole-range OpenMP call there, so auto pins native
    (mirroring ``benchmarks/bench_hybrid_backend.py``'s derated gate).

    Then *choice*: among the viable candidates,
    :func:`~repro.runtime.profile.choose_backend` explores any substrate the
    :class:`~repro.runtime.profile.ProfileStore` has no timing for yet (in
    heuristic order — the decision matrix of docs/architecture.md) and
    afterwards exploits the measured-fastest by median whole-run seconds.

    Degradation mirrors the hybrid contract: with nothing viable the
    function returns ``"engine"`` rather than raising, so the caller sees
    the engine's actionable error (missing ops, unknown kernel) instead of
    a second-hand resolver failure.
    """
    backend, _settled = _resolve_auto(
        source,
        parameter_values,
        schedule=schedule,
        depth=depth,
        data=data,
        store=store,
        allow_native=allow_native,
        **plan_kwargs,
    )
    return backend


def _resolve_auto(
    source,
    parameter_values: Mapping[str, int],
    schedule: object = "adaptive",
    depth: Optional[int] = None,
    data=None,
    store=None,
    allow_native: bool = True,
    **plan_kwargs,
) -> Tuple[str, bool]:
    """:func:`resolve_auto_backend` plus a *settled* flag.

    ``settled`` is ``True`` only for an exploit-phase choice — every viable
    candidate has a recorded timing, so the decision is stable enough for
    :class:`RuntimeSession` to memoise; an exploration pick or a degraded
    default must be re-resolved on the next call.
    """
    from ..ir import LoopNest
    from ..kernels import Kernel, get_kernel
    from ..native import native_available

    resolved = get_kernel(source) if isinstance(source, str) else source
    kernel = resolved if isinstance(resolved, Kernel) else None

    python_ops = (kernel is not None and kernel.is_executable) or any(
        plan_kwargs.get(name) is not None for name in ("iteration_op", "chunk_op")
    )
    native_capable = plan_kwargs.get("c_body") is not None
    if kernel is not None:
        native_capable = native_capable or kernel.supports_native
    elif isinstance(resolved, LoopNest) and not native_capable:
        from ..ir.parser import ParseError, native_body

        try:
            native_body(resolved)
        except ParseError:
            native_capable = False
        else:
            native_capable = True
    compiled = native_capable and native_available()

    whole_range_ok = kernel is not None or (isinstance(resolved, LoopNest) and data is not None)
    candidates = []
    if compiled and allow_native and whole_range_ok:
        candidates.append("native")
    if compiled:
        candidates.append("hybrid")
    if python_ops:
        candidates.append("engine")
    if not candidates:
        return "engine", False

    cpus = os.cpu_count() or 1
    if cpus <= 2 and "native" in candidates and "hybrid" in candidates:
        candidates.remove("hybrid")
    heuristic = ("native", "engine") if cpus <= 2 else ("hybrid", "native", "engine")
    if len(candidates) == 1:
        return candidates[0], True
    key = _profile_key_or_none(source, parameter_values, schedule, depth)
    profiles = (store or default_profile_store()).load(key) if key else {}
    settled = all(
        name in profiles and profiles[name].median_elapsed is not None
        for name in candidates
    )
    return choose_backend(profiles, candidates, heuristic), settled


def _structural_key(plan_source, parameter_values, spec, recovery, depth) -> tuple:
    """A hashable identity for plan caching (mirrors the collapse cache key)."""
    from ..ir import LoopNest
    from ..kernels import Kernel

    if isinstance(plan_source, str):
        source_key: tuple = ("kernel", plan_source)
    elif isinstance(plan_source, Kernel):
        source_key = ("kernel", plan_source.name)
    elif isinstance(plan_source, LoopNest):
        source_key = (
            "nest",
            plan_source.name,
            tuple((l.iterator, l.lower, l.upper) for l in plan_source.loops),
            tuple(plan_source.parameters),
            # statements are behavior now, not just metadata: hybrid/native
            # plans compile their C body from them, so two same-shaped nests
            # with different statements must never share a plan
            tuple(
                (
                    statement.name,
                    statement.c_text,
                    tuple(str(access) for access in statement.accesses),
                    getattr(statement.compute, "__qualname__", None),
                )
                for statement in plan_source.statements
            ),
        )
    else:
        # CollapsedLoop: identity is safe *because* the cache pins it — the
        # cached plan holds the collapsed loop, so its id cannot be recycled
        # while the entry (and thus this key) exists
        source_key = ("object", id(plan_source))
    return (
        source_key,
        depth,
        tuple(sorted((k, int(v)) for k, v in parameter_values.items())),
        str(spec),
        recovery,
    )


#: settled auto resolutions are reused this many times before the session
#: re-reads the profile store — new measurements land every run, but medians
#: over the elapsed window move slowly, so a bounded-staleness memo buys back
#: the resolver's store read on the hot path without freezing the choice
AUTO_REVALIDATE_EVERY = 8


class RuntimeSession:
    """Plan cache + persistent engine + (optionally) persistent buffers."""

    def __init__(self, workers: int = 2, start_method: Optional[str] = None):
        self.engine = RuntimeEngine(workers=workers, start_method=start_method)
        self._plans: Dict[tuple, ExecutionPlan] = {}
        self._buffers: Dict[str, SharedBuffers] = {}  # plan_id -> session-owned buffers
        #: settled ``backend="auto"`` resolutions, re-validated every
        #: AUTO_REVALIDATE_EVERY uses: (profile key, option signature) ->
        #: (backend, remaining uses).  Exploration picks are never memoised,
        #: so every untimed candidate still gets its measurement run.
        self._auto_memo: Dict[tuple, Tuple[str, int]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # plans
    # ------------------------------------------------------------------ #
    def plan_for(
        self,
        source,
        parameter_values: Mapping[str, int],
        schedule: object = "adaptive",
        depth: Optional[int] = None,
        recovery: str = "compiled",
        **plan_kwargs,
    ) -> ExecutionPlan:
        """The cached plan of (source, parameters, schedule); built on miss."""
        spec = ScheduleSpec.parse(schedule)
        key = _structural_key(source, parameter_values, spec, recovery, depth) + (
            tuple(sorted(
                # module + qualname: two same-named functions from different
                # modules must not share a cached plan
                (
                    name,
                    f"{getattr(value, '__module__', '')}.{value.__qualname__}"
                    if hasattr(value, "__qualname__")
                    else repr(value),
                )
                for name, value in plan_kwargs.items()
            )),
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = build_plan(
                    source, parameter_values, schedule=spec, depth=depth,
                    recovery=recovery, **plan_kwargs,
                )
                self._plans[key] = plan
        return plan

    def cache_info(self) -> Dict[str, int]:
        return {"plans": len(self._plans), "buffers": len(self._buffers)}

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        source,
        parameter_values: Mapping[str, int],
        data=None,
        schedule: object = "adaptive",
        depth: Optional[int] = None,
        recovery: str = "compiled",
        fresh_data: bool = True,
        backend: str = "engine",
        threads: Optional[int] = None,
        **plan_kwargs,
    ):
        """Collapse (cached), plan (cached), execute on the persistent engine.

        For a kernel source the return value is the kernel's result
        ``DataDict`` (private copies — safe to keep).  ``data`` seeds the
        shared buffers; with ``data=None`` the kernel's ``make_data`` output
        is used, the session keeps the buffers attached across calls, and
        ``fresh_data=True`` (the default) re-initialises them in place each
        run — steady-state runs allocate nothing.

        Nest/collapsed-loop sources need their operations passed through
        ``plan_kwargs`` (``iteration_op=``/``chunk_op=``, module-level
        functions); they run against the caller's shared ``data`` buffers
        if given, and the return value is the :class:`EngineRunResult`.

        ``backend`` selects the execution substrate:

        * ``"engine"`` (default) — chunks dispatched to the persistent
          worker pool, executed by the Python/NumPy operations;
        * ``"hybrid"`` — same pool, same schedules (including
          ``"adaptive"``), but each worker executes its chunks through the
          compiled translation unit's serial ``repro_run_range`` (the
          parent compiles once — disk-cached under ``$REPRO_NATIVE_CACHE``
          — and workers attach the shared object by path).  Where no C
          compiler exists (``$CC``, ``cc``, ``gcc``, ``clang`` all absent)
          the call *falls back to the engine backend* instead of raising;
          an actual compilation *failure* with a compiler present (e.g. a
          broken caller ``c_body``) still raises, because silence there
          would hide a bug;
        * ``"native"`` — one in-process ``ctypes`` call into the
          whole-range OpenMP ``repro_run`` — see :meth:`run_native`.  This
          backend raises :class:`~repro.native.NativeUnavailable` without a
          compiler (no silent fallback: its OpenMP team and schedule are
          the thing being requested).

        ``backend="auto"`` closes the measure→schedule loop one level up:
        every run (any backend) banks its timings in the persistent
        :class:`~repro.runtime.profile.ProfileStore` under the plan's key,
        and ``auto`` resolves to the viable substrate those profiles say is
        fastest — exploring each untimed candidate once (heuristic order)
        before exploiting the measured best.  Cold stores fall back to the
        static decision matrix; an unviable candidate set degrades to the
        engine, mirroring the hybrid missing-compiler contract.

        ``threads`` caps the native OpenMP team (defaulting to the engine's
        worker count) and is rejected on the engine/hybrid backends, whose
        parallelism is the session's ``workers``.
        """
        from ..kernels import get_kernel

        auto_requested = backend == "auto"
        if backend == "auto":
            if threads is not None:
                # threads is a native-only option: a caller pinning the
                # OpenMP team size has already chosen the substrate
                backend = "native"
            else:
                allow_native = (
                    depth is None and recovery == "compiled" and fresh_data is True
                    and not plan_kwargs
                )
                memo_key = (
                    _profile_key_or_none(source, parameter_values, schedule, depth),
                    allow_native,
                    data is None,
                )
                cached = self._auto_memo.get(memo_key) if memo_key[0] else None
                if cached is not None and cached[1] > 0:
                    backend = cached[0]
                    self._auto_memo[memo_key] = (backend, cached[1] - 1)
                else:
                    backend, settled = _resolve_auto(
                        source,
                        parameter_values,
                        schedule=schedule,
                        depth=depth,
                        data=data,
                        allow_native=allow_native,
                        **plan_kwargs,
                    )
                    if memo_key[0] is not None and settled:
                        self._auto_memo[memo_key] = (backend, AUTO_REVALIDATE_EVERY)
                    else:
                        self._auto_memo.pop(memo_key, None)
        if backend == "native":
            # reject rather than silently drop anything only the engine honours
            engine_only = sorted(plan_kwargs)
            if depth is not None:
                engine_only.append("depth")
            if recovery != "compiled":
                engine_only.append("recovery")
            if fresh_data is not True:
                engine_only.append("fresh_data")
            if engine_only:
                raise PlanError(
                    f"the native backend does not take {engine_only}; these are "
                    "engine-only options — use backend='engine'"
                )
            return self.run_native(
                source, parameter_values, data=data, schedule=schedule, threads=threads
            )
        if backend not in ("engine", "hybrid"):
            raise PlanError(
                f"unknown backend {backend!r}; expected 'auto', 'engine', 'hybrid' "
                "or 'native'"
            )
        if threads is not None:
            raise PlanError(
                "threads is a native-backend option; the engine's parallelism is "
                "the session's worker count (set workers= when creating it)"
            )

        if backend == "hybrid":
            # deferred import: the native backend is optional
            from ..native import NativeUnavailable, native_available

            try:
                plan = self.plan_for(
                    source, parameter_values, schedule, depth, recovery,
                    native=True, **plan_kwargs,
                )
            except NativeUnavailable as unavailable:
                if native_available():
                    # a compiler exists, so this is a real compilation
                    # failure (e.g. a broken user c_body) — surface it
                    # instead of silently running the slow engine
                    raise
                # no C compiler: the engine computes the identical result,
                # just without the per-chunk C speed — degrade, don't fail.
                # Native-only options must not reach the engine plan.
                engine_kwargs = {
                    name: value for name, value in plan_kwargs.items()
                    if name not in ("c_body", "c_arrays", "array_ndims", "compile_flags")
                }
                try:
                    plan = self.plan_for(
                        source, parameter_values, schedule, depth, recovery,
                        **engine_kwargs,
                    )
                except PlanError:
                    # the engine cannot run this source either (no Python
                    # ops): the actionable problem is the missing compiler,
                    # so that is the error the caller must see
                    raise unavailable from None
        else:
            if auto_requested:
                # an auto resolution landing on the engine must not forward
                # native-only options an ad-hoc nest carried for the hybrid
                # candidate (c_body etc. would be a PlanError on an engine
                # plan); an *explicitly* requested engine backend still
                # rejects them — that is a caller mistake, not a degradation
                plan_kwargs = {
                    name: value for name, value in plan_kwargs.items()
                    if name not in ("c_body", "c_arrays", "array_ndims", "compile_flags")
                }
            plan = self.plan_for(source, parameter_values, schedule, depth, recovery, **plan_kwargs)
        kernel = None
        if plan.kernel_name is not None:
            kernel = get_kernel(plan.kernel_name)

        if kernel is None:
            if data is None:
                return self.execute(plan)
            # nest sources run over the caller's arrays: stage them in shared
            # memory, execute, and copy the mutations back in place
            with SharedBuffers.create(dict(data)) as buffers:
                result = self.execute(plan, buffers=buffers)
                for name, value in buffers.arrays.items():
                    data[name][...] = value
                self.engine.forget(plan)
            return result

        if data is not None:
            with SharedBuffers.create(dict(data)) as buffers:
                self.execute(plan, buffers=buffers)
                result = buffers.snapshot()
                # workers must not keep mappings of segments about to vanish
                self.engine.forget(plan)
            return result

        buffers = self._buffers.get(plan.plan_id)
        if buffers is None or buffers.closed:
            buffers = SharedBuffers.create(kernel.make_data(parameter_values))
            self._buffers[plan.plan_id] = buffers
        elif fresh_data:
            buffers.fill_from(kernel.make_data(parameter_values))
        self.execute(plan, buffers=buffers)
        return buffers.snapshot()

    def execute(self, plan: ExecutionPlan, buffers: Optional[SharedBuffers] = None) -> EngineRunResult:
        """Engine pass-through for callers managing plans/buffers themselves.

        Like every session execution path, the run's timings are banked in
        the profile store under the plan's ``profile_key`` (when it has one)
        — recording is the session layer's job, so direct-engine callers
        stay profile-free.
        """
        result = self.engine.execute(plan, buffers=buffers)
        self._bank(plan.profile_key, result)
        return result

    def _bank(self, key: Optional[str], result) -> None:
        """Bank one run's timings in the profile store; never raises.

        ``result`` is any object speaking the timing schema
        (:class:`EngineRunResult` or :class:`~repro.native.NativeRunResult`).
        A failure to persist — read-only store root, disk full — must not
        turn a successful run into an error, so this swallows everything.
        """
        if key is None or result is None:
            return
        try:
            default_profile_store().record(
                key,
                result.backend,
                elapsed_seconds=float(result.elapsed_seconds),
                workers=int(result.workers) or self.engine.workers,
                total_iterations=int(result.iterations),
                chunks=result.chunk_records(),
            )
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # native backend
    # ------------------------------------------------------------------ #
    def run_native(
        self,
        source,
        parameter_values: Mapping[str, int],
        data=None,
        schedule: object = "adaptive",
        threads: Optional[int] = None,
    ):
        """Run a registered kernel through the compiled C/OpenMP backend.

        The kernel's translation unit is compiled once per (kernel,
        schedule) — memoised process-wide and cached on disk by source hash
        under ``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-native``),
        with the compiler taken from ``$CC`` or the first of
        ``cc``/``gcc``/``clang`` — so repeated calls are a single
        ``ctypes`` dispatch; the return value is the result ``DataDict``,
        element-wise comparable to the engine's.  ``source`` must be a
        registered kernel (name or :class:`~repro.kernels.Kernel`) with a
        ``c_body`` — for ad-hoc nests use ``backend="hybrid"`` (parsed
        array-assignment statements compile to a native body) or the
        engine.  The engine-only ``"adaptive"`` policy has no OpenMP
        spelling and maps to ``static`` here; ``threads`` defaults to the
        engine's worker count, keeping the backends' parallelism
        comparable.  Raises :class:`~repro.native.NativeUnavailable` where
        no C compiler exists.

        The run's timings are banked in the profile store under the key of
        the *requested* schedule spelling (before the adaptive→static
        normalisation), so a native run and an engine/hybrid run of the
        same configuration land in the same store entry — which is what
        lets ``backend="auto"`` compare them.
        """
        from ..ir import LoopNest
        from ..kernels import Kernel
        from ..kernels import get_kernel
        from ..native import compile_native_kernel
        from ..openmp.schedule import ScheduleKind

        raw_spec = ScheduleSpec.parse(schedule)
        spec = raw_spec
        if spec.kind is ScheduleKind.ADAPTIVE:
            spec = ScheduleSpec.parse("static")
        if isinstance(source, LoopNest):
            key = _profile_key_or_none(source, parameter_values, raw_spec)
            result = self._run_native_nest(source, parameter_values, data, spec, threads)
            self._bank(key, result)
            return result
        kernel = get_kernel(source) if isinstance(source, str) else source
        if not isinstance(kernel, Kernel):
            raise PlanError(
                f"the native backend runs registered kernels and parsed nests, not "
                f"{type(source).__name__}; use backend='engine' for Python-only sources"
            )
        if not kernel.supports_native:
            raise ValueError(f"kernel {kernel.name!r} has no native C body")
        # compiled modules are memoised process-wide (repro.native.module)
        # and on disk by source hash, so repeated session calls recompile
        # nothing; the module is run here (not via run_collapsed_native)
        # because the NativeRunResult carries the timings the store banks
        data = (
            {name: np.copy(value) for name, value in data.items()}
            if data is not None
            else kernel.make_data(parameter_values)
        )
        module = compile_native_kernel(kernel, schedule=spec)
        result = module.run(data, parameter_values, threads=threads or self.engine.workers)
        self._bank(_profile_key_or_none(kernel, parameter_values, raw_spec), result)
        return data

    def _run_native_nest(self, nest, parameter_values, data, spec, threads):
        """Whole-range native execution of an ad-hoc parsed nest.

        The nest's array-assignment statements (their ``c_text``) become the
        translation unit's body; ``data`` provides the arrays and is mutated
        in place, mirroring the engine's nest contract.  Returns the
        :class:`~repro.native.NativeRunResult`.
        """
        from ..core import collapse
        from ..ir.parser import ParseError, native_array_ndims, native_body
        from ..native import compile_collapsed

        try:
            body, arrays = native_body(nest)
            ndims = native_array_ndims(nest)
        except ParseError as error:
            raise PlanError(
                f"the native backend needs a C body, and nest {nest.name!r} has none "
                f"({error}); use backend='engine' with Python ops instead"
            ) from None
        if data is None:
            raise PlanError(
                f"running nest {nest.name!r} natively needs data= arrays "
                f"for {list(arrays)}"
            )
        module = compile_collapsed(
            collapse(nest), body=body, arrays=arrays, schedule=spec, array_ndims=ndims
        )
        return module.run(data, parameter_values, threads=threads or self.engine.workers)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the engine down and unlink every session-owned segment."""
        self.engine.shutdown()
        for buffers in self._buffers.values():
            buffers.close()
        self._buffers.clear()
        self._plans.clear()
        self._auto_memo.clear()

    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# module-level default session
# ---------------------------------------------------------------------- #
_DEFAULT: Optional[RuntimeSession] = None
_DEFAULT_LOCK = threading.Lock()


def default_session(workers: int = 2) -> RuntimeSession:
    """The lazily started process-wide session (``workers`` applies on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = RuntimeSession(workers=workers)
            atexit.register(close_default_session)
    return _DEFAULT


def close_default_session() -> None:
    """Tear down the default session (idempotent; re-created on next use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.close()
            _DEFAULT = None


def collapse_and_run(
    source,
    parameter_values: Mapping[str, int],
    workers: int = 2,
    schedule: object = "adaptive",
    data=None,
    session: Optional[RuntimeSession] = None,
    **run_kwargs,
):
    """One call from kernel to result, through the persistent runtime.

    ``source`` is a registered kernel name (``"utma"``), a
    :class:`~repro.kernels.Kernel`, a nest or a collapsed loop; see
    :meth:`RuntimeSession.run`.  Without an explicit ``session`` the default
    session is used (its engine starts on the first call and persists, so
    repeated calls pay no pool start-up; ``workers`` only takes effect on
    the call that creates it).

    ``backend`` picks the execution substrate (full decision matrix in
    ``docs/architecture.md``):

    * ``"engine"`` (default) — persistent worker pool, Python/NumPy chunk
      execution, every schedule policy including ``"adaptive"``;
    * ``"hybrid"`` — the same pool and schedules, each chunk executed
      natively through the compiled translation unit's ``repro_run_range``
      (adaptive scheduling *and* C speed; falls back to ``"engine"`` when
      no C compiler is found);
    * ``"native"`` — one whole-range call into the compiled C/OpenMP
      ``repro_run`` (raises :class:`~repro.native.NativeUnavailable`
      without a compiler);
    * ``"auto"`` — profile-guided choice among the above: every run banks
      its timings in the persistent profile store
      (``$REPRO_PROFILE_DIR``, default ``~/.cache/repro-profile``), and
      ``auto`` explores each viable substrate once, then runs the
      measured-fastest (see docs/runtime.md, "Online autotuning").

    Compiled shared objects are cached on disk under
    ``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-native``) and the
    compiler is picked from ``$CC``, then ``cc``/``gcc``/``clang``::

        data = collapse_and_run("utma", {"N": 512}, backend="hybrid")
    """
    session = session or default_session(workers=workers)
    return session.run(source, parameter_values, data=data, schedule=schedule, **run_kwargs)
