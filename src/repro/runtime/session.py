"""The high-level runtime API: ``collapse_and_run`` with plan caching.

A :class:`RuntimeSession` owns one persistent :class:`RuntimeEngine` plus a
cache of :class:`ExecutionPlan` objects keyed by (nest structure, collapse
depth, parameter values, schedule, recovery back end) — the same structural
key idea as the ``collapse()`` memo cache, one level up.  Asking the session
twice for the same kernel at the same size re-uses the plan, the workers'
compiled state and (for registry kernels run without caller data) the
shared-memory buffers, so a steady-state run is nothing but chunk dispatch.

:func:`collapse_and_run` is the one-call version::

    from repro.runtime import collapse_and_run

    data = collapse_and_run("utma", {"N": 512}, workers=4, schedule="adaptive")

The module-level default session behind it starts its engine lazily on the
first call and is torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import threading
from typing import Dict, Mapping, Optional, Tuple

from ..openmp.schedule import ScheduleSpec
from .engine import EngineRunResult, RuntimeEngine
from .plan import ExecutionPlan, PlanError, build_plan
from .shm import SharedBuffers


def _structural_key(plan_source, parameter_values, spec, recovery, depth) -> tuple:
    """A hashable identity for plan caching (mirrors the collapse cache key)."""
    from ..ir import LoopNest
    from ..kernels import Kernel

    if isinstance(plan_source, str):
        source_key: tuple = ("kernel", plan_source)
    elif isinstance(plan_source, Kernel):
        source_key = ("kernel", plan_source.name)
    elif isinstance(plan_source, LoopNest):
        source_key = (
            "nest",
            plan_source.name,
            tuple((l.iterator, l.lower, l.upper) for l in plan_source.loops),
            tuple(plan_source.parameters),
            # statements are behavior now, not just metadata: hybrid/native
            # plans compile their C body from them, so two same-shaped nests
            # with different statements must never share a plan
            tuple(
                (
                    statement.name,
                    statement.c_text,
                    tuple(str(access) for access in statement.accesses),
                    getattr(statement.compute, "__qualname__", None),
                )
                for statement in plan_source.statements
            ),
        )
    else:
        # CollapsedLoop: identity is safe *because* the cache pins it — the
        # cached plan holds the collapsed loop, so its id cannot be recycled
        # while the entry (and thus this key) exists
        source_key = ("object", id(plan_source))
    return (
        source_key,
        depth,
        tuple(sorted((k, int(v)) for k, v in parameter_values.items())),
        str(spec),
        recovery,
    )


class RuntimeSession:
    """Plan cache + persistent engine + (optionally) persistent buffers."""

    def __init__(self, workers: int = 2, start_method: Optional[str] = None):
        self.engine = RuntimeEngine(workers=workers, start_method=start_method)
        self._plans: Dict[tuple, ExecutionPlan] = {}
        self._buffers: Dict[str, SharedBuffers] = {}  # plan_id -> session-owned buffers
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # plans
    # ------------------------------------------------------------------ #
    def plan_for(
        self,
        source,
        parameter_values: Mapping[str, int],
        schedule: object = "adaptive",
        depth: Optional[int] = None,
        recovery: str = "compiled",
        **plan_kwargs,
    ) -> ExecutionPlan:
        """The cached plan of (source, parameters, schedule); built on miss."""
        spec = ScheduleSpec.parse(schedule)
        key = _structural_key(source, parameter_values, spec, recovery, depth) + (
            tuple(sorted(
                # module + qualname: two same-named functions from different
                # modules must not share a cached plan
                (
                    name,
                    f"{getattr(value, '__module__', '')}.{value.__qualname__}"
                    if hasattr(value, "__qualname__")
                    else repr(value),
                )
                for name, value in plan_kwargs.items()
            )),
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = build_plan(
                    source, parameter_values, schedule=spec, depth=depth,
                    recovery=recovery, **plan_kwargs,
                )
                self._plans[key] = plan
        return plan

    def cache_info(self) -> Dict[str, int]:
        return {"plans": len(self._plans), "buffers": len(self._buffers)}

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        source,
        parameter_values: Mapping[str, int],
        data=None,
        schedule: object = "adaptive",
        depth: Optional[int] = None,
        recovery: str = "compiled",
        fresh_data: bool = True,
        backend: str = "engine",
        threads: Optional[int] = None,
        **plan_kwargs,
    ):
        """Collapse (cached), plan (cached), execute on the persistent engine.

        For a kernel source the return value is the kernel's result
        ``DataDict`` (private copies — safe to keep).  ``data`` seeds the
        shared buffers; with ``data=None`` the kernel's ``make_data`` output
        is used, the session keeps the buffers attached across calls, and
        ``fresh_data=True`` (the default) re-initialises them in place each
        run — steady-state runs allocate nothing.

        Nest/collapsed-loop sources need their operations passed through
        ``plan_kwargs`` (``iteration_op=``/``chunk_op=``, module-level
        functions); they run against the caller's shared ``data`` buffers
        if given, and the return value is the :class:`EngineRunResult`.

        ``backend`` selects the execution substrate:

        * ``"engine"`` (default) — chunks dispatched to the persistent
          worker pool, executed by the Python/NumPy operations;
        * ``"hybrid"`` — same pool, same schedules (including
          ``"adaptive"``), but each worker executes its chunks through the
          compiled translation unit's serial ``repro_run_range`` (the
          parent compiles once — disk-cached under ``$REPRO_NATIVE_CACHE``
          — and workers attach the shared object by path).  Where no C
          compiler exists (``$CC``, ``cc``, ``gcc``, ``clang`` all absent)
          the call *falls back to the engine backend* instead of raising;
          an actual compilation *failure* with a compiler present (e.g. a
          broken caller ``c_body``) still raises, because silence there
          would hide a bug;
        * ``"native"`` — one in-process ``ctypes`` call into the
          whole-range OpenMP ``repro_run`` — see :meth:`run_native`.  This
          backend raises :class:`~repro.native.NativeUnavailable` without a
          compiler (no silent fallback: its OpenMP team and schedule are
          the thing being requested).

        ``threads`` caps the native OpenMP team (defaulting to the engine's
        worker count) and is rejected on the engine/hybrid backends, whose
        parallelism is the session's ``workers``.
        """
        from ..kernels import get_kernel

        if backend == "native":
            # reject rather than silently drop anything only the engine honours
            engine_only = sorted(plan_kwargs)
            if depth is not None:
                engine_only.append("depth")
            if recovery != "compiled":
                engine_only.append("recovery")
            if fresh_data is not True:
                engine_only.append("fresh_data")
            if engine_only:
                raise PlanError(
                    f"the native backend does not take {engine_only}; these are "
                    "engine-only options — use backend='engine'"
                )
            return self.run_native(
                source, parameter_values, data=data, schedule=schedule, threads=threads
            )
        if backend not in ("engine", "hybrid"):
            raise PlanError(
                f"unknown backend {backend!r}; expected 'engine', 'hybrid' or 'native'"
            )
        if threads is not None:
            raise PlanError(
                "threads is a native-backend option; the engine's parallelism is "
                "the session's worker count (set workers= when creating it)"
            )

        if backend == "hybrid":
            # deferred import: the native backend is optional
            from ..native import NativeUnavailable, native_available

            try:
                plan = self.plan_for(
                    source, parameter_values, schedule, depth, recovery,
                    native=True, **plan_kwargs,
                )
            except NativeUnavailable as unavailable:
                if native_available():
                    # a compiler exists, so this is a real compilation
                    # failure (e.g. a broken user c_body) — surface it
                    # instead of silently running the slow engine
                    raise
                # no C compiler: the engine computes the identical result,
                # just without the per-chunk C speed — degrade, don't fail.
                # Native-only options must not reach the engine plan.
                engine_kwargs = {
                    name: value for name, value in plan_kwargs.items()
                    if name not in ("c_body", "c_arrays", "array_ndims")
                }
                try:
                    plan = self.plan_for(
                        source, parameter_values, schedule, depth, recovery,
                        **engine_kwargs,
                    )
                except PlanError:
                    # the engine cannot run this source either (no Python
                    # ops): the actionable problem is the missing compiler,
                    # so that is the error the caller must see
                    raise unavailable from None
        else:
            plan = self.plan_for(source, parameter_values, schedule, depth, recovery, **plan_kwargs)
        kernel = None
        if plan.kernel_name is not None:
            kernel = get_kernel(plan.kernel_name)

        if kernel is None:
            if data is None:
                return self.engine.execute(plan)
            # nest sources run over the caller's arrays: stage them in shared
            # memory, execute, and copy the mutations back in place
            with SharedBuffers.create(dict(data)) as buffers:
                result = self.engine.execute(plan, buffers=buffers)
                for name, value in buffers.arrays.items():
                    data[name][...] = value
                self.engine.forget(plan)
            return result

        if data is not None:
            with SharedBuffers.create(dict(data)) as buffers:
                self.engine.execute(plan, buffers=buffers)
                result = buffers.snapshot()
                # workers must not keep mappings of segments about to vanish
                self.engine.forget(plan)
            return result

        buffers = self._buffers.get(plan.plan_id)
        if buffers is None or buffers.closed:
            buffers = SharedBuffers.create(kernel.make_data(parameter_values))
            self._buffers[plan.plan_id] = buffers
        elif fresh_data:
            buffers.fill_from(kernel.make_data(parameter_values))
        self.engine.execute(plan, buffers=buffers)
        return buffers.snapshot()

    def execute(self, plan: ExecutionPlan, buffers: Optional[SharedBuffers] = None) -> EngineRunResult:
        """Low-level pass-through for callers managing plans/buffers themselves."""
        return self.engine.execute(plan, buffers=buffers)

    # ------------------------------------------------------------------ #
    # native backend
    # ------------------------------------------------------------------ #
    def run_native(
        self,
        source,
        parameter_values: Mapping[str, int],
        data=None,
        schedule: object = "adaptive",
        threads: Optional[int] = None,
    ):
        """Run a registered kernel through the compiled C/OpenMP backend.

        The kernel's translation unit is compiled once per (kernel,
        schedule) — memoised process-wide and cached on disk by source hash
        under ``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-native``),
        with the compiler taken from ``$CC`` or the first of
        ``cc``/``gcc``/``clang`` — so repeated calls are a single
        ``ctypes`` dispatch; the return value is the result ``DataDict``,
        element-wise comparable to the engine's.  ``source`` must be a
        registered kernel (name or :class:`~repro.kernels.Kernel`) with a
        ``c_body`` — for ad-hoc nests use ``backend="hybrid"`` (parsed
        array-assignment statements compile to a native body) or the
        engine.  The engine-only ``"adaptive"`` policy has no OpenMP
        spelling and maps to ``static`` here; ``threads`` defaults to the
        engine's worker count, keeping the backends' parallelism
        comparable.  Raises :class:`~repro.native.NativeUnavailable` where
        no C compiler exists.
        """
        from ..ir import LoopNest
        from ..kernels import Kernel, run_collapsed_native
        from ..kernels import get_kernel
        from ..openmp.schedule import ScheduleKind

        spec = ScheduleSpec.parse(schedule)
        if spec.kind is ScheduleKind.ADAPTIVE:
            spec = ScheduleSpec.parse("static")
        if isinstance(source, LoopNest):
            return self._run_native_nest(source, parameter_values, data, spec, threads)
        kernel = get_kernel(source) if isinstance(source, str) else source
        if not isinstance(kernel, Kernel):
            raise PlanError(
                f"the native backend runs registered kernels and parsed nests, not "
                f"{type(source).__name__}; use backend='engine' for Python-only sources"
            )
        # compiled modules are memoised process-wide (repro.native.module)
        # and on disk by source hash, so repeated session calls recompile
        # nothing; the execution itself is the one shared implementation
        return run_collapsed_native(
            kernel,
            parameter_values,
            data=data,
            schedule=spec,
            threads=threads or self.engine.workers,
        )

    def _run_native_nest(self, nest, parameter_values, data, spec, threads):
        """Whole-range native execution of an ad-hoc parsed nest.

        The nest's array-assignment statements (their ``c_text``) become the
        translation unit's body; ``data`` provides the arrays and is mutated
        in place, mirroring the engine's nest contract.  Returns the
        :class:`~repro.native.NativeRunResult`.
        """
        from ..core import collapse
        from ..ir.parser import ParseError, native_array_ndims, native_body
        from ..native import compile_collapsed

        try:
            body, arrays = native_body(nest)
            ndims = native_array_ndims(nest)
        except ParseError as error:
            raise PlanError(
                f"the native backend needs a C body, and nest {nest.name!r} has none "
                f"({error}); use backend='engine' with Python ops instead"
            ) from None
        if data is None:
            raise PlanError(
                f"running nest {nest.name!r} natively needs data= arrays "
                f"for {list(arrays)}"
            )
        module = compile_collapsed(
            collapse(nest), body=body, arrays=arrays, schedule=spec, array_ndims=ndims
        )
        return module.run(data, parameter_values, threads=threads or self.engine.workers)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the engine down and unlink every session-owned segment."""
        self.engine.shutdown()
        for buffers in self._buffers.values():
            buffers.close()
        self._buffers.clear()
        self._plans.clear()

    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# module-level default session
# ---------------------------------------------------------------------- #
_DEFAULT: Optional[RuntimeSession] = None
_DEFAULT_LOCK = threading.Lock()


def default_session(workers: int = 2) -> RuntimeSession:
    """The lazily started process-wide session (``workers`` applies on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = RuntimeSession(workers=workers)
            atexit.register(close_default_session)
    return _DEFAULT


def close_default_session() -> None:
    """Tear down the default session (idempotent; re-created on next use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is not None:
            _DEFAULT.close()
            _DEFAULT = None


def collapse_and_run(
    source,
    parameter_values: Mapping[str, int],
    workers: int = 2,
    schedule: object = "adaptive",
    data=None,
    session: Optional[RuntimeSession] = None,
    **run_kwargs,
):
    """One call from kernel to result, through the persistent runtime.

    ``source`` is a registered kernel name (``"utma"``), a
    :class:`~repro.kernels.Kernel`, a nest or a collapsed loop; see
    :meth:`RuntimeSession.run`.  Without an explicit ``session`` the default
    session is used (its engine starts on the first call and persists, so
    repeated calls pay no pool start-up; ``workers`` only takes effect on
    the call that creates it).

    ``backend`` picks the execution substrate (full decision matrix in
    ``docs/architecture.md``):

    * ``"engine"`` (default) — persistent worker pool, Python/NumPy chunk
      execution, every schedule policy including ``"adaptive"``;
    * ``"hybrid"`` — the same pool and schedules, each chunk executed
      natively through the compiled translation unit's ``repro_run_range``
      (adaptive scheduling *and* C speed; falls back to ``"engine"`` when
      no C compiler is found);
    * ``"native"`` — one whole-range call into the compiled C/OpenMP
      ``repro_run`` (raises :class:`~repro.native.NativeUnavailable`
      without a compiler).

    Compiled shared objects are cached on disk under
    ``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro-native``) and the
    compiler is picked from ``$CC``, then ``cc``/``gcc``/``clang``::

        data = collapse_and_run("utma", {"N": 512}, backend="hybrid")
    """
    session = session or default_session(workers=workers)
    return session.run(source, parameter_values, data=data, schedule=schedule, **run_kwargs)
