"""Execution plans: collapse once, decide the schedule once, run many times.

An :class:`ExecutionPlan` bundles everything a run of a collapsed nest needs
— the :class:`~repro.core.CollapsedLoop` (with its memoised compiled batch
recovery), the concrete parameter values, the kernel operations, and a
:class:`~repro.openmp.ScheduleSpec` policy — so the expensive parts (Ehrhart
ranking, symbolic root solving, NumPy code generation, chunk planning) are
paid at build time and every subsequent :meth:`RuntimeEngine.execute
<repro.runtime.engine.RuntimeEngine.execute>` is pure dispatch.

The module also implements the engine's own schedule policy,
``ScheduleKind.ADAPTIVE``: chunks sized by the cost model of
:mod:`repro.openmp.costmodel` so that each chunk carries near-equal
estimated *work* rather than an equal iteration count.  For a kernel like
``ltmp`` — whose non-collapsed inner loop leaves a per-``pc`` work that
varies with the recovered indices — equal-iteration static chunks are
imbalanced even after collapsing (the one negative case of the paper's
Fig. 9); equal-work chunks restore the balance without paying dynamic
dispatch for thousands of tiny chunks.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (native imports runtime)
    from ..native.module import NativeLibrarySpec

from ..core import CollapsedLoop, batch_recovery, collapse, resolve_recovery_backend
from ..ir import LoopNest
from ..openmp.costmodel import CostModel
from ..openmp.schedule import Chunk, ScheduleKind, ScheduleSpec, schedule_chunks
from ..symbolic.compile import compile_polynomial
from .profile import (
    ProfileError,
    default_profile_store,
    profile_guided_chunks,
    profile_key,
)

_PLAN_IDS = itertools.count(1)

#: chunks handed out per worker by the on-demand policies when no explicit
#: chunk size is given — enough slack for load balancing, few enough that
#: queue traffic stays negligible next to the chunk compute.
DEFAULT_OVERSUBSCRIBE = 4


class PlanError(ValueError):
    """Raised for plans that cannot be built or executed."""


def per_iteration_work(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    cost_model: Optional[CostModel] = None,
) -> np.ndarray:
    """Estimated work of every collapsed iteration, as a float64 vector.

    The cost model's ``work_below(depth)`` polynomial (the Ehrhart count of
    the non-collapsed inner loops) is specialised to the parameter values,
    compiled to NumPy straight-line code, and evaluated over the indices the
    batch recovery produces for the whole ``pc`` range — the same vectorized
    machinery the execution fast path uses, here powering the scheduler.
    The recovered indices are exact at any magnitude (the batch path's
    integer bracket pass), so adaptive chunk cuts are placed on true
    iteration coordinates even for domains past the float64 mantissa.
    """
    model = cost_model or CostModel(collapsed.nest)
    total = collapsed.total_iterations(parameter_values)
    if total == 0:
        return np.zeros(0, dtype=np.float64)
    work_poly = model.work_below(collapsed.depth).evaluate_partial(dict(parameter_values))
    names = [name for name in collapsed.iterators if name in work_poly.variables()]
    if not names:  # constant work per iteration (fully collapsed nests)
        constant = max(0.0, float(work_poly.evaluate({})))
        return np.full(total, constant * model.costs.unit_work, dtype=np.float64)
    indices = batch_recovery(collapsed).recover_range(1, total, parameter_values)
    compiled = compile_polynomial(work_poly, variables=names, mode="numpy")
    columns = {
        name: indices[:, position].astype(np.float64)
        for position, name in enumerate(collapsed.iterators)
    }
    work = np.asarray(compiled.evaluate(columns), dtype=np.float64)
    return np.maximum(work, 0.0) * model.costs.unit_work


def adaptive_chunks(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    workers: int,
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
    cost_model: Optional[CostModel] = None,
) -> List[Chunk]:
    """Cut ``[1, total]`` into ~``workers * oversubscribe`` equal-*work* chunks.

    The cumulative work vector is cut at its evenly spaced quantiles, so a
    chunk covering cheap iterations (small recovered inner trip counts) is
    proportionally longer than one covering expensive iterations.  Chunks
    carry no pre-assigned thread: the engine hands them out on demand, and
    the equal-work sizing keeps the hand-out count small.
    """
    if workers < 1:
        raise PlanError("workers must be at least 1")
    total = collapsed.total_iterations(parameter_values)
    if total == 0:
        return []
    work = per_iteration_work(collapsed, parameter_values, cost_model)
    cumulative = np.cumsum(work)
    grand_total = float(cumulative[-1])
    count = min(total, max(1, workers * max(1, oversubscribe)))
    if grand_total <= 0.0:  # degenerate model: fall back to equal iterations
        bounds = np.linspace(0, total, count + 1).astype(np.int64)
    else:
        targets = np.linspace(0.0, grand_total, count + 1)[1:-1]
        cuts = np.searchsorted(cumulative, targets, side="left") + 1
        bounds = np.concatenate(([0], cuts, [total]))
    chunks: List[Chunk] = []
    previous = 0
    for bound in bounds[1:]:
        bound = int(min(max(bound, previous), total))
        if bound > previous:
            chunks.append(Chunk(first=previous + 1, last=bound))
            previous = bound
    if previous < total:  # numerical guard: never drop the tail
        chunks.append(Chunk(first=previous + 1, last=total))
    return chunks


@dataclass(frozen=True)
class ExecutionPlan:
    """One reusable, engine-executable description of a collapsed run.

    Built once by :func:`build_plan` (or cached by the session layer) and
    executed any number of times; ``plan_id`` is what the engine uses to
    register the plan with its workers exactly once.
    """

    plan_id: str
    collapsed: CollapsedLoop
    parameter_values: Mapping[str, int]
    schedule: ScheduleSpec
    kernel_name: Optional[str] = None
    iteration_op: Optional[Callable] = None
    chunk_op: Optional[Callable] = None
    recovery: str = "compiled"
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE
    cost_model: Optional[CostModel] = field(default=None, compare=False)
    #: attachment recipe of the plan's compiled translation unit (set by
    #: ``build_plan(native=True)``): the parent compiles once, workers load
    #: the cached shared object by path and run chunks through its serial
    #: ``repro_run_range`` — the hybrid backend's substrate
    native_spec: Optional["NativeLibrarySpec"] = None
    #: the plan's key in the persistent :class:`~repro.runtime.profile.ProfileStore`
    #: (set by :func:`build_plan`): when a warm profile exists under it, the
    #: ``adaptive`` policy re-cuts its chunks from *measured* chunk seconds
    #: instead of the analytic cost model
    profile_key: Optional[str] = None
    #: chunk partitions per worker count, memoised with the profile-store
    #: change token they were cut against — plans are immutable and the
    #: adaptive cut walks the whole pc range, so dispatch must not repay it;
    #: but a fresh measurement (new token) invalidates the memo, which is
    #: how the measure→schedule loop closes between runs
    _chunk_cache: Dict[int, Tuple[int, List[Chunk]]] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def total_iterations(self) -> int:
        return self.collapsed.total_iterations(self.parameter_values)

    def chunks(self, workers: int) -> List[Chunk]:
        """The chunk partition this plan's policy produces for ``workers``.

        ``ADAPTIVE`` sizes chunks by *measured* per-chunk seconds when the
        persistent profile store holds a warm profile for this plan's key
        (:func:`~repro.runtime.profile.profile_guided_chunks`) and by the
        cost model's estimated per-iteration work otherwise — the paper's
        collapsed-schedule argument closed into a feedback loop; ``DYNAMIC``
        without an explicit chunk size uses an oversubscribed equal split
        (OpenMP's default chunk of 1 would mean one queue round-trip per
        iteration, a pure-overhead regime the simulator already covers);
        the classic kinds delegate to :func:`repro.openmp.schedule_chunks`.
        Partitions are memoised per worker count against the profile
        store's change token — a new measurement re-cuts, an unchanged
        store costs one ``stat`` per dispatch.
        """
        adaptive = self.schedule.kind is ScheduleKind.ADAPTIVE
        token = 0
        if adaptive and self.profile_key is not None:
            token = default_profile_store().token(self.profile_key)
        cached = self._chunk_cache.get(workers)
        if cached is not None and cached[0] == token:
            return list(cached[1])
        total = self.total_iterations
        if adaptive:
            chunks = []
            if token:
                segments = default_profile_store().segments(
                    self.profile_key,
                    total,
                    prefer_backend="hybrid" if self.native_spec is not None else "engine",
                )
                count = min(total, max(1, workers * max(1, self.oversubscribe)))
                chunks = profile_guided_chunks(segments, total, count)
            if not chunks:  # cold store (or unusable measurements): a priori model
                chunks = adaptive_chunks(
                    self.collapsed,
                    self.parameter_values,
                    workers,
                    oversubscribe=self.oversubscribe,
                    cost_model=self.cost_model,
                )
        elif self.schedule.kind is ScheduleKind.DYNAMIC and self.schedule.chunk_size is None:
            chunk = max(1, -(-total // (workers * max(1, self.oversubscribe))))
            chunks = schedule_chunks(ScheduleSpec(ScheduleKind.DYNAMIC, chunk), total, workers)
        else:
            chunks = schedule_chunks(self.schedule, total, workers)
        self._chunk_cache[workers] = (token, chunks)
        return list(chunks)

    def payload(self) -> dict:
        """The picklable registration message workers rebuild the plan from.

        A registry kernel travels as its name (workers resolve operations
        from their own registry); ad-hoc operations travel as module-level
        function references.  The collapsed loop itself pickles cheaply —
        the solved unranking goes over the wire, so workers never repeat the
        symbolic root solving, only the (fast) NumPy code generation.
        """
        # note: the collapsed loop's pickled unranking carries the
        # denominator-cleared bracket polynomials, so worker-side
        # BatchRecovery instances share the parent's exact-recovery
        # contract without re-deriving anything
        return {
            "plan_id": self.plan_id,
            "collapsed": self.collapsed,
            "parameter_values": dict(self.parameter_values),
            "kernel_name": self.kernel_name,
            "iteration_op": None if self.kernel_name else self.iteration_op,
            "chunk_op": None if self.kernel_name else self.chunk_op,
            "recovery": self.recovery,
            "native": self.native_spec,
        }


def _native_spec_for(source, collapsed, c_body, c_arrays, array_ndims, compile_flags=()):
    """Compile the plan's translation unit in the parent; return its spec.

    The C body comes from (in order) the caller's explicit ``c_body``, a
    registered kernel's ``c_body``, or the C text the parser attached to an
    ad-hoc nest's array-assignment statements
    (:func:`repro.ir.parser.native_body`).  The unit is compiled with the
    ``static`` whole-range schedule — the hybrid path only ever calls the
    schedule-independent serial ``repro_run_range``, so all hybrid plans of
    one nest share one cached shared object regardless of their engine
    schedule.  Raises :class:`~repro.native.NativeUnavailable` without a C
    compiler (callers fall back to the pure-Python engine) and
    :class:`PlanError` when no C body exists at all.
    """
    from ..ir.parser import ParseError, native_array_ndims, native_body
    from ..kernels import Kernel  # deferred: kernels import runtime helpers
    from ..native import compile_collapsed  # deferred: native imports runtime

    body, arrays = c_body, tuple(c_arrays)
    if body is None and isinstance(source, Kernel):
        body, arrays = source.c_body, source.c_arrays
    if body is None and isinstance(source, LoopNest):
        try:
            body, arrays = native_body(source)
        except ParseError:
            body = None  # opaque statements: fall through to the no-body error
        else:
            if array_ndims is None:  # macro ranks follow the parsed subscripts
                try:
                    array_ndims = native_array_ndims(source)
                except ParseError as error:
                    # the nest HAS a body; hiding a rank conflict behind a
                    # "no C body" message would point the caller at the
                    # wrong fix
                    raise PlanError(str(error)) from None
    if body is None:
        raise PlanError(
            f"cannot build a native plan for {getattr(source, 'name', source)!r}: "
            "no C body (pass c_body=/c_arrays=, use a kernel with c_body, or parse "
            "the nest from array-assignment statements)"
        )
    module = compile_collapsed(
        collapsed, body=body, arrays=arrays, schedule="static", array_ndims=array_ndims,
        extra_flags=tuple(compile_flags),
    )
    return module.library_spec()


def build_plan(
    source,
    parameter_values: Mapping[str, int],
    schedule: object = "adaptive",
    depth: Optional[int] = None,
    recovery: str = "compiled",
    oversubscribe: int = DEFAULT_OVERSUBSCRIBE,
    iteration_op: Optional[Callable] = None,
    chunk_op: Optional[Callable] = None,
    native: bool = False,
    c_body: Optional[str] = None,
    c_arrays: Sequence[str] = (),
    array_ndims: Optional[Mapping[str, int]] = None,
    compile_flags: Sequence[str] = (),
    static_check: Optional[bool] = None,
) -> ExecutionPlan:
    """Build an :class:`ExecutionPlan` from a kernel, nest or collapsed loop.

    ``source`` may be a registered kernel name, a
    :class:`~repro.kernels.Kernel`, a :class:`~repro.ir.LoopNest` (collapsed
    here, through the memo cache) or an existing
    :class:`~repro.core.CollapsedLoop`.  Ad-hoc ``iteration_op``/``chunk_op``
    must be module-level (picklable) functions; registered kernels need
    neither, their operations resolve from the registry inside each worker.

    ``native=True`` additionally compiles the nest's C translation unit *in
    the calling process* (kernel ``c_body``, explicit ``c_body``/``c_arrays``
    or parser-derived statements; ``array_ndims`` for non-2-D arrays) and
    attaches its :class:`~repro.native.NativeLibrarySpec` to the plan:
    engine workers then load the cached shared object by path and execute
    their chunks through the serial ``repro_run_range`` at C speed — the
    hybrid backend.  ``compile_flags`` are appended to the compiler command
    line of that translation unit (and to its cache keys) — the sweep's
    compiler-flags axis.  Raises :class:`~repro.native.NativeUnavailable`
    where no C compiler exists.

    ``static_check`` controls the :mod:`repro.lint` audits that run before
    anything compiles or executes.  The default (``None``) runs the static
    overflow audit for native plans — the emitted ``long long`` /
    ``__int128`` widths are *proven* unable to wrap at these parameter
    values, where the big-int Python paths need no such proof.
    ``static_check=True`` runs the full audit (overflow plus the C-body
    footprint and generated-C privatisation checks when a body is known);
    ``static_check=False`` skips everything.  Any error-severity finding
    raises :class:`PlanError` before the compiler is ever invoked.
    """
    from ..kernels import Kernel, get_kernel  # deferred: kernels import runtime helpers

    resolve_recovery_backend(recovery)
    spec = ScheduleSpec.parse(schedule)
    kernel_name: Optional[str] = None
    cost_model: Optional[CostModel] = None

    if isinstance(source, str):
        source = get_kernel(source)
    if isinstance(source, Kernel):
        if not source.is_executable:
            raise PlanError(f"kernel {source.name!r} has no executable body")
        kernel_name = source.name
        cost_model = source.cost_model()
        collapsed = source.collapsed()
        iteration_op = source.iteration_op
        chunk_op = source.chunk_op
    elif isinstance(source, LoopNest):
        collapsed = collapse(source, depth)
    elif isinstance(source, CollapsedLoop):
        collapsed = source
    else:
        raise PlanError(f"cannot build a plan from {type(source).__name__}")

    if static_check or (static_check is None and native):
        # audit before compiling: a plan whose emitted widths could wrap (or,
        # under full checking, whose region privatisation is unproven) must
        # never reach the compiler
        from ..lint.registry import static_check_plan  # deferred: lint imports ir

        check_body, check_arrays = c_body, tuple(c_arrays)
        if check_body is None and isinstance(source, Kernel):
            check_body, check_arrays = source.c_body, source.c_arrays
        static_check_plan(
            collapsed,
            parameter_values,
            c_body=check_body,
            c_arrays=check_arrays,
            schedule="static",  # native plans compile the static-schedule unit
            subject=kernel_name or collapsed.nest.name,
            full=bool(static_check),
            ir_statements=collapsed.nest.statements,
        ).raise_on_errors(PlanError)

    native_spec = None
    if native:
        native_spec = _native_spec_for(
            source, collapsed, c_body, c_arrays, array_ndims, compile_flags
        )
    elif c_body is not None or c_arrays or compile_flags:
        raise PlanError(
            "c_body/c_arrays/compile_flags are native-plan options; pass native=True"
        )

    if kernel_name is None and iteration_op is None and chunk_op is None and native_spec is None:
        raise PlanError("a plan needs a kernel or at least one of iteration_op/chunk_op")
    if kernel_name is None and iteration_op is None and chunk_op is not None and recovery != "compiled":
        # workers only take the chunk_op fast path when a compiled batch
        # recovery exists; without an iteration_op to fall back on, a
        # symbolic-recovery plan could never execute — fail at build time
        raise PlanError(
            "a chunk_op-only plan requires recovery='compiled' "
            "(or provide an iteration_op fallback)"
        )
    for op in (iteration_op, chunk_op):
        if kernel_name is None and op is not None:
            try:
                pickle.dumps(op)
            except Exception as error:
                raise PlanError(
                    f"operation {op!r} is not picklable; use a module-level function "
                    f"or a registered kernel ({error})"
                ) from error

    try:
        plan_profile_key = profile_key(source, parameter_values, spec, depth=depth)
    except ProfileError:
        plan_profile_key = None  # unfingerprintable source: plan runs unprofiled

    return ExecutionPlan(
        plan_id=f"plan-{next(_PLAN_IDS)}",
        collapsed=collapsed,
        parameter_values=dict(parameter_values),
        schedule=spec,
        kernel_name=kernel_name,
        iteration_op=iteration_op,
        chunk_op=chunk_op,
        recovery=recovery,
        oversubscribe=oversubscribe,
        cost_model=cost_model,
        native_spec=native_spec,
        profile_key=plan_profile_key,
    )
