"""Shared-memory NumPy buffers: kernel arrays mapped zero-copy into workers.

The per-call ``multiprocessing`` path pickles every input array into each
worker and pickles the results back — for a 512x512 float64 kernel that is
megabytes of copying per call, which swamps the per-chunk compute the
engine dispatches.  This module replaces the copies with
``multiprocessing.shared_memory``: the parent allocates one segment per
kernel array, workers attach the same segments by name and build NumPy
views onto them, and every chunk mutates the one true copy in place.
Because the collapsed loops carry no dependence, distinct chunks touch
disjoint elements and the in-place writes need no locking.

Ownership is explicit and asymmetric:

* the *owner* (:meth:`SharedBuffers.create`) allocates the segments, keeps
  them alive for the duration of the runs, and is the only side that may
  :meth:`unlink` them;
* *attachments* (:meth:`SharedBuffers.attach`, called in workers from a
  picklable tuple of :class:`SharedArraySpec`) open existing segments
  without copying and only ever :meth:`close` their own mapping.

On the ``resource_tracker``: every engine worker is a child of the owner
and therefore shares the owner's tracker process, where registration is
idempotent per segment — so worker attachments are harmless and the
owner's single ``unlink`` balances the books exactly.  (Pre-3.13
``shared_memory`` only misbehaves when *unrelated* processes attach, each
with its own tracker; the engine never does that.)
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np


class SharedBufferError(RuntimeError):
    """Raised for operations on closed buffers or failed attachments."""


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a worker needs to re-map one array: segment + dtype + shape.

    Plain strings and ints only, so a tuple of specs travels through a task
    queue for free (no array bytes are ever pickled).
    """

    name: str                 #: logical array name (the ``DataDict`` key)
    segment: str              #: shared-memory segment name to attach
    shape: Tuple[int, ...]
    dtype: str                #: ``np.dtype(...).str``, round-trip safe


class SharedBuffers:
    """A set of named NumPy arrays living in shared-memory segments.

    ``buffers.arrays`` is a ``DataDict``-shaped mapping of views onto the
    segments; pass it wherever a kernel expects its data dictionary.  Use as
    a context manager on the owner side for leak-free cleanup::

        with SharedBuffers.create(kernel.make_data(values)) as buffers:
            engine.execute(plan, buffers=buffers)
            result = buffers.snapshot()
    """

    def __init__(
        self,
        segments: Dict[str, shared_memory.SharedMemory],
        arrays: Dict[str, np.ndarray],
        specs: Tuple[SharedArraySpec, ...],
        owner: bool,
    ):
        self._segments = segments
        self.arrays = arrays
        self._specs = specs
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, data: Mapping[str, np.ndarray]) -> "SharedBuffers":
        """Allocate one segment per array and copy the initial values in.

        This is the only copy the data makes; every later run — in this
        process or any worker — operates on the segments directly.
        """
        segments: Dict[str, shared_memory.SharedMemory] = {}
        arrays: Dict[str, np.ndarray] = {}
        specs = []
        try:
            for name, value in data.items():
                source = np.ascontiguousarray(value)
                segment = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
                view = np.ndarray(source.shape, dtype=source.dtype, buffer=segment.buf)
                view[...] = source
                segments[name] = segment
                arrays[name] = view
                specs.append(
                    SharedArraySpec(
                        name=name,
                        segment=segment.name,
                        shape=tuple(source.shape),
                        dtype=np.dtype(source.dtype).str,
                    )
                )
        except Exception:
            for segment in segments.values():
                segment.close()
                segment.unlink()
            raise
        return cls(segments=segments, arrays=arrays, specs=tuple(specs), owner=True)

    @classmethod
    def attach(cls, specs: Tuple[SharedArraySpec, ...]) -> "SharedBuffers":
        """Map existing segments (worker side); zero bytes are copied."""
        segments: Dict[str, shared_memory.SharedMemory] = {}
        arrays: Dict[str, np.ndarray] = {}
        try:
            for spec in specs:
                segment = shared_memory.SharedMemory(name=spec.segment)
                segments[spec.name] = segment
                arrays[spec.name] = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
                )
        except Exception as error:
            for segment in segments.values():
                segment.close()
            raise SharedBufferError(f"cannot attach shared buffers: {error}") from error
        return cls(segments=segments, arrays=arrays, specs=tuple(specs), owner=False)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def specs(self) -> Tuple[SharedArraySpec, ...]:
        """The picklable description workers attach from."""
        return self._specs

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Private copies of every array (results that outlive the segments)."""
        if self._closed:
            raise SharedBufferError("buffers are closed")
        return {name: np.copy(view) for name, view in self.arrays.items()}

    def fill_from(self, data: Mapping[str, np.ndarray]) -> None:
        """Overwrite the segments in place (re-initialise between runs)."""
        if self._closed:
            raise SharedBufferError("buffers are closed")
        for name, value in data.items():
            self.arrays[name][...] = value

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release this process's mappings (and, for the owner, the segments).

        Owner close also unlinks: a ``create`` paired with a single ``close``
        leaks nothing.  Attachments never unlink — the owner's segments stay
        valid for everyone else.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays.clear()  # views must die before the mmaps can close
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - an outside view survives
                pass
            if self.owner:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments.clear()

    def __enter__(self) -> "SharedBuffers":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net, normal path is close()
        try:
            self.close()
        except Exception:
            pass
