"""The unified timing layer: chunk profiles and the persistent profile store.

Before this module, timing lived in three unrelated places — the emitted C
measured per-thread wall-clock with ``omp_get_wtime``, the engine measured
per-chunk spans around each worker dispatch, and the results carried them
in ad-hoc fields.  :mod:`repro.runtime.profile` makes those measurements
one currency and banks them:

* :class:`ChunkProfile` — one measured chunk: a contiguous ``pc`` span and
  the wall-clock seconds its execution took *inside* the worker (queue
  latency excluded; see the timing schema on
  :class:`~repro.runtime.engine.EngineRunResult`),
* :class:`BackendProfile` — everything measured about one
  (kernel, shape, schedule, backend) combination: run count, recent
  whole-run timings, and the most recent run's chunk profiles,
* :class:`ProfileStore` — the persistent on-disk home of those records,
  keyed like the plan and native caches (a source-hash digest of the nest
  structure, parameter values and schedule), rooted at
  ``$REPRO_PROFILE_DIR`` (default ``~/.cache/repro-profile``),
  concurrency-safe (atomic-rename writes, tolerant merge on load) and
  size-capped (oldest entries evicted).

The store is what closes the paper's measure→schedule loop: the adaptive
chunker re-cuts chunks from measured :class:`ChunkProfile` spans instead of
the analytic cost model when a warm profile exists
(:func:`profile_guided_chunks`, used by
:meth:`~repro.runtime.plan.ExecutionPlan.chunks`), and ``backend="auto"``
picks the fastest recorded substrate per call
(:func:`choose_backend`, used by :class:`~repro.runtime.session.RuntimeSession`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: whole-run timings kept per backend record (a sliding window: medians over
#: it stay robust to one noisy run without the file growing unboundedly)
MAX_ELAPSED_WINDOW = 32

#: chunk profiles kept per backend record (one adaptive run produces
#: ``workers * oversubscribe`` chunks; far below this cap)
MAX_SEGMENTS = 4096

#: default entry cap of a store (files beyond it are evicted oldest-first)
DEFAULT_MAX_ENTRIES = 256

_STORE_VERSION = 1


class ProfileError(ValueError):
    """Raised for profile records that cannot be built or stored."""


# ---------------------------------------------------------------------- #
# records
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChunkProfile:
    """One measured chunk: its contiguous ``pc`` span and its seconds.

    ``seconds`` is wall-clock measured *inside* the execution substrate
    (``omp_get_wtime`` inside the compiled ``repro_run_range`` for
    native-executed chunks, ``time.perf_counter`` around the chunk body in
    an engine worker) — queue latency and dispatch overhead are excluded,
    so profiles are comparable across backends.
    """

    first_pc: int
    last_pc: int
    seconds: float

    @property
    def size(self) -> int:
        return max(0, self.last_pc - self.first_pc + 1)

    @property
    def seconds_per_iteration(self) -> float:
        return self.seconds / self.size if self.size else 0.0


@dataclass
class BackendProfile:
    """The measured history of one (kernel, shape, schedule, backend)."""

    backend: str
    runs: int = 0
    workers: int = 0
    total_iterations: int = 0
    elapsed_seconds: List[float] = field(default_factory=list)
    segments: List[ChunkProfile] = field(default_factory=list)

    @property
    def median_elapsed(self) -> Optional[float]:
        if not self.elapsed_seconds:
            return None
        return float(np.median(np.asarray(self.elapsed_seconds, dtype=np.float64)))

    def seconds_per_iteration(self) -> Optional[float]:
        """Mean measured cost of one collapsed iteration, from the chunk
        profiles (the calibration input of
        :meth:`~repro.openmp.costmodel.RecoveryCosts.calibrated`)."""
        covered = sum(segment.size for segment in self.segments)
        if covered <= 0:
            return None
        return sum(segment.seconds for segment in self.segments) / covered

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "runs": int(self.runs),
            "workers": int(self.workers),
            "total_iterations": int(self.total_iterations),
            "elapsed_seconds": [float(v) for v in self.elapsed_seconds],
            "segments": [
                [int(s.first_pc), int(s.last_pc), float(s.seconds)] for s in self.segments
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BackendProfile":
        segments = [
            ChunkProfile(first_pc=int(f), last_pc=int(l), seconds=float(s))
            for f, l, s in payload.get("segments", ())
        ]
        return cls(
            backend=str(payload["backend"]),
            runs=int(payload.get("runs", 0)),
            workers=int(payload.get("workers", 0)),
            total_iterations=int(payload.get("total_iterations", 0)),
            elapsed_seconds=[float(v) for v in payload.get("elapsed_seconds", ())],
            segments=segments,
        )

    def merge(self, other: "BackendProfile") -> "BackendProfile":
        """Combine two histories of the same key+backend (concurrent writers).

        Run counts add; the elapsed window concatenates (other's entries
        last, window-capped); the chunk segments of the *fresher* record —
        the one with more runs, ties to ``other`` — win, because segments
        describe one coherent run, not a mergeable population.
        """
        if other.backend != self.backend:
            raise ProfileError(f"cannot merge {self.backend!r} with {other.backend!r}")
        elapsed = (self.elapsed_seconds + other.elapsed_seconds)[-MAX_ELAPSED_WINDOW:]
        fresher = other if other.runs >= self.runs else self
        return BackendProfile(
            backend=self.backend,
            runs=self.runs + other.runs,
            workers=fresher.workers,
            total_iterations=fresher.total_iterations,
            elapsed_seconds=elapsed,
            segments=list(fresher.segments),
        )


# ---------------------------------------------------------------------- #
# keys
# ---------------------------------------------------------------------- #
def _source_fingerprint(source) -> tuple:
    """A process-stable structural identity of a plan source.

    Unlike :func:`repro.runtime.session._structural_key` (which may fall
    back to ``id()`` for collapsed loops — fine for an in-process cache,
    useless on disk), every component here is derived from printable
    structure, so two processes collapsing the same nest agree on the key.
    """
    from ..core import CollapsedLoop
    from ..ir import LoopNest
    from ..kernels import Kernel

    if isinstance(source, str):
        return ("kernel", source)
    if isinstance(source, Kernel):
        return ("kernel", source.name)
    if isinstance(source, CollapsedLoop):
        return (
            "collapsed",
            _source_fingerprint(source.nest),
            source.depth,
            str(source.ranking.polynomial),
        )
    if isinstance(source, LoopNest):
        return (
            "nest",
            source.name,
            tuple(
                (loop.iterator, str(loop.lower), str(loop.upper)) for loop in source.loops
            ),
            tuple(source.parameters),
            tuple(
                (
                    statement.name,
                    statement.c_text,
                    tuple(str(access) for access in statement.accesses),
                )
                for statement in source.statements
            ),
        )
    raise ProfileError(f"cannot fingerprint a {type(source).__name__} plan source")


def profile_key(
    source,
    parameter_values: Mapping[str, int],
    schedule: object = "adaptive",
    depth: Optional[int] = None,
) -> str:
    """The store key of one (kernel/nest, shape, schedule) combination.

    A SHA-256 digest over the source's structural fingerprint, the sorted
    parameter values, the parsed schedule spelling and the collapse depth —
    the same identity scheme the plan cache and the native source-hash
    cache use, so a profile written by one process is found by every other
    process running the same configuration.  The backend is *not* part of
    the key: one entry holds all backends of a configuration side by side,
    which is what lets ``backend="auto"`` compare them.
    """
    from ..openmp.schedule import ScheduleSpec

    spec = ScheduleSpec.parse(schedule)
    payload = repr(
        (
            _source_fingerprint(source),
            tuple(sorted((name, int(value)) for name, value in parameter_values.items())),
            str(spec),
            depth,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# ---------------------------------------------------------------------- #
# the store
# ---------------------------------------------------------------------- #
class ProfileStore:
    """Persistent, concurrency-safe, size-capped on-disk profile records.

    One JSON file per key under the store root (``$REPRO_PROFILE_DIR``,
    default ``~/.cache/repro-profile``).  Writers never modify a file in
    place: each :meth:`record` re-reads the current file, merges its own
    measurement in, writes a temporary file and publishes it with an atomic
    ``os.replace`` — concurrent writers can lose each other's *latest*
    update (last rename wins) but can never produce a torn or unparsable
    file.  Loads are tolerant: a corrupt or half-deleted file reads as an
    empty record, never raises.
    """

    def __init__(self, root: Optional[os.PathLike] = None, max_entries: int = DEFAULT_MAX_ENTRIES):
        if root is None:
            override = os.environ.get("REPRO_PROFILE_DIR", "").strip()
            root = Path(override) if override else Path.home() / ".cache" / "repro-profile"
        self.root = Path(root)
        self.max_entries = max(1, int(max_entries))

    # -- paths ---------------------------------------------------------- #
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.profile.json"

    def token(self, key: str) -> int:
        """A cheap change token of one entry (0 when absent).

        The adaptive chunker memoises its cuts against this token, so a
        fresh measurement invalidates the memo without the hot path ever
        re-reading (or even parsing) the profile file.
        """
        try:
            return self.path_for(key).stat().st_mtime_ns
        except OSError:
            return 0

    # -- load ----------------------------------------------------------- #
    def load(self, key: str) -> Dict[str, BackendProfile]:
        """Every backend's profile of one key (empty dict when cold)."""
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            return {}
        profiles: Dict[str, BackendProfile] = {}
        for name, entry in payload.get("backends", {}).items():
            try:
                profiles[name] = BackendProfile.from_json(entry)
            except (KeyError, TypeError, ValueError):
                continue  # tolerate foreign or future fields per backend
        return profiles

    # -- record --------------------------------------------------------- #
    def record(
        self,
        key: str,
        backend: str,
        *,
        elapsed_seconds: float,
        workers: int,
        total_iterations: int,
        chunks: Iterable[ChunkProfile] = (),
    ) -> BackendProfile:
        """Bank one run's measurements; returns the merged backend profile."""
        segments = list(chunks)[:MAX_SEGMENTS]
        fresh = BackendProfile(
            backend=backend,
            runs=1,
            workers=int(workers),
            total_iterations=int(total_iterations),
            elapsed_seconds=[float(elapsed_seconds)],
            segments=segments,
        )
        current = self.load(key)
        merged = current.get(backend, BackendProfile(backend=backend)).merge(fresh)
        current[backend] = merged
        self._write(key, current)
        self._evict()
        return merged

    def _write(self, key: str, profiles: Mapping[str, BackendProfile]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _STORE_VERSION,
            "key": key,
            "backends": {name: profile.to_json() for name, profile in profiles.items()},
        }
        handle, scratch = tempfile.mkstemp(
            prefix=f".{key}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, indent=2, sort_keys=True)
            os.replace(scratch, self.path_for(key))
        except BaseException:
            try:
                os.unlink(scratch)
            except OSError:
                pass
            raise

    def _evict(self) -> None:
        """Drop the oldest entries past ``max_entries`` (best effort)."""
        try:
            entries = sorted(
                self.root.glob("*.profile.json"), key=lambda p: p.stat().st_mtime_ns
            )
        except OSError:
            return
        for stale in entries[: max(0, len(entries) - self.max_entries)]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- queries -------------------------------------------------------- #
    def segments(
        self,
        key: str,
        total_iterations: int,
        prefer_backend: Optional[str] = None,
    ) -> List[ChunkProfile]:
        """Measured chunk spans usable to re-cut this configuration.

        Only profiles whose recorded trip count matches ``total_iterations``
        *and* whose span sizes sum to it qualify: a profile of a different
        shape says nothing about this range, and a native dynamic/guided
        run's per-thread ``pc`` spans may overlap (a thread's chunks need
        not be contiguous), so only true partitions of the range are
        trusted.  ``prefer_backend`` wins when it has segments; otherwise
        the most-run backend with segments is used — relative cost
        *density* is what the re-cut needs, and density is shared across
        substrates.
        """
        total = int(total_iterations)
        profiles = self.load(key)
        candidates = [
            profile
            for profile in profiles.values()
            if profile.segments
            and profile.total_iterations == total
            and sum(segment.size for segment in profile.segments) == total
        ]
        if not candidates:
            return []
        if prefer_backend is not None:
            for profile in candidates:
                if profile.backend == prefer_backend:
                    return list(profile.segments)
        best = max(candidates, key=lambda profile: profile.runs)
        return list(best.segments)

    def best_backend(self, key: str, candidates: Sequence[str]) -> Optional[str]:
        """The measured-fastest candidate, or ``None`` when none is recorded."""
        profiles = self.load(key)
        timed = [
            (profiles[name].median_elapsed, name)
            for name in candidates
            if name in profiles and profiles[name].median_elapsed is not None
        ]
        if not timed:
            return None
        return min(timed)[1]

    def clear(self) -> int:
        """Delete every entry; returns the file count removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.profile.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def default_profile_store() -> ProfileStore:
    """The store at ``$REPRO_PROFILE_DIR`` (re-resolved per call, so tests
    and callers can redirect the environment without import-order games)."""
    return ProfileStore()


# ---------------------------------------------------------------------- #
# profile-guided chunk cutting
# ---------------------------------------------------------------------- #
def profile_guided_chunks(
    segments: Sequence[ChunkProfile],
    total: int,
    count: int,
):
    """Cut ``[1, total]`` into ``count`` equal-*measured-cost* chunks.

    The measured spans define a piecewise-constant cost density over the
    ``pc`` range (``seconds / size`` per span; unmeasured gaps get the mean
    density, overlapping spans from repeated runs average).  The cumulative
    cost function is then piecewise linear, and the cuts are its evenly
    spaced quantiles — the same equal-work idea as
    :func:`~repro.runtime.plan.adaptive_chunks`, with measured seconds in
    place of the analytic cost model.  Returns ``[]`` when the measurements
    carry no usable signal (no positive-size span, zero total cost).
    """
    from ..openmp.schedule import Chunk

    total = int(total)
    if total <= 0:
        return []
    count = max(1, min(int(count), total))
    spans = [s for s in segments if s.size > 0 and s.first_pc <= total and s.seconds >= 0.0]
    if not spans or sum(s.seconds for s in spans) <= 0.0:
        return []
    # elementary intervals between all measured boundaries (clamped to range)
    points = {1, total + 1}
    for span in spans:
        points.add(max(1, span.first_pc))
        points.add(min(total, span.last_pc) + 1)
    bounds = np.array(sorted(points), dtype=np.int64)
    starts, ends = bounds[:-1], bounds[1:]  # interval k is [starts[k], ends[k])
    density = np.zeros(len(starts), dtype=np.float64)
    coverage = np.zeros(len(starts), dtype=np.int64)
    for span in spans:
        first = max(1, span.first_pc)
        last = min(total, span.last_pc)
        if last < first:
            continue
        lo = int(np.searchsorted(starts, first, side="right")) - 1
        hi = int(np.searchsorted(starts, last, side="right"))
        density[lo:hi] += span.seconds_per_iteration
        coverage[lo:hi] += 1
    measured = coverage > 0
    density[measured] /= coverage[measured]
    mean_density = float(np.mean(density[measured])) if measured.any() else 0.0
    density[~measured] = mean_density
    sizes = (ends - starts).astype(np.float64)
    cumulative = np.concatenate(([0.0], np.cumsum(density * sizes)))
    grand_total = float(cumulative[-1])
    if grand_total <= 0.0:
        return []
    # strictly increasing cumulative for the inverse interpolation: tilt
    # zero-density stretches by an epsilon far below any real measurement
    epsilon = grand_total * 1e-12
    cumulative = cumulative + epsilon * np.arange(len(cumulative))
    targets = np.linspace(0.0, cumulative[-1], count + 1)[1:-1]
    positions = np.interp(targets, cumulative, bounds.astype(np.float64))
    cuts = np.floor(positions).astype(np.int64) - 1  # last pc of each chunk
    chunks = []
    previous = 0
    for bound in list(cuts) + [total]:
        bound = int(min(max(bound, previous), total))
        if bound > previous:
            chunks.append(Chunk(first=previous + 1, last=bound))
            previous = bound
    if previous < total:  # numerical guard: never drop the tail
        chunks.append(Chunk(first=previous + 1, last=total))
    return chunks


# ---------------------------------------------------------------------- #
# backend choice
# ---------------------------------------------------------------------- #
def choose_backend(
    profiles: Mapping[str, BackendProfile],
    candidates: Sequence[str],
    heuristic_order: Sequence[str],
) -> str:
    """Pick one backend from measured profiles, exploring before exploiting.

    ``candidates`` are the substrates viable for this call; ``heuristic_order``
    is the cold-start preference (today's static decision matrix).  The
    policy is deterministic:

    1. any viable candidate with no recorded timing yet is tried first, in
       heuristic order — three calls explore all three substrates;
    2. once every candidate has a measurement, the one with the smallest
       median whole-run time wins (exploitation).

    Raises :class:`ProfileError` on an empty candidate list.
    """
    ordered = [name for name in heuristic_order if name in candidates]
    ordered += [name for name in candidates if name not in ordered]
    if not ordered:
        raise ProfileError("no viable backend candidates to choose from")
    unexplored = [
        name
        for name in ordered
        if name not in profiles or profiles[name].median_elapsed is None
    ]
    if unexplored:
        return unexplored[0]
    return min(ordered, key=lambda name: (profiles[name].median_elapsed, ordered.index(name)))
