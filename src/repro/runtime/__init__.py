"""The persistent parallel runtime: plans, shared memory, engine, sessions.

Where :mod:`repro.openmp` models OpenMP schedules (simulator) and provides a
fork-per-call ``multiprocessing`` spot check, this package is the serving
layer the ROADMAP asks for: a pool that starts once, kernel arrays that are
mapped zero-copy into every worker, plans that compile once and execute many
times, and a schedule decision — including the cost-model-driven
``adaptive`` policy — made per plan instead of per benchmark script.

* :mod:`repro.runtime.plan` — :class:`ExecutionPlan` and the equal-work
  ``adaptive`` chunker,
* :mod:`repro.runtime.shm` — :class:`SharedBuffers` segment management,
* :mod:`repro.runtime.engine` — the persistent :class:`RuntimeEngine`,
* :mod:`repro.runtime.profile` — the unified timing layer: the persistent
  :class:`ProfileStore`, profile-guided chunk re-cutting and the
  ``backend="auto"`` choice policy,
* :mod:`repro.runtime.session` — plan-caching :class:`RuntimeSession` and
  the one-call :func:`collapse_and_run`.

See docs/runtime.md for the architecture walk-through.
"""

from .shm import SharedArraySpec, SharedBufferError, SharedBuffers
from .plan import (
    DEFAULT_OVERSUBSCRIBE,
    ExecutionPlan,
    PlanError,
    adaptive_chunks,
    build_plan,
    per_iteration_work,
)
from .engine import EngineError, EngineRunResult, RuntimeEngine
from .profile import (
    BackendProfile,
    ChunkProfile,
    ProfileError,
    ProfileStore,
    choose_backend,
    default_profile_store,
    profile_guided_chunks,
    profile_key,
)
from .session import (
    RuntimeSession,
    close_default_session,
    collapse_and_run,
    default_session,
    resolve_auto_backend,
)

__all__ = [
    "SharedArraySpec",
    "SharedBufferError",
    "SharedBuffers",
    "DEFAULT_OVERSUBSCRIBE",
    "ExecutionPlan",
    "PlanError",
    "adaptive_chunks",
    "build_plan",
    "per_iteration_work",
    "EngineError",
    "EngineRunResult",
    "RuntimeEngine",
    "BackendProfile",
    "ChunkProfile",
    "ProfileError",
    "ProfileStore",
    "choose_backend",
    "default_profile_store",
    "profile_guided_chunks",
    "profile_key",
    "RuntimeSession",
    "close_default_session",
    "collapse_and_run",
    "default_session",
    "resolve_auto_backend",
]
