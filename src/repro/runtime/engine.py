"""The persistent shared-memory parallel execution engine.

:class:`RuntimeEngine` replaces the fork-a-pool-per-call pattern of
:func:`repro.openmp.run_chunks_in_processes` with a pool that outlives the
calls: worker processes start once, register each :class:`ExecutionPlan`
once (re-collapsing nothing — the solved unranking arrives pickled and only
the cheap NumPy code generation reruns locally), attach the shared-memory
kernel arrays once, and from then on every run is pure chunk dispatch over
pre-compiled state.

The parent *is* the OpenMP runtime of this design: it owns one command
queue per worker plus a single result queue, and hands chunks out the way
the schedule demands —

* **static** families: every chunk goes straight to its pre-assigned
  worker's queue (zero scheduling decisions at run time, like
  ``schedule(static)``),
* **dynamic / guided / adaptive**: each worker is primed with one chunk and
  receives the next one the moment it reports a result — the classic
  work-queue hand-out, with chunk granularity decided by the plan.

Results come back as per-chunk iteration counts (plus per-chunk wall-clock
times, for load-balance analysis); the kernel data itself never travels,
it lives in the shared segments.  Worker exceptions are captured with their
traceback, the in-flight chunks are drained, and an :class:`EngineError`
is raised in the parent — the pool stays usable.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..openmp.schedule import Chunk, ScheduleKind, ScheduleSpec
from .plan import ExecutionPlan
from .shm import SharedArraySpec, SharedBuffers

_ENGINE_IDS = itertools.count(1)

#: seconds the parent waits for a single chunk result before declaring the
#: pool wedged; generous, because a chunk may legitimately carry a large
#: fraction of a long kernel run.
DEFAULT_TASK_TIMEOUT = 300.0


class EngineError(RuntimeError):
    """Raised when a worker fails or the pool is in the wrong state."""


@dataclass(frozen=True)
class EngineRunResult:
    """Outcome of one plan execution: the engine-side ``ParallelRunResult``.

    ``results`` are the per-chunk executed-iteration counts in chunk order,
    ``assignments`` the worker that ran each chunk, ``chunk_seconds`` each
    chunk's own wall-clock time inside its worker (the load-balance view;
    their sum can exceed ``elapsed_seconds`` when workers overlap).
    ``backend`` names the execution substrate that *actually* ran the
    chunks, as reported back by the workers: ``"engine"`` (Python/NumPy
    chunk ops — including a hybrid plan whose workers had to degrade),
    ``"hybrid"`` (every chunk went through the plan's compiled
    ``repro_run_range``) or ``"native"``
    (:class:`~repro.native.NativeRunResult`, whole-range OpenMP).

    **Timing schema** (one contract across every backend; asserted by
    ``tests/runtime/test_timing_schema.py``):

    * ``chunks``, ``results``, ``assignments`` and ``chunk_seconds`` are
      index-aligned — entry *k* of each describes the same unit of work
      (a scheduled chunk here; an OpenMP thread's span on
      :class:`~repro.native.NativeRunResult`);
    * every value in ``chunk_seconds`` is wall-clock **seconds on a
      monotonic clock, measured inside the executing substrate** —
      ``time.perf_counter`` around the chunk body in an engine worker,
      ``omp_get_wtime`` inside the compiled ``repro_run_range`` for
      hybrid chunks and inside ``repro_run`` for native threads — so
      queue latency and dispatch overhead are excluded on all backends;
    * ``elapsed_seconds`` is the parent's ``time.perf_counter`` span
      around the whole run (dispatch included): the number backends are
      *compared* by, where ``chunk_seconds`` is what schedules are
      *re-cut* from.

    :meth:`chunk_records` renders the per-chunk view in the profile
    store's :class:`~repro.runtime.profile.ChunkProfile` schema.
    """

    results: Tuple[Any, ...]
    elapsed_seconds: float
    chunks: Tuple[Chunk, ...]
    workers: int
    schedule: ScheduleSpec
    assignments: Tuple[int, ...] = ()
    chunk_seconds: Tuple[float, ...] = ()
    backend: str = "engine"

    @property
    def iterations(self) -> int:
        return sum(chunk.size for chunk in self.chunks)

    def chunk_records(self):
        """The run's measurements as profile-store :class:`ChunkProfile` rows.

        One row per chunk with a recorded time, pairing the chunk's ``pc``
        span with its substrate-internal seconds — the exact payload
        :meth:`ProfileStore.record <repro.runtime.profile.ProfileStore.record>`
        banks and :func:`~repro.runtime.profile.profile_guided_chunks`
        re-cuts from.
        """
        from .profile import ChunkProfile  # deferred: profile imports schedule

        return tuple(
            ChunkProfile(first_pc=chunk.first, last_pc=chunk.last, seconds=float(seconds))
            for chunk, seconds in zip(self.chunks, self.chunk_seconds)
        )


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #
class _WorkerPlan:
    """Per-worker state of one registered plan: ops resolved, recovery built."""

    def __init__(self, payload: dict):
        from ..core import chunk_iterator_factory

        self.collapsed = payload["collapsed"]
        self.parameter_values = payload["parameter_values"]
        self.iteration_op = payload["iteration_op"]
        self.chunk_op = payload["chunk_op"]
        self.recovery = payload["recovery"]
        self.native = payload.get("native")
        self.native_runner = None
        self.buffers: Optional[SharedBuffers] = None
        kernel_name = payload["kernel_name"]
        if kernel_name is not None:
            from ..kernels import get_kernel

            kernel = get_kernel(kernel_name)
            self.iteration_op = kernel.iteration_op
            self.chunk_op = kernel.chunk_op
        self.batch = None
        if self.recovery == "compiled":
            from ..core import batch_recovery

            self.batch = batch_recovery(self.collapsed)
        self.chunk_indices = chunk_iterator_factory(
            self.collapsed, self.parameter_values, self.recovery
        )

    def attach(self, specs: Tuple[SharedArraySpec, ...]) -> None:
        self.release_buffers()
        self.buffers = SharedBuffers.attach(specs)
        self._bind_native()

    def _bind_native(self) -> None:
        """Load the plan's compiled library (once) and bind the new buffers.

        The parent compiled the translation unit before dispatching; this
        side only ``dlopen``\\ s the cached shared object by path.  A load
        or bind failure (the cache wiped between compile and dispatch, data
        the C ABI cannot take — wrong dtype/rank) degrades to the Python
        operations, which compute the identical result — hybrid is a speed
        contract, not a semantic one.  Only a plan with *no* Python
        operations re-raises, because nothing could execute its chunks.
        """
        self.native_runner = None
        if self.native is None or self.buffers is None:
            return
        from ..native.module import NativeChunkRunner, NativeExecutionError

        try:
            runner = NativeChunkRunner(self.native)
            runner.bind(self.buffers.arrays, self.parameter_values)
        except (OSError, NativeExecutionError):
            if self.iteration_op is None and self.chunk_op is None:
                raise  # native-only plan: surfaced at the first chunk
            # fall back to the Python ops for *these* buffers only — the
            # spec stays, so the next attach (new buffers, restored cache)
            # retries the native binding
            return
        self.native_runner = runner

    def release_buffers(self) -> None:
        self.native_runner = None  # pointer tables reference the mapped views
        if self.buffers is not None:
            self.buffers.close()
            self.buffers = None

    def execute(self, first_pc: int, last_pc: int) -> Tuple[int, Optional[float]]:
        """Run one chunk against the attached shared arrays.

        Returns ``(count, seconds)`` where ``seconds`` is the chunk's own
        wall-clock measured *inside* the substrate when it can measure
        itself (the compiled ``repro_run_range`` reports ``omp_get_wtime``
        through the ABI) and ``None`` otherwise — the dispatch loop then
        substitutes its own ``perf_counter`` span around this call, which
        for the Python paths is the same "inside the worker, outside the
        queue" measurement.  Preference order: the plan's compiled
        ``repro_run_range`` (hybrid backend, one foreign call per chunk),
        then the vectorized ``chunk_op`` over a batch-recovered index
        array, then the scalar ``iteration_op`` walk.
        """
        if self.native_runner is not None:
            return self.native_runner.run_range_timed(first_pc, last_pc)
        data = self.buffers.arrays if self.buffers is not None else {}
        if self.chunk_op is not None and self.batch is not None:
            indices = self.batch.recover_range(first_pc, last_pc, self.parameter_values)
            self.chunk_op(data, indices, self.parameter_values)
            return int(indices.shape[0]), None
        if self.iteration_op is None:
            raise EngineError(
                "plan has no Python operations to fall back on (native-only plan "
                "whose compiled library could not be loaded in this worker)"
            )
        count = 0
        for index_tuple in self.chunk_indices(first_pc, last_pc):
            self.iteration_op(data, index_tuple, self.parameter_values)
            count += 1
        return count, None


def _worker_main(worker_id: int, commands, results) -> None:
    """Dispatch loop of one persistent worker (module-level: spawn-safe)."""
    plans: Dict[str, Any] = {}  # plan_id -> _WorkerPlan | Exception
    while True:
        message = commands.get()
        tag = message[0]
        if tag == "stop":
            for state in plans.values():
                if isinstance(state, _WorkerPlan):
                    state.release_buffers()
            break
        if tag == "plan":
            payload = message[1]
            try:
                plans[payload["plan_id"]] = _WorkerPlan(payload)
            except Exception as error:  # surfaced at the first chunk of the plan
                plans[payload["plan_id"]] = error
        elif tag == "buffers":
            _plan_id, specs = message[1], message[2]
            state = plans.get(_plan_id)
            if isinstance(state, _WorkerPlan):
                try:
                    state.attach(specs)
                except Exception as error:
                    plans[_plan_id] = error
        elif tag == "release":
            state = plans.pop(message[1], None)
            if isinstance(state, _WorkerPlan):
                state.release_buffers()
        elif tag == "chunk":
            _tag, task_id, plan_id, first_pc, last_pc = message
            state = plans.get(plan_id)
            started = time.perf_counter()
            try:
                if isinstance(state, Exception):
                    raise state
                if state is None:
                    raise EngineError(f"plan {plan_id!r} is not registered in worker {worker_id}")
                count, inner_seconds = state.execute(first_pc, last_pc)
                native = state.native_runner is not None
                # one timing schema for every substrate: the C-internal
                # measurement when the chunk ran natively, the worker's own
                # perf_counter span around the Python ops otherwise — both
                # exclude queue latency, so profiles compare across backends
                seconds = (
                    inner_seconds
                    if inner_seconds is not None
                    else time.perf_counter() - started
                )
                results.put(("ok", task_id, worker_id, count, seconds, native))
            except Exception:
                results.put(("error", task_id, worker_id, traceback.format_exc(), 0.0))
        elif tag == "call":
            _tag, task_id, function, first_pc, last_pc, parameter_values = message
            started = time.perf_counter()
            try:
                value = function(first_pc, last_pc, parameter_values)
                results.put(("ok", task_id, worker_id, value, time.perf_counter() - started))
            except Exception:
                results.put(("error", task_id, worker_id, traceback.format_exc(), 0.0))


# ---------------------------------------------------------------------- #
# the engine
# ---------------------------------------------------------------------- #
class RuntimeEngine:
    """A persistent pool of workers executing :class:`ExecutionPlan` chunks.

    Use as a context manager (or call :meth:`start`/:meth:`shutdown`)::

        plan = build_plan("utma", {"N": 512}, schedule="adaptive")
        with SharedBuffers.create(data) as buffers, RuntimeEngine(workers=4) as engine:
            first = engine.execute(plan, buffers=buffers)    # registers + runs
            again = engine.execute(plan, buffers=buffers)    # pure dispatch

    The pool forks on Linux (inheriting warm memo caches) and spawns
    elsewhere; either way a worker builds each plan's compiled state exactly
    once, so repeated executions cost only queue traffic and chunk compute.
    """

    def __init__(
        self,
        workers: int = 2,
        start_method: Optional[str] = None,
        task_timeout: float = DEFAULT_TASK_TIMEOUT,
    ):
        if workers < 1:
            raise EngineError("workers must be at least 1")
        if start_method is None:
            start_method = "fork" if sys.platform.startswith("linux") else "spawn"
        self.workers = workers
        self.start_method = start_method
        self.task_timeout = task_timeout
        self.engine_id = f"engine-{next(_ENGINE_IDS)}-{os.getpid()}"
        self._context = multiprocessing.get_context(start_method)
        self._processes: List[multiprocessing.Process] = []
        self._commands: List[Any] = []
        self._results: Optional[Any] = None
        self._registered: Dict[str, Tuple[SharedArraySpec, ...]] = {}
        self._tasks = itertools.count(1)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return bool(self._processes)

    def start(self) -> "RuntimeEngine":
        if self.started:
            return self
        try:
            # spawn the shared-memory resource tracker *before* forking, so
            # every worker inherits it: attachments then register against the
            # owner's tracker (idempotent) instead of each worker spawning a
            # private one that later "cleans up" segments the owner unlinked
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - semi-private API, best effort
            pass
        self._results = self._context.Queue()
        self._commands = [self._context.Queue() for _ in range(self.workers)]
        for worker_id, commands in enumerate(self._commands):
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, commands, self._results),
                name=f"{self.engine_id}-w{worker_id}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        return self

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers (idempotent); terminates stragglers after ``timeout``."""
        if not self.started:
            return
        for commands in self._commands:
            try:
                commands.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=1.0)
        for commands in self._commands:
            commands.close()
        if self._results is not None:
            self._results.close()
        self._processes = []
        self._commands = []
        self._results = None
        self._registered = {}

    def __enter__(self) -> "RuntimeEngine":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # plan management
    # ------------------------------------------------------------------ #
    def _broadcast(self, message: tuple) -> None:
        for commands in self._commands:
            commands.put(message)

    def register(self, plan: ExecutionPlan, buffers: Optional[SharedBuffers] = None) -> None:
        """Ship a plan (and optionally its buffers) to every worker once."""
        self.start()
        specs = buffers.specs if buffers is not None else ()
        if plan.plan_id not in self._registered:
            self._broadcast(("plan", plan.payload()))
            self._registered[plan.plan_id] = None
        if buffers is not None and self._registered[plan.plan_id] != specs:
            self._broadcast(("buffers", plan.plan_id, specs))
            self._registered[plan.plan_id] = specs

    def forget(self, plan: ExecutionPlan) -> None:
        """Drop a plan's compiled state and buffer attachments in every worker."""
        if self.started and plan.plan_id in self._registered:
            self._broadcast(("release", plan.plan_id))
        self._registered.pop(plan.plan_id, None)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _get_result(self) -> tuple:
        """Wait for one worker message, diagnosing a wedged or dead pool.

        Waits in short slices so a worker that *died* (killed, or crashed on
        a message it could not even unpickle — e.g. a function defined after
        the pool forked) surfaces as an immediate :class:`EngineError`
        instead of a silent hang until ``task_timeout``.
        """
        assert self._results is not None
        deadline = time.monotonic() + self.task_timeout
        while True:
            try:
                return self._results.get(timeout=min(0.5, self.task_timeout))
            except queue_module.Empty:
                dead = [p.name for p in self._processes if not p.is_alive()]
                if dead:
                    self.shutdown(timeout=0.5)  # next execute() starts a fresh pool
                    raise EngineError(
                        f"engine workers died with tasks outstanding: {dead}; "
                        "dispatched functions must be module-level and defined "
                        "before the pool starts"
                    ) from None
                if time.monotonic() >= deadline:
                    raise EngineError(f"no result within {self.task_timeout}s") from None

    def _run_tasks(self, assigned, on_demand) -> Dict[int, tuple]:
        """Dispatch pre-assigned and on-demand tasks; collect every result.

        ``assigned`` maps worker_id -> [(task_id, message)] (the static
        hand-out); ``on_demand`` is an ordered list of (task_id, message):
        each worker is primed with one and gets the next the moment it
        reports back (the dynamic hand-out).  Returns task_id ->
        ("ok", value, worker, seconds, native) — ``native`` reports whether
        the worker executed the chunk through a compiled library; raises
        after draining every in-flight task if any worker errored, leaving
        the pool clean.
        """
        outcomes: Dict[int, tuple] = {}
        failures: List[str] = []
        outstanding = 0
        for worker_id, tasks in assigned.items():
            for _task_id, message in tasks:
                self._commands[worker_id].put(message)
                outstanding += 1
        pending = list(on_demand)
        for worker_id in range(min(len(pending), self.workers)):
            _task_id, message = pending.pop(0)
            self._commands[worker_id].put(message)
            outstanding += 1
        while outstanding:
            message = self._get_result()
            tag, task_id, worker_id = message[0], message[1], message[2]
            if pending:  # the reporting worker is idle now: feed it the next chunk
                _task_id, next_message = pending.pop(0)
                self._commands[worker_id].put(next_message)
                outstanding += 1
            if tag == "error":
                failures.append(f"worker {worker_id}:\n{message[3]}")
                outcomes[task_id] = ("error", None, worker_id, 0.0, False)
            else:
                native = message[5] if len(message) > 5 else False
                outcomes[task_id] = ("ok", message[3], worker_id, message[4], native)
            outstanding -= 1
        if failures:
            raise EngineError("engine worker failed:\n" + "\n".join(failures))
        return outcomes

    def execute(
        self,
        plan: ExecutionPlan,
        buffers: Optional[SharedBuffers] = None,
        chunks: Optional[Sequence[Chunk]] = None,
    ) -> EngineRunResult:
        """Run a plan once over its schedule's chunks; returns per-chunk counts.

        Registration and buffer attachment happen lazily on the first call
        (and whenever ``buffers`` changes); subsequent calls are pure
        dispatch.  Static-family chunks go to their pre-assigned workers,
        chunks without a thread are handed out on demand.
        """
        self.register(plan, buffers)
        chunk_list = list(chunks) if chunks is not None else plan.chunks(self.workers)
        if not chunk_list:
            return EngineRunResult(
                results=(), elapsed_seconds=0.0, chunks=(), workers=self.workers,
                schedule=plan.schedule,
                backend="hybrid" if plan.native_spec is not None else "engine",
            )
        start = time.perf_counter()
        assigned: Dict[int, list] = {}
        on_demand: List[Tuple[int, tuple]] = []
        task_ids: List[int] = []
        for chunk in chunk_list:
            task_id = next(self._tasks)
            task_ids.append(task_id)
            message = ("chunk", task_id, plan.plan_id, chunk.first, chunk.last)
            if chunk.thread is not None:
                assigned.setdefault(chunk.thread % self.workers, []).append((task_id, message))
            else:
                on_demand.append((task_id, message))
        outcomes = self._run_tasks(assigned, on_demand)
        elapsed = time.perf_counter() - start
        ordered = [outcomes[task_id] for task_id in task_ids]
        # the substrate that *actually executed*: a hybrid plan whose workers
        # all ran the compiled library reports "hybrid"; if any worker had to
        # degrade to the Python ops (library unloadable, un-bindable data),
        # the honest answer is "engine"
        backend = (
            "hybrid"
            if plan.native_spec is not None and all(outcome[4] for outcome in ordered)
            else "engine"
        )
        return EngineRunResult(
            results=tuple(outcome[1] for outcome in ordered),
            elapsed_seconds=elapsed,
            chunks=tuple(chunk_list),
            workers=self.workers,
            schedule=plan.schedule,
            assignments=tuple(outcome[2] for outcome in ordered),
            chunk_seconds=tuple(outcome[3] for outcome in ordered),
            backend=backend,
        )

    def map_chunks(
        self,
        worker,
        chunks: Sequence[Chunk],
        parameter_values: Mapping[str, int],
        schedule: object = "static",
    ):
        """Run a classic executor worker function over chunks, pool-persistent.

        The drop-in the rewired :func:`repro.openmp.run_chunks_in_processes`
        uses when handed an engine: same ``(first, last, parameter_values)``
        worker contract, same :class:`~repro.openmp.executor.ParallelRunResult`,
        but the pool is not forked per call.  ``worker`` must be a
        module-level (picklable) function.
        """
        from ..openmp.executor import ParallelRunResult

        self.start()
        spec = ScheduleSpec.parse(schedule)
        try:
            # eager check: an unpicklable function would otherwise fail in the
            # queue's feeder thread and leave the parent waiting on a result
            # that was never sent
            pickle.dumps((worker, dict(parameter_values)))
        except Exception as error:
            raise EngineError(
                f"worker {worker!r} (or its parameter values) is not picklable; "
                f"use a module-level function ({error})"
            ) from error
        chunk_list = list(chunks)
        if not chunk_list:
            return ParallelRunResult(
                results=(), elapsed_seconds=0.0, chunks=(), workers=self.workers, schedule=spec
            )
        values = dict(parameter_values)
        start = time.perf_counter()
        assigned: Dict[int, list] = {}
        on_demand: List[Tuple[int, tuple]] = []
        task_ids: List[int] = []
        for chunk in chunk_list:
            task_id = next(self._tasks)
            task_ids.append(task_id)
            message = ("call", task_id, worker, chunk.first, chunk.last, values)
            if chunk.thread is not None:
                assigned.setdefault(chunk.thread % self.workers, []).append((task_id, message))
            else:
                on_demand.append((task_id, message))
        outcomes = self._run_tasks(assigned, on_demand)
        elapsed = time.perf_counter() - start
        return ParallelRunResult(
            results=tuple(outcomes[task_id][1] for task_id in task_ids),
            elapsed_seconds=elapsed,
            chunks=tuple(chunk_list),
            workers=self.workers,
            schedule=spec,
        )

    def __del__(self):  # pragma: no cover - safety net, normal path is shutdown()
        try:
            self.shutdown(timeout=0.5)
        except Exception:
            pass
