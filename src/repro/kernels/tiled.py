"""The Pluto-tiled variants of the evaluation (``correlation_tiled``, ``covariance_tiled``).

The paper additionally tiles some programs with ``pluto --tile``; tiling a
triangular domain produces a triangular *tile* domain with partially-full
boundary tiles, so a static schedule of the tile loops is again unbalanced
and collapsing them pays off (though less dramatically than for the point
loops, because the per-tile work is much coarser).

A :class:`TiledKernel` wraps the affine tile-loop nest produced by
:func:`repro.transforms.tiling.tile_triangular` together with the exact
per-tile work function; the Fig. 9 benchmark simulates the schedules on the
tile loops with that work function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from ..core import CollapsedLoop, collapse
from ..ir import LoopNest
from ..transforms import TiledNest, tile_triangular
from .base import get_kernel


@dataclass(frozen=True)
class TiledKernel:
    """A tiled variant of a registered kernel, ready for scheduling simulation."""

    name: str
    base_kernel_name: str
    tiled: TiledNest
    description: str
    default_parameters: Mapping[str, int]
    bench_parameters: Mapping[str, int]
    dynamic_chunk: int = 1

    @property
    def tile_nest(self) -> LoopNest:
        return self.tiled.tile_nest

    def collapsed(self, **kwargs) -> CollapsedLoop:
        return collapse(self.tile_nest, 2, **kwargs)

    def tile_parameters(self, parameter_values: Mapping[str, int]) -> Dict[str, int]:
        return self.tiled.tile_parameters(parameter_values)

    def work_function(self, parameter_values: Mapping[str, int]) -> Callable[[int, int], float]:
        """Per-tile work callable for the simulator (tile indices -> work)."""

        def work(tile_i: int, tile_j: int = None) -> float:  # type: ignore[assignment]
            if tile_j is None:
                raise ValueError("the tiled work function needs both tile indices")
            return self.tiled.tile_work(tile_i, tile_j, parameter_values)

        return work

    def outer_work_function(self, parameter_values: Mapping[str, int]) -> Callable[[int], float]:
        """Per-tile-row work callable (for the outer-loop-parallel baselines)."""
        tiles = self.tile_parameters(parameter_values)["NT"]

        def work(tile_i: int) -> float:
            return sum(
                self.tiled.tile_work(tile_i, tile_j, parameter_values) for tile_j in range(tile_i, tiles)
            )

        return work


def _make_correlation_tiled() -> TiledKernel:
    base = get_kernel("correlation")

    def point_work(i: int, j: int, values: Mapping[str, int]) -> float:
        # each (i, j) point of the correlation nest runs an N-iteration dot product
        return float(values["N"])

    tiled = tile_triangular(base.nest.prefix(2), tile_size=32, name="correlation_tiled", point_work=point_work)
    return TiledKernel(
        name="correlation_tiled",
        base_kernel_name="correlation",
        tiled=tiled,
        description="correlation after Pluto-style 32x32 tiling of the triangular (i, j) pair",
        default_parameters=base.default_parameters,
        bench_parameters=base.bench_parameters,
    )


def _make_covariance_tiled() -> TiledKernel:
    base = get_kernel("covariance")
    tiled = tile_triangular(base.nest.prefix(2), tile_size=32, name="covariance_tiled")
    return TiledKernel(
        name="covariance_tiled",
        base_kernel_name="covariance",
        tiled=tiled,
        description="covariance after Pluto-style 32x32 tiling of the triangular (i, j) pair",
        default_parameters=base.default_parameters,
        bench_parameters=base.bench_parameters,
    )


TILED_KERNELS: Dict[str, TiledKernel] = {}
for _factory in (_make_correlation_tiled, _make_covariance_tiled):
    _kernel = _factory()
    TILED_KERNELS[_kernel.name] = _kernel


def get_tiled_kernel(name: str) -> TiledKernel:
    if name not in TILED_KERNELS:
        raise KeyError(f"unknown tiled kernel {name!r}; available: {sorted(TILED_KERNELS)}")
    return TILED_KERNELS[name]
