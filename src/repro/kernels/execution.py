"""Executing kernels on NumPy data: original order, collapsed order, verification.

These helpers close the semantic loop of the reproduction: for every
executable kernel, the result of

* running the original nest in lexicographic order,
* running the collapsed loop chunk by chunk (any chunking — e.g. the static
  per-thread split), and
* the vectorised NumPy reference formula

must be identical, which is exactly the correctness check the paper performs
("outputs of collapsed and non-collapsed programs have been compared to
ensure the correctness of the collapsed loops").
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from ..core import CollapsedLoop, RecoveryStrategy, chunk_iterator_factory
from ..ir import enumerate_iterations
from ..openmp.schedule import Chunk, static_schedule
from .base import DataDict, Kernel


def _clone_data(data: DataDict) -> DataDict:
    return {key: np.copy(value) for key, value in data.items()}


def run_original(kernel: Kernel, parameter_values: Mapping[str, int], data: Optional[DataDict] = None) -> DataDict:
    """Run the kernel's parallel iterations in the original lexicographic order."""
    if not kernel.is_executable:
        raise ValueError(f"kernel {kernel.name!r} has no executable body")
    data = _clone_data(data) if data is not None else kernel.make_data(parameter_values)
    for indices in enumerate_iterations(kernel.nest, parameter_values, kernel.collapse_depth):
        kernel.iteration_op(data, indices, parameter_values)
    return data


def run_collapsed_chunks(
    kernel: Kernel,
    parameter_values: Mapping[str, int],
    data: Optional[DataDict] = None,
    chunks: Optional[Sequence[Chunk]] = None,
    threads: int = 4,
    collapsed: Optional[CollapsedLoop] = None,
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    recovery: str = "symbolic",
) -> DataDict:
    """Run the kernel through its collapsed loop, one chunk at a time.

    ``chunks`` defaults to the OpenMP-static split over ``threads`` threads —
    the exact work partition the parallel version would execute.  Because the
    collapsed loops carry no dependence, executing the chunks sequentially in
    any order gives the same result as the parallel execution.

    ``recovery`` selects the index-recovery back end: ``"symbolic"`` walks
    the chunk with the paper's scalar scheme under ``strategy``, while
    ``"compiled"`` recovers each chunk's index array in one vectorized batch
    (:mod:`repro.core.batch`; ``strategy`` is then irrelevant because the
    closed forms are evaluated for all iterations at once).
    """
    if not kernel.is_executable:
        raise ValueError(f"kernel {kernel.name!r} has no executable body")
    data = _clone_data(data) if data is not None else kernel.make_data(parameter_values)
    collapsed = collapsed or kernel.collapsed()
    total = collapsed.total_iterations(parameter_values)
    chunk_list = list(chunks) if chunks is not None else static_schedule(total, threads)
    chunk_indices = chunk_iterator_factory(collapsed, parameter_values, recovery, strategy)
    for chunk in chunk_list:
        for indices in chunk_indices(chunk.first, chunk.last):
            kernel.iteration_op(data, indices, parameter_values)
    return data


def run_collapsed_engine(
    kernel: Kernel,
    parameter_values: Mapping[str, int],
    data: Optional[DataDict] = None,
    workers: int = 2,
    schedule: str = "adaptive",
    session=None,
) -> DataDict:
    """Run the kernel's collapsed loop on the persistent runtime engine.

    The parallel counterpart of :func:`run_collapsed_chunks`: the chunks
    execute on the worker pool of a :class:`repro.runtime.RuntimeSession`
    against shared-memory copies of the kernel arrays, under any schedule
    (including the cost-model ``"adaptive"`` policy).  Because the collapsed
    levels carry no dependence, the result is element-wise identical to
    :func:`run_original` — which the runtime test suite asserts.

    Without an explicit ``session`` the process-wide default session is
    used, so repeated calls amortise the pool start-up; the serial paths
    above stay untouched as baselines.
    """
    from ..runtime import collapse_and_run  # deferred: runtime sits above kernels

    if not kernel.is_executable:
        raise ValueError(f"kernel {kernel.name!r} has no executable body")
    return collapse_and_run(
        kernel,
        parameter_values,
        workers=workers,
        schedule=schedule,
        data=_clone_data(data) if data is not None else None,
        session=session,
    )


def run_collapsed_native(
    kernel: Kernel,
    parameter_values: Mapping[str, int],
    data: Optional[DataDict] = None,
    schedule: object = "static",
    threads: Optional[int] = None,
    compile_flags: Sequence[str] = (),
    sanitize: Optional[str] = None,
) -> DataDict:
    """Run the kernel's collapsed loop through the compiled native backend.

    The generated C/OpenMP translation unit of the kernel (its ``c_body``
    under ``schedule``) is compiled once — cached on disk by source hash
    under ``$REPRO_NATIVE_CACHE``, compiler from ``$CC`` or the first of
    ``cc``/``gcc``/``clang`` — and executed over the whole ``pc`` range on
    a private copy of the data.  The engine-only ``"adaptive"`` policy has
    no OpenMP spelling and normalises to ``static``
    (:func:`repro.native.compile_native_kernel` does it, so every
    kernel-compiling path agrees).  ``compile_flags`` append to the
    compiler command line (and to both compilation cache keys) — the
    conformance sweep's compiler-flags axis — and ``sanitize`` names a
    :data:`repro.native.SANITIZER_PRESETS` entry (default: the
    ``$REPRO_NATIVE_SANITIZE`` preset), so the same kernel run can execute
    under ASan/UBSan/TSan instrumentation.  Raises
    :class:`repro.native.NativeUnavailable` on machines without a C
    compiler; callers wanting a soft feature test use
    :func:`repro.native.native_available`.
    """
    from ..native import compile_native_kernel  # deferred: optional backend

    if not kernel.supports_native:
        raise ValueError(f"kernel {kernel.name!r} has no native C body")
    data = _clone_data(data) if data is not None else kernel.make_data(parameter_values)
    module = compile_native_kernel(
        kernel, schedule=schedule, extra_flags=compile_flags, sanitize=sanitize
    )
    module.run(data, parameter_values, threads=threads)
    return data


def run_collapsed_hybrid(
    kernel: Kernel,
    parameter_values: Mapping[str, int],
    data: Optional[DataDict] = None,
    workers: int = 2,
    schedule: str = "adaptive",
    session=None,
) -> DataDict:
    """Run the kernel under the engine's scheduling at native chunk speed.

    The hybrid backend: the persistent :class:`repro.runtime.RuntimeEngine`
    plans and hands out chunks exactly as :func:`run_collapsed_engine` does
    (any policy, including the cost-model ``"adaptive"`` one), but each
    worker executes its chunks through the compiled translation unit's
    serial ``repro_run_range`` over the shared-memory buffers.  The kernel
    must carry a ``c_body`` (the capability being requested); a missing
    *compiler*, by contrast, degrades cleanly to the pure-Python engine,
    so on any machine with the capability the result — element-wise
    identical either way — is produced.
    """
    from ..runtime import collapse_and_run  # deferred: runtime sits above kernels

    if not kernel.supports_native:
        raise ValueError(
            f"kernel {kernel.name!r} has no native C body (c_body), so the hybrid "
            "backend cannot apply; use run_collapsed_engine for Python-only kernels"
        )
    return collapse_and_run(
        kernel,
        parameter_values,
        workers=workers,
        schedule=schedule,
        data=_clone_data(data) if data is not None else None,
        session=session,
        backend="hybrid",
    )


def run_collapsed_auto(
    kernel: Kernel,
    parameter_values: Mapping[str, int],
    data: Optional[DataDict] = None,
    workers: int = 2,
    schedule: str = "adaptive",
    session=None,
) -> DataDict:
    """Run the kernel on whichever substrate the profile store says is fastest.

    The ``backend="auto"`` convenience wrapper: the session resolves
    engine/native/hybrid viability, explores each untimed candidate once and
    then exploits the measured-fastest one
    (:func:`repro.runtime.resolve_auto_backend`); every run — this one
    included — banks its timings, so the choice sharpens as the store warms.
    The result is element-wise identical whichever substrate runs, which
    :func:`verify_kernel` with ``backend="auto"`` asserts.
    """
    from ..runtime import collapse_and_run  # deferred: runtime sits above kernels

    if not kernel.is_executable:
        raise ValueError(f"kernel {kernel.name!r} has no executable body")
    return collapse_and_run(
        kernel,
        parameter_values,
        workers=workers,
        schedule=schedule,
        data=_clone_data(data) if data is not None else None,
        session=session,
        backend="auto",
    )


def verify_kernel(
    kernel: Kernel,
    parameter_values: Optional[Mapping[str, int]] = None,
    threads: int = 4,
    atol: float = 1e-9,
    recovery: str = "symbolic",
    session=None,
    backend: str = "python",
    static_check: bool = False,
) -> bool:
    """Original order == collapsed chunked order == NumPy reference.

    Returns ``True`` when all three agree on every array the reference
    defines; this is the per-kernel correctness gate used by the tests and
    by the benchmark harness before timing anything.  ``recovery`` selects
    the back end the collapsed run uses (see :func:`run_collapsed_chunks`).
    Passing a :class:`repro.runtime.RuntimeSession` additionally runs the
    kernel through the parallel engine and requires that result to match
    the original order too.

    ``backend`` widens the gate beyond the serial Python paths:

    * ``"engine"`` additionally runs the persistent parallel engine
      (:func:`run_collapsed_engine`, on an ephemeral two-worker session when
      none is supplied) and requires its result to match;
    * ``"native"`` additionally runs the compiled C/OpenMP translation unit
      whole-range and requires *its* result to match (raising
      :class:`repro.native.NativeUnavailable` where no compiler exists —
      this backend is explicitly about the compiled artefact);
    * ``"hybrid"`` additionally runs the engine-scheduled native-chunk
      path (:func:`run_collapsed_hybrid`); the kernel needs a ``c_body``
      (raising :class:`ValueError` otherwise), but where merely the
      *compiler* is missing the run is silently engine-executed — the
      contract there is the result, not the substrate;
    * ``"auto"`` resolves to whatever substrate ``backend="auto"`` would
      run on this machine right now
      (:func:`repro.runtime.resolve_auto_backend` — profile-guided when
      the store is warm, heuristic when cold) and gates *that* backend,
      so the autotuned path is differentially checked against the serial
      baselines exactly like an explicitly chosen one.

    All four backends share one exactness contract: index recovery is exact
    integer arithmetic at any magnitude (big ints in the Python and engine
    paths, ``__int128`` brackets in the compiled paths — see
    docs/recovery.md), so a disagreement here is a kernel-body bug, never a
    float-precision artefact of the recovery.

    ``static_check=True`` additionally runs the full :mod:`repro.lint`
    audit (dependence gate, C-body footprint, overflow at these sizes,
    generated-C privatisation) *before* executing anything and fails the
    verification on any error-severity finding — the differential gate and
    the static gate agreeing is the strongest statement this repository
    makes about one kernel.
    """
    if backend not in ("python", "engine", "native", "hybrid", "auto"):
        raise ValueError(
            f"unknown backend {backend!r}; expected 'python', 'engine', 'native', "
            "'hybrid' or 'auto'"
        )
    if not kernel.is_executable:
        raise ValueError(f"kernel {kernel.name!r} has no executable body")
    parameter_values = dict(parameter_values or kernel.bench_parameters)
    if static_check:
        from ..lint import lint_kernel  # deferred: lint sits above kernels

        if lint_kernel(kernel, parameter_values=parameter_values).errors:
            return False
    if backend == "auto":
        from ..runtime import resolve_auto_backend  # deferred: runtime sits above kernels

        backend = resolve_auto_backend(kernel, parameter_values)
        if backend not in ("engine", "native", "hybrid"):
            backend = "engine"  # auto degraded: gate the engine baseline
    initial = kernel.make_data(parameter_values)

    original = run_original(kernel, parameter_values, initial)
    collapsed = run_collapsed_chunks(
        kernel, parameter_values, initial, threads=threads, recovery=recovery
    )
    reference = kernel.reference_numpy(initial, parameter_values) if kernel.reference_numpy else {}

    for name, expected in reference.items():
        if not np.allclose(original[name], expected, atol=atol):
            return False
    for name in original:
        if not np.allclose(original[name], collapsed[name], atol=atol):
            return False
    if session is not None:
        engine_result = run_collapsed_engine(
            kernel, parameter_values, initial, session=session
        )
        for name in original:
            if not np.allclose(original[name], engine_result[name], atol=atol):
                return False
    if backend == "engine" and session is None:
        # with an explicit session the engine comparison above already ran;
        # otherwise gate on an ephemeral pool (never create the process-wide
        # default session as a side effect of a verification call)
        from ..runtime import RuntimeSession

        with RuntimeSession(workers=2) as ephemeral:
            engine_only = run_collapsed_engine(
                kernel, parameter_values, initial, session=ephemeral
            )
        for name in original:
            if not np.allclose(original[name], engine_only[name], atol=atol):
                return False
    if backend == "native":
        native_result = run_collapsed_native(
            kernel, parameter_values, initial, threads=threads
        )
        for name in original:
            if not np.allclose(original[name], native_result[name], atol=atol):
                return False
    if backend == "hybrid":
        ephemeral = None
        run_session = session
        if run_session is None:
            # never create the process-wide default session as a side
            # effect of a verification call: a private pool is torn down
            # with the check
            from ..runtime import RuntimeSession

            ephemeral = run_session = RuntimeSession(workers=2)
        try:
            hybrid_result = run_collapsed_hybrid(
                kernel, parameter_values, initial, session=run_session
            )
        finally:
            if ephemeral is not None:
                ephemeral.close()
        for name in original:
            if not np.allclose(original[name], hybrid_result[name], atol=atol):
                return False
    return True
