"""The benchmark kernel suite of the paper's evaluation (Section VII).

The paper evaluates on 9 Polybench-derived kernel loop nests (run through
Pluto, some additionally tiled) plus two handwritten triangular-matrix
programs: ``utma`` (upper-triangular matrix add, 5000x5000) and ``ltmp``
(lower-triangular matrix product, 4000x4000).  The figure does not list all
nine Polybench names, so this reproduction picks nine Polybench kernels with
non-rectangular parallel loops and documents the choice in
:mod:`repro.kernels.polybench`.

Every kernel provides the loop nest in the IR (with array accesses, so the
collapse precondition can be checked), the collapse depth the paper's tool
would use, default/bench problem sizes and — for the executable subset — a
NumPy data generator, a per-iteration operation and a vectorised reference
implementation used to validate that collapsed execution computes the same
result as the original nest.
"""

from .base import (
    Kernel,
    all_kernels,
    executable_kernels,
    get_kernel,
    native_kernels,
    register_kernel,
)
from . import polybench, triangular, tiled  # noqa: F401  (registration side effects)
from .execution import (
    run_collapsed_chunks,
    run_collapsed_auto,
    run_collapsed_engine,
    run_collapsed_hybrid,
    run_collapsed_native,
    run_original,
    verify_kernel,
)
from .tiled import TILED_KERNELS, TiledKernel, get_tiled_kernel

__all__ = [
    "Kernel",
    "all_kernels",
    "executable_kernels",
    "get_kernel",
    "native_kernels",
    "register_kernel",
    "run_collapsed_chunks",
    "run_collapsed_auto",
    "run_collapsed_engine",
    "run_collapsed_hybrid",
    "run_collapsed_native",
    "run_original",
    "verify_kernel",
    "TiledKernel",
    "TILED_KERNELS",
    "get_tiled_kernel",
]
