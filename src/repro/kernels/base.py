"""The :class:`Kernel` description and the kernel registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core import CollapsedLoop, collapse
from ..ir import LoopNest
from ..openmp.costmodel import CostModel, RecoveryCosts

#: data dictionary produced by ``make_data`` (NumPy arrays keyed by name)
DataDict = Dict[str, object]
#: ``iteration_op(data, indices, parameter_values)`` applies one collapsed iteration
IterationOp = Callable[[DataDict, Tuple[int, ...], Mapping[str, int]], None]
#: ``chunk_op(data, indices, parameter_values)`` applies a whole chunk at once:
#: ``indices`` is the ``(n, depth)`` int64 array a batch recovery produced
ChunkOp = Callable[[DataDict, object, Mapping[str, int]], None]


@dataclass(frozen=True)
class Kernel:
    """One program of the evaluation: its collapsible nest and how to run it."""

    name: str
    nest: LoopNest
    collapse_depth: int
    description: str
    default_parameters: Mapping[str, int]
    bench_parameters: Mapping[str, int]
    #: chunk size of the ``schedule(dynamic)`` baseline (OpenMP's default is 1)
    dynamic_chunk: int = 1
    #: kernels whose innermost loop cannot be collapsed (ltmp) keep a
    #: per-collapsed-iteration work that varies with the indices; purely
    #: element-wise kernels have constant work 1.
    make_data: Optional[Callable[[Mapping[str, int]], DataDict]] = None
    iteration_op: Optional[IterationOp] = None
    #: vectorized form of ``iteration_op`` over a whole recovered index array;
    #: the runtime engine prefers it (one NumPy call per chunk instead of a
    #: Python call per iteration) and falls back to ``iteration_op`` when None
    chunk_op: Optional[ChunkOp] = None
    reference_numpy: Optional[Callable[[DataDict, Mapping[str, int]], DataDict]] = None
    check_dependences: bool = True
    #: C source of one collapsed iteration for the native backend: the
    #: recovered iterators and the parameters are in scope as ``long long``,
    #: each name in ``c_arrays`` is a 2-D row-major double array accessed as
    #: ``name(row, col)``.  ``None`` means the kernel has no native body.
    c_body: Optional[str] = None
    #: the arrays the native body touches, in ABI (pointer-table) order;
    #: must be keys of ``make_data``'s result
    c_arrays: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # derived objects
    # ------------------------------------------------------------------ #
    def collapsed(self, **kwargs) -> CollapsedLoop:
        """Collapse the kernel's parallel loops (checking dependences by default)."""
        kwargs.setdefault("check_dependences", self.check_dependences and bool(self.nest.statements))
        return collapse(self.nest, self.collapse_depth, **kwargs)

    def cost_model(self, costs: Optional[RecoveryCosts] = None) -> CostModel:
        return CostModel(self.nest, costs)

    @property
    def is_executable(self) -> bool:
        """True when the kernel can actually be run on NumPy data."""
        return self.make_data is not None and self.iteration_op is not None

    @property
    def supports_native(self) -> bool:
        """True when the kernel carries a C body for the native backend."""
        return self.is_executable and self.c_body is not None

    def __str__(self) -> str:
        return f"{self.name}: {self.description}"


_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel) -> Kernel:
    """Add a kernel to the global registry (used at import time by the modules)."""
    if kernel.name in _REGISTRY:
        raise ValueError(f"kernel {kernel.name!r} is already registered")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    if name not in _REGISTRY:
        raise KeyError(f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def all_kernels() -> List[Kernel]:
    """Every registered kernel, in registration order."""
    return list(_REGISTRY.values())


def executable_kernels() -> List[Kernel]:
    """The kernels that can be executed on NumPy data (not just simulated)."""
    return [kernel for kernel in _REGISTRY.values() if kernel.is_executable]


def native_kernels() -> List[Kernel]:
    """The kernels the native (compiled C/OpenMP) backend can execute."""
    return [kernel for kernel in _REGISTRY.values() if kernel.supports_native]
