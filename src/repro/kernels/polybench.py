"""The nine Polybench-derived kernels of the evaluation.

The paper extracts the most time-consuming non-rectangular loop nest of each
program (after Pluto's transformations) and collapses its parallel loops.
The figure in the paper does not name all nine programs, so this module
picks nine Polybench kernels whose parallel loops are non-rectangular (or
become so after a Pluto-style transformation) and documents each choice in
the per-kernel descriptions below (see also the benchmark table in
README.md).

For the executable subset, ``iteration_op`` applies the body of one
*collapsed* iteration — the loops below the collapse depth are executed as a
vectorised NumPy expression, which is how a production kernel would be
written anyway and keeps the test-suite fast.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from ..ir import ArrayAccess, Loop, LoopNest, Statement
from .base import Kernel, register_kernel

_SEED = 20170529  # IPDPS 2017 conference date; only used to make data deterministic


def _rng() -> np.random.Generator:
    return np.random.default_rng(_SEED)


# ---------------------------------------------------------------------- #
# correlation (Fig. 1 of the paper)
# ---------------------------------------------------------------------- #
def _correlation_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N - 1"), Loop.make("j", "i + 1", "N"), Loop.make("k", 0, "N")],
        statements=[
            Statement(
                "accumulate",
                (
                    ArrayAccess.write("a", "i", "j"),
                    ArrayAccess.read("a", "i", "j"),
                    ArrayAccess.read("b", "k", "i"),
                    ArrayAccess.read("c", "k", "j"),
                ),
            ),
            Statement(
                "mirror",
                (ArrayAccess.write("a", "j", "i"), ArrayAccess.read("a", "i", "j")),
            ),
        ],
        parameters=["N"],
        name="correlation",
    )


def _correlation_data(values: Mapping[str, int]) -> Dict[str, np.ndarray]:
    n = values["N"]
    rng = _rng()
    return {
        "a": np.zeros((n, n)),
        "b": rng.standard_normal((n, n)),
        "c": rng.standard_normal((n, n)),
    }


def _correlation_op(data: Dict[str, np.ndarray], indices: Tuple[int, ...], values: Mapping[str, int]) -> None:
    i, j = indices
    data["a"][i, j] += float(data["b"][:, i] @ data["c"][:, j])
    data["a"][j, i] = data["a"][i, j]


def _correlation_reference(data: Dict[str, np.ndarray], values: Mapping[str, int]) -> Dict[str, np.ndarray]:
    n = values["N"]
    product = data["b"].T @ data["c"]
    expected = np.zeros((n, n))
    upper = np.triu_indices(n, k=1)
    expected[upper] = product[upper]
    expected[(upper[1], upper[0])] = product[upper]
    return {"a": expected}


register_kernel(
    Kernel(
        name="correlation",
        nest=_correlation_nest(),
        collapse_depth=2,
        description="Polybench correlation: triangular (i, j) pair around an N-deep dot product (Fig. 1)",
        default_parameters={"N": 400},
        bench_parameters={"N": 120},
        make_data=_correlation_data,
        iteration_op=_correlation_op,
        reference_numpy=_correlation_reference,
        # the non-collapsed k loop runs as a real C loop (Python uses a BLAS
        # dot product, so agreement is to rounding)
        c_body=(
            "double acc = 0.0;\n"
            "for (long long k = 0; k < N; k++) acc += b(k, i) * c(k, j);\n"
            "a(i, j) += acc;\n"
            "a(j, i) = a(i, j);"
        ),
        c_arrays=("a", "b", "c"),
    )
)


# ---------------------------------------------------------------------- #
# covariance: all parallel loops collapsed (no compute loop below them)
# ---------------------------------------------------------------------- #
def _covariance_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
        statements=[
            Statement(
                "normalise",
                (
                    ArrayAccess.write("cov", "i", "j"),
                    ArrayAccess.read("acc", "i", "j"),
                ),
            ),
            Statement(
                "mirror",
                (ArrayAccess.write("cov", "j", "i"), ArrayAccess.read("cov", "i", "j")),
            ),
        ],
        parameters=["N"],
        name="covariance",
    )


def _covariance_data(values: Mapping[str, int]) -> Dict[str, np.ndarray]:
    n = values["N"]
    rng = _rng()
    symmetric = rng.standard_normal((n, n))
    return {"acc": symmetric + symmetric.T, "cov": np.zeros((n, n))}


def _covariance_op(data, indices, values) -> None:
    i, j = indices
    data["cov"][i, j] = data["acc"][i, j] / (values["N"] - 1)
    data["cov"][j, i] = data["cov"][i, j]


def _covariance_reference(data, values) -> Dict[str, np.ndarray]:
    n = values["N"]
    expected = data["acc"] / (n - 1)
    return {"cov": expected}


register_kernel(
    Kernel(
        name="covariance",
        nest=_covariance_nest(),
        collapse_depth=2,
        description="Polybench covariance: triangular normalisation/symmetrisation, the whole nest is collapsed",
        default_parameters={"N": 700},
        bench_parameters={"N": 200},
        make_data=_covariance_data,
        iteration_op=_covariance_op,
        reference_numpy=_covariance_reference,
        # same divide as the Python op: bit-identical
        c_body=(
            "cov(i, j) = acc(i, j) / (double)(N - 1);\n"
            "cov(j, i) = cov(i, j);"
        ),
        c_arrays=("acc", "cov"),
    )
)


# ---------------------------------------------------------------------- #
# symm: triangular element-wise update, whole nest collapsed
# ---------------------------------------------------------------------- #
def _symm_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("C", "i", "j"),
                    ArrayAccess.read("C", "i", "j"),
                    ArrayAccess.read("A", "i", "j"),
                    ArrayAccess.read("B", "i", "j"),
                ),
            )
        ],
        parameters=["N"],
        name="symm",
    )


def _symm_data(values):
    n = values["N"]
    rng = _rng()
    return {"A": rng.standard_normal((n, n)), "B": rng.standard_normal((n, n)), "C": np.zeros((n, n))}


def _symm_op(data, indices, values) -> None:
    i, j = indices
    data["C"][i, j] += 1.5 * data["A"][i, j] * data["B"][i, j]


def _symm_reference(data, values):
    return {"C": np.tril(1.5 * data["A"] * data["B"])}


register_kernel(
    Kernel(
        name="symm",
        nest=_symm_nest(),
        collapse_depth=2,
        description="Polybench symm (triangular part): lower-triangular element-wise update, whole nest collapsed",
        default_parameters={"N": 700},
        bench_parameters={"N": 200},
        make_data=_symm_data,
        iteration_op=_symm_op,
        reference_numpy=_symm_reference,
        # element-wise update: bit-identical
        c_body="C(i, j) += 1.5 * A(i, j) * B(i, j);",
        c_arrays=("A", "B", "C"),
    )
)


# ---------------------------------------------------------------------- #
# syrk: lower-triangular rank-M update
# ---------------------------------------------------------------------- #
def _syrk_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", 0, "M")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("C", "i", "j"),
                    ArrayAccess.read("C", "i", "j"),
                    ArrayAccess.read("A", "i", "k"),
                    ArrayAccess.read("A", "j", "k"),
                ),
            )
        ],
        parameters=["N", "M"],
        name="syrk",
    )


def _syrk_data(values):
    rng = _rng()
    return {"A": rng.standard_normal((values["N"], values["M"])), "C": np.zeros((values["N"], values["N"]))}


def _syrk_op(data, indices, values) -> None:
    i, j = indices
    data["C"][i, j] += float(data["A"][i, :] @ data["A"][j, :])


def _syrk_reference(data, values):
    return {"C": np.tril(data["A"] @ data["A"].T)}


register_kernel(
    Kernel(
        name="syrk",
        nest=_syrk_nest(),
        collapse_depth=2,
        description="Polybench syrk: lower-triangular (i, j) pair around an M-deep dot product",
        default_parameters={"N": 400, "M": 300},
        bench_parameters={"N": 120, "M": 80},
        make_data=_syrk_data,
        iteration_op=_syrk_op,
        reference_numpy=_syrk_reference,
        c_body=(
            "double acc = 0.0;\n"
            "for (long long k = 0; k < M; k++) acc += A(i, k) * A(j, k);\n"
            "C(i, j) += acc;"
        ),
        c_arrays=("A", "C"),
    )
)


# ---------------------------------------------------------------------- #
# syr2k: like syrk with twice the inner work
# ---------------------------------------------------------------------- #
def _syr2k_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", 0, "2*M")],
        statements=[
            Statement(
                "update",
                # the rank-2 update reads BOTH cross products — A(i,:)B(j,:)
                # and B(i,:)A(j,:) — exactly as the C body performs them;
                # repro.lint cross-checks this model against the emitted
                # footprint, so under-declaring reads here is a lint warning
                (
                    ArrayAccess.write("C", "i", "j"),
                    ArrayAccess.read("C", "i", "j"),
                    ArrayAccess.read("A", "i", "k"),
                    ArrayAccess.read("B", "j", "k"),
                    ArrayAccess.read("B", "i", "k"),
                    ArrayAccess.read("A", "j", "k"),
                ),
            )
        ],
        parameters=["N", "M"],
        name="syr2k",
    )


def _syr2k_data(values):
    rng = _rng()
    n, m = values["N"], values["M"]
    return {
        "A": rng.standard_normal((n, m)),
        "B": rng.standard_normal((n, m)),
        "C": np.zeros((n, n)),
    }


def _syr2k_op(data, indices, values) -> None:
    i, j = indices
    data["C"][i, j] += float(data["A"][i, :] @ data["B"][j, :] + data["B"][i, :] @ data["A"][j, :])


def _syr2k_reference(data, values):
    return {"C": np.tril(data["A"] @ data["B"].T + data["B"] @ data["A"].T)}


register_kernel(
    Kernel(
        name="syr2k",
        nest=_syr2k_nest(),
        collapse_depth=2,
        description="Polybench syr2k: lower-triangular (i, j) pair around a 2M-deep symmetric rank-2 update",
        default_parameters={"N": 400, "M": 150},
        bench_parameters={"N": 120, "M": 40},
        make_data=_syr2k_data,
        iteration_op=_syr2k_op,
        reference_numpy=_syr2k_reference,
        # the 2M-deep rank-2 update, expressed like the Python op: two
        # M-deep products per (i, j)
        c_body=(
            "double acc = 0.0;\n"
            "for (long long k = 0; k < M; k++) acc += A(i, k) * B(j, k) + B(i, k) * A(j, k);\n"
            "C(i, j) += acc;"
        ),
        c_arrays=("A", "B", "C"),
    )
)


# ---------------------------------------------------------------------- #
# trmm (upper-triangular result variant)
# ---------------------------------------------------------------------- #
def _trmm_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", "i", "N"), Loop.make("k", 0, "M")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("B", "i", "j"),
                    ArrayAccess.read("B", "i", "j"),
                    ArrayAccess.read("A", "i", "k"),
                    ArrayAccess.read("C", "k", "j"),
                ),
            )
        ],
        parameters=["N", "M"],
        name="trmm",
    )


def _trmm_data(values):
    rng = _rng()
    n, m = values["N"], values["M"]
    return {
        "A": rng.standard_normal((n, m)),
        "C": rng.standard_normal((m, n)),
        "B": np.zeros((n, n)),
    }


def _trmm_op(data, indices, values) -> None:
    i, j = indices
    data["B"][i, j] += float(data["A"][i, :] @ data["C"][:, j])


def _trmm_reference(data, values):
    return {"B": np.triu(data["A"] @ data["C"])}


register_kernel(
    Kernel(
        name="trmm",
        nest=_trmm_nest(),
        collapse_depth=2,
        description="Polybench trmm (upper-triangular variant): triangular (i, j) pair around an M-deep dot product",
        default_parameters={"N": 400, "M": 300},
        bench_parameters={"N": 120, "M": 80},
        make_data=_trmm_data,
        iteration_op=_trmm_op,
        reference_numpy=_trmm_reference,
        c_body=(
            "double acc = 0.0;\n"
            "for (long long k = 0; k < M; k++) acc += A(i, k) * C(k, j);\n"
            "B(i, j) += acc;"
        ),
        c_arrays=("A", "B", "C"),
    )
)


# ---------------------------------------------------------------------- #
# cholesky update step: the (i, j) trailing update for a fixed pivot K
# ---------------------------------------------------------------------- #
def _cholesky_update_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", "K + 1", "N"), Loop.make("j", "K + 1", "i + 1")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("A", "i", "j"),
                    ArrayAccess.read("A", "i", "j"),
                    ArrayAccess.read("A", "i", "K"),
                    ArrayAccess.read("A", "j", "K"),
                ),
            )
        ],
        parameters=["N", "K"],
        name="cholesky_update",
    )


def _cholesky_update_data(values):
    rng = _rng()
    n = values["N"]
    matrix = rng.standard_normal((n, n))
    return {"A": matrix @ matrix.T + n * np.eye(n)}


def _cholesky_update_op(data, indices, values) -> None:
    i, j = indices
    pivot = values["K"]
    data["A"][i, j] -= data["A"][i, pivot] * data["A"][j, pivot]


def _cholesky_update_reference(data, values):
    n, pivot = values["N"], values["K"]
    expected = data["A"].copy()
    column = data["A"][pivot + 1 :, pivot]
    expected[pivot + 1 :, pivot + 1 :] -= np.tril(np.outer(column, column))
    return {"A": expected}


register_kernel(
    Kernel(
        name="cholesky_update",
        nest=_cholesky_update_nest(),
        collapse_depth=2,
        description="Polybench cholesky, trailing (i, j) update of one factorisation step: triangular and parametrised by the pivot",
        default_parameters={"N": 700, "K": 10},
        bench_parameters={"N": 200, "K": 5},
        make_data=_cholesky_update_data,
        iteration_op=_cholesky_update_op,
        reference_numpy=_cholesky_update_reference,
        # one multiply-subtract per iteration: bit-identical
        c_body="A(i, j) -= A(i, K) * A(j, K);",
        c_arrays=("A",),
    )
)


# ---------------------------------------------------------------------- #
# lu update step: rectangular but parametric (the case OpenMP could already collapse)
# ---------------------------------------------------------------------- #
def _lu_update_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", "K + 1", "N"), Loop.make("j", "K + 1", "N")],
        statements=[
            Statement(
                "update",
                (
                    ArrayAccess.write("A", "i", "j"),
                    ArrayAccess.read("A", "i", "j"),
                    ArrayAccess.read("A", "i", "K"),
                    ArrayAccess.read("A", "K", "j"),
                ),
            )
        ],
        parameters=["N", "K"],
        name="lu_update",
    )


def _lu_update_data(values):
    rng = _rng()
    n = values["N"]
    return {"A": rng.standard_normal((n, n)) + n * np.eye(n)}


def _lu_update_op(data, indices, values) -> None:
    i, j = indices
    pivot = values["K"]
    data["A"][i, j] -= data["A"][i, pivot] * data["A"][pivot, j]


def _lu_update_reference(data, values):
    pivot = values["K"]
    expected = data["A"].copy()
    expected[pivot + 1 :, pivot + 1 :] -= np.outer(data["A"][pivot + 1 :, pivot], data["A"][pivot, pivot + 1 :])
    return {"A": expected}


register_kernel(
    Kernel(
        name="lu_update",
        nest=_lu_update_nest(),
        collapse_depth=2,
        description="Polybench lu, trailing (i, j) update of one elimination step: rectangular-but-parametric control",
        default_parameters={"N": 700, "K": 10},
        bench_parameters={"N": 200, "K": 5},
        make_data=_lu_update_data,
        iteration_op=_lu_update_op,
        reference_numpy=_lu_update_reference,
        # one multiply-subtract per iteration: bit-identical
        c_body="A(i, j) -= A(i, K) * A(K, j);",
        c_arrays=("A",),
    )
)


# ---------------------------------------------------------------------- #
# jacobi-1d after Pluto time skewing: a rhomboidal (parallelepiped) domain
# ---------------------------------------------------------------------- #
def _jacobi1d_skewed_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("t", 0, "T"), Loop.make("x", "t + 1", "N - 1")],
        statements=[Statement("stencil")],
        parameters=["T", "N"],
        name="jacobi1d_skewed",
    )


register_kernel(
    Kernel(
        name="jacobi1d_skewed",
        nest=_jacobi1d_skewed_nest(),
        collapse_depth=2,
        description=(
            "Polybench jacobi-1d after Pluto time skewing: trapezoidal (t, x) wavefront whose rows "
            "shrink with t (scheduling model only)"
        ),
        default_parameters={"T": 300, "N": 650},
        bench_parameters={"T": 100, "N": 220},
        # Dependence-gate justification (audited by ``python -m repro.lint``,
        # rule registry/dependence-gate-off): this kernel is a *scheduling
        # simulation only* — its single opaque statement declares no array
        # accesses, carries no iteration_op/make_data, and is excluded from
        # executable_kernels().  A time-skewed jacobi-1d genuinely carries a
        # t-loop dependence, so collapsing (t, x) is NOT legal for execution;
        # the registration exists to exercise the ranking/unranking machinery
        # on a rhomboidal domain, never to run the stencil.  The lint CLI
        # keeps this visible as a warning; registering an *executable* kernel
        # with the gate off is a lint error.
        check_dependences=False,
    )
)
