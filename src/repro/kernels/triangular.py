"""The two handwritten triangular-matrix programs of the evaluation.

* ``utma`` — sum of two upper-triangular matrices (5000x5000 in the paper):
  both loops are collapsed, the body is a single element-wise addition.
* ``ltmp`` — product of two lower-triangular matrices (4000x4000 in the
  paper): the innermost ``k`` loop carries the reduction on ``C[i][j]`` and
  cannot be collapsed, so only the two outer loops are; because the trip
  count of the remaining ``k`` loop still depends on ``(i, j)``, the
  collapsed loop keeps a load imbalance and ``schedule(dynamic)`` beats the
  collapsed static version — the one negative case of Fig. 9.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from ..ir import ArrayAccess, Loop, LoopNest, Statement
from .base import Kernel, register_kernel

_SEED = 40004000


def _rng() -> np.random.Generator:
    return np.random.default_rng(_SEED)


# ---------------------------------------------------------------------- #
# utma: upper triangular matrix add
# ---------------------------------------------------------------------- #
def _utma_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", "i", "N")],
        statements=[
            Statement(
                "add",
                (
                    ArrayAccess.write("c", "i", "j"),
                    ArrayAccess.read("a", "i", "j"),
                    ArrayAccess.read("b", "i", "j"),
                ),
            )
        ],
        parameters=["N"],
        name="utma",
    )


def _utma_data(values: Mapping[str, int]) -> Dict[str, np.ndarray]:
    n = values["N"]
    rng = _rng()
    return {
        "a": np.triu(rng.standard_normal((n, n))),
        "b": np.triu(rng.standard_normal((n, n))),
        "c": np.zeros((n, n)),
    }


def _utma_op(data, indices: Tuple[int, ...], values) -> None:
    i, j = indices
    data["c"][i, j] = data["a"][i, j] + data["b"][i, j]


def _utma_chunk_op(data, indices, values) -> None:
    """Whole-chunk utma: one fancy-indexed add over the recovered (i, j) array.

    Safe because a chunk's recovered rows are distinct iterations (unranking
    is a bijection), so the scatter never writes one element twice.
    """
    rows, cols = indices[:, 0], indices[:, 1]
    data["c"][rows, cols] = data["a"][rows, cols] + data["b"][rows, cols]


def _utma_reference(data, values):
    return {"c": np.triu(data["a"] + data["b"])}


register_kernel(
    Kernel(
        name="utma",
        nest=_utma_nest(),
        collapse_depth=2,
        description="sum of two upper-triangular matrices (paper: 5000x5000); the whole nest is collapsed",
        default_parameters={"N": 1000},
        bench_parameters={"N": 250},
        make_data=_utma_data,
        iteration_op=_utma_op,
        chunk_op=_utma_chunk_op,
        reference_numpy=_utma_reference,
        # element-wise add: bit-identical to the Python/NumPy paths
        c_body="c(i, j) = a(i, j) + b(i, j);",
        c_arrays=("a", "b", "c"),
    )
)


# ---------------------------------------------------------------------- #
# ltmp: lower triangular matrix product
# ---------------------------------------------------------------------- #
def _ltmp_nest() -> LoopNest:
    return LoopNest(
        loops=[Loop.make("i", 0, "N"), Loop.make("j", 0, "i + 1"), Loop.make("k", "j", "i + 1")],
        statements=[
            Statement(
                "fma",
                (
                    ArrayAccess.write("c", "i", "j"),
                    ArrayAccess.read("c", "i", "j"),
                    ArrayAccess.read("a", "i", "k"),
                    ArrayAccess.read("b", "k", "j"),
                ),
            )
        ],
        parameters=["N"],
        name="ltmp",
    )


def _ltmp_data(values: Mapping[str, int]) -> Dict[str, np.ndarray]:
    n = values["N"]
    rng = _rng()
    return {
        "a": np.tril(rng.standard_normal((n, n))),
        "b": np.tril(rng.standard_normal((n, n))),
        "c": np.zeros((n, n)),
    }


def _ltmp_op(data, indices: Tuple[int, ...], values) -> None:
    # one collapsed iteration covers the whole k reduction for (i, j),
    # k running from j to i inclusive (the non-collapsible inner loop)
    i, j = indices
    data["c"][i, j] = float(data["a"][i, j : i + 1] @ data["b"][j : i + 1, j])


def _ltmp_reference(data, values):
    return {"c": np.tril(data["a"] @ data["b"])}


register_kernel(
    Kernel(
        name="ltmp",
        nest=_ltmp_nest(),
        collapse_depth=2,
        description=(
            "product of two lower-triangular matrices (paper: 4000x4000); the inner k loop carries "
            "the reduction so only (i, j) are collapsed and some load imbalance remains"
        ),
        default_parameters={"N": 400},
        bench_parameters={"N": 120},
        make_data=_ltmp_data,
        iteration_op=_ltmp_op,
        reference_numpy=_ltmp_reference,
        # the non-collapsed k reduction runs as a real C loop (the Python op
        # uses a BLAS dot, so agreement is to rounding, not bit-exact)
        c_body=(
            "double acc = 0.0;\n"
            "for (long long k = j; k <= i; k++) acc += a(i, k) * b(k, j);\n"
            "c(i, j) = acc;"
        ),
        c_arrays=("a", "b", "c"),
    )
)
