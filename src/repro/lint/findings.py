"""Machine-checkable lint findings and the report that collects them."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.reporting import format_markdown_table

#: severity ladder, most severe first.  ``error`` findings reject a plan
#: (``build_plan(static_check=True)`` raises, ``verify_kernel`` returns
#: ``False``, the CLI exits non-zero); ``warning`` findings flag something a
#: human must have justified (e.g. a ``check_dependences=False``
#: registration); ``info`` findings record what was proven.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One statically-derived fact about a kernel, nest, plan, or C source.

    ``rule`` is a stable ``area/check`` identifier (e.g.
    ``"c-body/footprint-dependence"``) so CI and tests can match findings
    without parsing prose; ``subject`` names the kernel/nest/function the
    finding is about; ``detail`` carries the evidence (the failing access
    pair, the unproven scalar, the computed bound...).
    """

    rule: str
    severity: str
    subject: str
    message: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        text = f"[{self.severity}] {self.subject}: {self.rule}: {self.message}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass
class LintReport:
    """An ordered collection of findings with severity roll-ups."""

    findings: List[Finding] = field(default_factory=list)

    def add(
        self,
        rule: str,
        severity: str,
        subject: str,
        message: str,
        detail: str = "",
    ) -> Finding:
        finding = Finding(rule, severity, subject, message, detail)
        self.findings.append(finding)
        return finding

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def by_severity(self, severity: str) -> List[Finding]:
        return [finding for finding in self.findings if finding.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        return {severity: len(self.by_severity(severity)) for severity in SEVERITIES}

    def select(self, rule_prefix: str) -> List[Finding]:
        """Findings whose rule starts with ``rule_prefix`` (e.g. ``"c-body/"``)."""
        return [f for f in self.findings if f.rule.startswith(rule_prefix)]

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
            "ok": self.ok,
        }

    def to_json(self, extra: Optional[Dict[str, object]] = None) -> str:
        """Sorted-key JSON, stable across runs for diffable CI artifacts."""
        payload = dict(self.to_dict())
        if extra:
            payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_markdown(self, title: str = "Static lint findings") -> str:
        """The findings as a GitHub-flavoured markdown table."""
        headers: Sequence[str] = ("severity", "subject", "rule", "message", "detail")
        ordered = sorted(
            self.findings,
            key=lambda f: (SEVERITIES.index(f.severity), f.subject, f.rule),
        )
        rows = [
            (f.severity, f.subject, f.rule, f.message, f.detail or "-")
            for f in ordered
        ]
        if not rows:
            rows = [("info", "-", "-", "no findings", "-")]
        return format_markdown_table(headers, rows, title=title)

    def raise_on_errors(self, exception_type: type = ValueError) -> None:
        """Raise ``exception_type`` summarising every error-severity finding."""
        if self.ok:
            return
        lines = [str(finding) for finding in self.errors]
        raise exception_type(
            "static check failed with "
            f"{len(lines)} error finding(s):\n" + "\n".join(lines)
        )

    def __str__(self) -> str:
        return "\n".join(str(finding) for finding in self.findings) or "(no findings)"
