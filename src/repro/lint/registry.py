"""Per-kernel and per-plan lint orchestration.

:func:`lint_kernel` runs every applicable audit over one registered kernel:
the dependence-gate registration check (kernels registered with
``check_dependences=False`` must justify it), an independent IR-level
dependence verdict, the C-body footprint audit, the static overflow audit
at the kernel's default sizes, and the generated-C lint for each requested
schedule.  :func:`lint_all_kernels` maps it over the registry — the engine
behind ``python -m repro.lint``.

:func:`static_check_plan` is the same machinery scoped to one plan build —
what ``build_plan(static_check=...)`` and ``verify_kernel(static_check=True)``
call before anything compiles or runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ir import dependence_report
from ..ir.loopnest import LoopNest, Statement
from .c_body import audit_c_body
from .findings import LintReport
from .generated import lint_generated_c
from .overflow import audit_overflow

#: schedules the generated-C lint covers by default: one per recovery
#: scheme of the translation unit (once-per-thread, once-per-chunk,
#: per-iteration)
DEFAULT_SCHEDULES: Tuple[str, ...] = ("static", "dynamic,8", "guided")


def _ir_dependence_findings(
    report: LintReport, nest: LoopNest, depth: int, subject: str, gate_on: bool
) -> None:
    """Re-derive the IR-level dependence verdict independently of collapse."""
    if not any(statement.accesses for statement in nest.statements):
        return
    conflicts = [r for r in dependence_report(nest, depth) if r.may_depend]
    for result in conflicts:
        report.add(
            "registry/ir-dependence",
            "error" if gate_on else "warning",
            subject,
            "the IR statements may carry a dependence on a collapsed loop",
            str(result),
        )
    if not conflicts:
        report.add(
            "registry/ir-independent",
            "info",
            subject,
            f"the IR statements carry no dependence on the {depth} collapsed loops",
        )


def lint_kernel(
    kernel,
    parameter_values: Optional[Mapping[str, int]] = None,
    schedules: Sequence[str] = DEFAULT_SCHEDULES,
) -> LintReport:
    """Every static audit that applies to one registered kernel."""
    report = LintReport()
    subject = kernel.name
    depth = kernel.collapse_depth

    # --- dependence-gate registration audit ------------------------------ #
    if not kernel.check_dependences:
        if kernel.is_executable:
            report.add(
                "registry/dependence-gate-off",
                "error",
                subject,
                "an executable kernel is registered with check_dependences="
                "False — nothing proves its collapse is legal",
                "re-enable the gate or split the kernel into a simulation-only "
                "registration",
            )
        else:
            report.add(
                "registry/dependence-gate-off",
                "warning",
                subject,
                "registered with check_dependences=False (simulation-only "
                "kernel; see the justification at its registration site)",
                "its statements declare no accesses, so the IR gate would "
                "prove nothing anyway",
            )
    _ir_dependence_findings(
        report, kernel.nest, depth, subject, gate_on=kernel.check_dependences
    )

    # --- C-body footprint audit ------------------------------------------ #
    footprint = None
    if kernel.c_body is not None:
        audit = audit_c_body(
            kernel.c_body,
            kernel.nest.loops[:depth],
            kernel.nest.parameters,
            depth,
            subject=subject,
            ir_statements=kernel.nest.statements,
            declared_arrays=kernel.c_arrays,
        )
        report.merge(audit.report)
        footprint = audit.footprint

    # --- static overflow audit at concrete sizes ------------------------- #
    values = dict(parameter_values or kernel.default_parameters)
    collapsed = kernel.collapsed(check_dependences=False)
    report.merge(audit_overflow(collapsed, values, subject=subject))

    # --- generated-C lint, one unit per schedule -------------------------- #
    if kernel.c_body is not None:
        for schedule in schedules:
            report.merge(
                lint_generated_c(
                    collapsed,
                    body=kernel.c_body,
                    arrays=kernel.c_arrays,
                    schedule=schedule,
                    footprint=footprint,
                    subject=f"{subject}[{schedule}]",
                )
            )
    return report


def lint_all_kernels(
    kernels: Optional[Iterable] = None,
    parameter_values: Optional[Mapping[str, int]] = None,
    schedules: Sequence[str] = DEFAULT_SCHEDULES,
) -> Dict[str, LintReport]:
    """Map :func:`lint_kernel` over the registry (or an explicit kernel list)."""
    from ..kernels import all_kernels  # deferred: kernels import runtime helpers

    reports: Dict[str, LintReport] = {}
    for kernel in kernels if kernels is not None else all_kernels():
        reports[kernel.name] = lint_kernel(
            kernel, parameter_values=parameter_values, schedules=schedules
        )
    return reports


def static_check_plan(
    collapsed,
    parameter_values: Mapping[str, int],
    *,
    c_body: Optional[str] = None,
    c_arrays: Sequence[str] = (),
    schedule: object = "static",
    subject: str = "plan",
    full: bool = False,
    ir_statements: Sequence[Statement] = (),
) -> LintReport:
    """The static audits one plan build runs before compiling or executing.

    The overflow audit always runs (it is a handful of exact polynomial
    bounds).  ``full=True`` — ``build_plan(static_check=True)`` — adds the
    C-body footprint audit and the generated-C lint when a body exists.
    """
    report = LintReport()
    report.merge(audit_overflow(collapsed, parameter_values, subject=subject))
    if full and c_body is not None:
        depth = len(collapsed.iterators)
        audit = audit_c_body(
            c_body,
            collapsed.nest.loops[:depth],
            collapsed.nest.parameters,
            depth,
            subject=subject,
            ir_statements=ir_statements,
            declared_arrays=c_arrays,
        )
        report.merge(audit.report)
        report.merge(
            lint_generated_c(
                collapsed,
                body=c_body,
                arrays=c_arrays,
                schedule=schedule,
                footprint=audit.footprint,
                subject=subject,
            )
        )
    return report
