"""Static safety verification for nests, plans, and generated C.

The collapse is only legal when the collapsed loops carry no dependence
(Section IV of the paper), and the polyhedral test in
:mod:`repro.ir.dependences` enforces that — but historically only on the
Python IR: every native kernel executes a hand-written ``c_body`` string
that bypassed the dependence gate, the generated OpenMP translation units
were never checked for private-clause or race errors, and the
``long long``/``__int128`` width choices of the exact-recovery work were
trusted rather than proven.  This subpackage closes those holes statically,
*before* anything runs:

* :mod:`repro.lint.c_body` — parses a kernel's hand-written ``c_body`` into
  :class:`~repro.ir.loopnest.ArrayAccess`\\ es (reusing the
  :mod:`repro.ir.parser` machinery), cross-checks them against the kernel's
  IR statements, and runs the ZIV/GCD/Fourier–Motzkin dependence test on
  the *emitted* footprint;
* :mod:`repro.lint.generated` — lints ``generate_translation_unit`` output:
  proves every scalar written inside the ``#pragma omp parallel`` region is
  private (block-scope declared, listed in a ``private``-family clause, or
  under ``omp single``/``critical``/``atomic``), and that no two distinct
  collapsed iterations statically write the same array cell;
* :mod:`repro.lint.overflow` — bounds trip counts and bracket intermediates
  from the Ehrhart polynomial at the requested sizes and reports an error
  when an emitted ``long long``/``__int128`` width could wrap;
* :mod:`repro.lint.registry` — per-kernel orchestration behind the
  ``static_check=`` parameter of :func:`repro.runtime.build_plan` /
  :func:`repro.kernels.verify_kernel` and the ``python -m repro.lint`` CLI.

Everything returns machine-checkable :class:`~repro.lint.findings.Finding`
records collected in a :class:`~repro.lint.findings.LintReport`; the CLI
writes them as sorted-key ``REPORT_lint.json`` plus a markdown table.
"""

from .findings import Finding, LintReport, SEVERITIES
from .c_body import CBodyAudit, audit_c_body, parse_c_body
from .generated import lint_c_source, lint_generated_c
from .overflow import INT64_MAX, INT128_MAX, audit_overflow
from .registry import lint_all_kernels, lint_kernel

__all__ = [
    "Finding",
    "LintReport",
    "SEVERITIES",
    "CBodyAudit",
    "audit_c_body",
    "parse_c_body",
    "lint_c_source",
    "lint_generated_c",
    "INT64_MAX",
    "INT128_MAX",
    "audit_overflow",
    "lint_all_kernels",
    "lint_kernel",
]
