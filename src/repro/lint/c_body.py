"""Audit a kernel's hand-written ``c_body`` against the dependence tests.

Native and hybrid kernels execute a C body string that the IR-level
dependence gate never sees: ``collapse(check_dependences=True)`` proves the
*IR statements* carry no dependence, then the backend compiles and runs the
``c_body`` — which could, through a typo or a divergent update, touch cells
the IR never declared.  This module closes that hole statically:

1. the body is parsed into statements and :class:`~repro.ir.loopnest
   .ArrayAccess`\\ es with the same machinery (and therefore exactly the
   same accepted subset) as :mod:`repro.ir.parser`;
2. the *emitted footprint* — the collapsed loops plus any inner loops the
   body itself declares, around the parsed accesses — becomes a
   :class:`~repro.ir.loopnest.LoopNest`, and the full ZIV/GCD/
   Fourier–Motzkin dependence test runs on it, including the write/write
   self-pairs of :func:`repro.ir.dependences.write_write_report`;
3. the parsed footprint is cross-checked against the kernel's IR statements
   (exceeding the IR is a warning: the gate was run on the wrong model;
   the IR over-approximating the body is informational — a conservative
   model is harmless);
4. scalar writes must target scalars the body itself declares: a body-local
   scalar is block-scoped inside the generated parallel loop and therefore
   private per iteration, while any other scalar write would race across
   collapsed iterations.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import LoopNest, Statement, dependence_report, write_write_report
from ..ir.loopnest import ArrayAccess, Loop
from ..ir.parser import ParseError, parse_array_assignment
from ..polyhedra import AffineExpr
from .findings import Finding, LintReport

#: loop headers a C body may declare around its statements.  Unlike the
#: nest-level ``_FOR_RE`` of :mod:`repro.ir.parser` (which predates typed
#: headers), bodies idiomatically declare their reduction iterator inline:
#: ``for (long long k = j; k <= i; k++) ...``.
_BODY_FOR_RE = re.compile(
    r"""for\s*\(\s*
        (?:(?:const\s+)?(?:long\s+long|long|int)\s+)?(?P<iterator>[A-Za-z_]\w*)\s*=\s*
        (?P<lower>[^;]+);\s*
        (?P<iterator2>[A-Za-z_]\w*)\s*(?P<relation><=|<)\s*(?P<upper>[^;]+);\s*
        (?P<iterator3>[A-Za-z_]\w*)\s*(?:\+\+|\+=\s*1)\s*
        \)""",
    re.VERBOSE,
)

_DECL_RE = re.compile(
    r"""^(?:const\s+)?(?:double|float|long\s+long|long|int)\s+
        (?P<name>[A-Za-z_]\w*)\s*(?:=\s*(?P<init>.+))?$""",
    re.VERBOSE,
)

_SCALAR_ASSIGN_RE = re.compile(
    r"^(?P<name>[A-Za-z_]\w*)\s*(?P<op>[-+*/]?=)(?!=)\s*(?P<rhs>.+)$"
)

_INCDEC_RE = re.compile(
    r"^(?:(?:\+\+|--)\s*(?P<pre>[A-Za-z_]\w*)|(?P<post>[A-Za-z_]\w*)\s*(?:\+\+|--))$"
)

#: fabricated sink array used to parse a bare right-hand side through
#: :func:`repro.ir.parser.parse_array_assignment`, so RHS read extraction
#: (math-call roster, nested-paren rejection) stays byte-identical to the
#: nest parser's
_SINK = "__repro_lint_sink"


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", " ", text)


def _rhs_reads(rhs: str, context: str) -> Tuple[ArrayAccess, ...]:
    """The array reads of a bare right-hand-side expression."""
    statement = parse_array_assignment(f"{_SINK}(0) = {rhs};")
    if statement is None:
        raise ParseError(f"cannot parse right-hand side {rhs!r} in {context!r}")
    return tuple(a for a in statement.accesses if a.array != _SINK)


@dataclass
class _Scope:
    """One brace or loop scope while scanning the body."""

    kind: str  # "block" | "loop"
    braced: bool
    loop: Optional[Loop] = None


@dataclass
class CBodyAudit:
    """The parse result and findings of one ``c_body`` audit."""

    subject: str
    report: LintReport = field(default_factory=LintReport)
    #: collapsed loops + body-declared inner loops around the parsed
    #: statements; ``None`` when the body failed to parse
    footprint: Optional[LoopNest] = None
    statements: Tuple[Statement, ...] = ()
    inner_loops: Tuple[Loop, ...] = ()
    local_scalars: Tuple[str, ...] = ()

    @property
    def findings(self) -> List[Finding]:
        return self.report.findings

    @property
    def ok(self) -> bool:
        return self.report.ok


def parse_c_body(
    c_body: str,
    subject: str = "c_body",
) -> Tuple[Tuple[Loop, ...], Tuple[Statement, ...], Tuple[str, ...], Tuple[str, ...]]:
    """Parse a native C body into loops, statements, locals, and shared writes.

    Returns ``(inner_loops, statements, local_scalars, shared_scalar_writes)``.
    ``statements`` carry the array accesses the body performs (scalar
    reads/writes carry only their RHS array reads — a body-local scalar is
    private by construction).  ``shared_scalar_writes`` lists every scalar
    assignment target the body does *not* declare; the caller decides how
    loudly to complain.  Raises :class:`~repro.ir.parser.ParseError` on any
    statement outside the supported subset.
    """
    text = _strip_comments(c_body)
    position = 0
    scopes: List[_Scope] = []
    inner_loops: List[Loop] = []
    statements: List[Statement] = []
    locals_: List[str] = []
    shared_writes: List[str] = []

    def close_braceless_loops() -> None:
        # a braceless `for` owns exactly the one statement just consumed
        while scopes and scopes[-1].kind == "loop" and not scopes[-1].braced:
            scopes.pop()

    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        if text[position] == "{":
            scopes.append(_Scope("block", True))
            position += 1
            continue
        if text[position] == "}":
            while scopes and not scopes[-1].braced:
                scopes.pop()
            if not scopes:
                raise ParseError(f"unbalanced '}}' in the C body of {subject!r}")
            scopes.pop()
            position += 1
            close_braceless_loops()
            continue
        for_match = _BODY_FOR_RE.match(text, position)
        if for_match is not None:
            iterator = for_match.group("iterator")
            if (
                for_match.group("iterator2") != iterator
                or for_match.group("iterator3") != iterator
            ):
                raise ParseError(
                    f"loop header mixes iterators in the C body of {subject!r}: "
                    f"{for_match.group(0)!r}"
                )
            try:
                lower = AffineExpr.parse(for_match.group("lower"))
                upper = AffineExpr.parse(for_match.group("upper"))
            except ValueError as error:
                raise ParseError(
                    f"non-affine bound in the C body of {subject!r}: {error}"
                ) from error
            if for_match.group("relation") == "<=":
                upper = upper + 1
            loop = Loop(iterator, lower, upper, parallel=False)
            inner_loops.append(loop)
            position = for_match.end()
            rest = text[position:].lstrip()
            braced = rest.startswith("{")
            scopes.append(_Scope("loop", braced, loop))
            if braced:
                position = text.index("{", position) + 1
            continue
        end = text.find(";", position)
        if end < 0:
            raise ParseError(
                f"unterminated statement in the C body of {subject!r}: "
                f"{text[position:].strip()!r}"
            )
        raw = text[position:end].strip()
        position = end + 1
        statement = _classify_statement(raw, subject, locals_, shared_writes)
        if statement is not None:
            statements.append(statement)
        close_braceless_loops()

    if any(scope.braced for scope in scopes):
        raise ParseError(f"unbalanced '{{' in the C body of {subject!r}")
    return tuple(inner_loops), tuple(statements), tuple(locals_), tuple(shared_writes)


def _classify_statement(
    raw: str,
    subject: str,
    locals_: List[str],
    shared_writes: List[str],
) -> Optional[Statement]:
    if not raw:
        return None
    declaration = _DECL_RE.match(raw)
    if declaration is not None:
        name = declaration.group("name")
        locals_.append(name)
        init = declaration.group("init")
        if init:
            reads = _rhs_reads(init, raw)
            if reads:
                return Statement(name=f"{name}_init", accesses=reads, c_text=raw + ";")
        return None
    array_assignment = parse_array_assignment(raw + ";")
    if array_assignment is not None:
        return array_assignment
    scalar = _SCALAR_ASSIGN_RE.match(raw)
    if scalar is not None:
        name = scalar.group("name")
        if name not in locals_:
            shared_writes.append(name)
        accesses = _rhs_reads(scalar.group("rhs"), raw)
        if scalar.group("op") != "=":
            # a compound scalar update also reads its target, but a scalar
            # carries no subscripts for the dependence system to compare;
            # only its array reads matter
            pass
        if accesses:
            return Statement(name=f"{name}_scalar", accesses=accesses, c_text=raw + ";")
        return None
    increment = _INCDEC_RE.match(raw)
    if increment is not None:
        name = increment.group("pre") or increment.group("post")
        if name not in locals_:
            shared_writes.append(name)
        return None
    raise ParseError(f"unsupported statement in the C body of {subject!r}: {raw!r}")


def _normalised(access: ArrayAccess) -> Tuple[str, Tuple[str, ...], bool]:
    return (
        access.array,
        tuple(str(subscript) for subscript in access.subscripts),
        access.is_write,
    )


def _access_counter(statements: Sequence[Statement]) -> Counter:
    counter: Counter = Counter()
    for statement in statements:
        for access in statement.accesses:
            counter[_normalised(access)] += 1
    return counter


def _format_access(key: Tuple[str, Tuple[str, ...], bool], count: int) -> str:
    array, subscripts, is_write = key
    kind = "W" if is_write else "R"
    rendered = f"{kind}:{array}({', '.join(subscripts)})"
    return rendered if count == 1 else f"{rendered} x{count}"


def audit_c_body(
    c_body: str,
    outer_loops: Sequence[Loop],
    parameters: Sequence[str],
    depth: int,
    subject: str = "c_body",
    ir_statements: Sequence[Statement] = (),
    declared_arrays: Sequence[str] = (),
) -> CBodyAudit:
    """Audit one C body: parse, dependence-test, and cross-check its footprint.

    ``outer_loops`` are the loops being collapsed (``kernel.nest.loops[:depth]``)
    whose iterators the body may use; the body's own inner loops extend the
    footprint nest below them.  ``ir_statements`` (when the kernel's IR
    declares accesses) drive the emitted-vs-model cross-check, and
    ``declared_arrays`` (the kernel's ``c_arrays`` ABI tuple) must cover
    every array the body touches.
    """
    audit = CBodyAudit(subject=subject)
    report = audit.report
    try:
        inner_loops, statements, local_scalars, shared_writes = parse_c_body(
            c_body, subject
        )
    except ParseError as error:
        report.add(
            "c-body/parse-error",
            "error",
            subject,
            "the C body does not fit the auditable statement subset",
            str(error),
        )
        return audit
    audit.statements = statements
    audit.inner_loops = inner_loops
    audit.local_scalars = local_scalars

    for name in shared_writes:
        report.add(
            "c-body/shared-scalar-write",
            "error",
            subject,
            f"the body writes scalar {name!r} without declaring it",
            "a body-local scalar is block-scoped (hence private) inside the "
            "generated parallel loop; writing any other scalar races across "
            "collapsed iterations",
        )

    try:
        footprint = LoopNest(
            tuple(outer_loops) + inner_loops,
            statements,
            parameters,
            name=f"{subject}_footprint",
        )
    except ValueError as error:
        report.add(
            "c-body/invalid-footprint",
            "error",
            subject,
            "the parsed footprint does not form a valid affine nest",
            str(error),
        )
        return audit
    audit.footprint = footprint

    # --- dependence test on the emitted footprint ----------------------- #
    seen: set = set()
    results = list(dependence_report(footprint, depth))
    results.extend(write_write_report(footprint, depth))
    for result in results:
        if not result.may_depend:
            continue
        key = str(result)
        if key in seen:
            continue
        seen.add(key)
        report.add(
            "c-body/footprint-dependence",
            "error",
            subject,
            "the emitted access footprint may carry a dependence on a "
            "collapsed loop",
            key,
        )
    if not any(f.rule == "c-body/footprint-dependence" for f in report.findings):
        report.add(
            "c-body/footprint-independent",
            "info",
            subject,
            f"the emitted footprint carries no dependence on the {depth} "
            "collapsed loops",
            f"{len(results)} access pairs tested",
        )

    # --- ABI coverage ---------------------------------------------------- #
    if declared_arrays:
        touched = {
            access.array for statement in statements for access in statement.accesses
        }
        missing = sorted(touched - set(declared_arrays))
        if missing:
            report.add(
                "c-body/array-not-in-abi",
                "error",
                subject,
                "the body accesses arrays absent from the kernel's c_arrays "
                "pointer table",
                ", ".join(missing),
            )
        unused = sorted(set(declared_arrays) - touched)
        if unused:
            report.add(
                "c-body/unused-abi-array",
                "info",
                subject,
                "c_arrays declares arrays the body never touches",
                ", ".join(unused),
            )

    # --- cross-check against the IR model -------------------------------- #
    ir_counter = _access_counter(ir_statements)
    if ir_counter:
        emitted_counter = _access_counter(statements)
        emitted_only = emitted_counter - ir_counter
        ir_only = ir_counter - emitted_counter
        if emitted_only:
            report.add(
                "c-body/footprint-exceeds-ir",
                "warning",
                subject,
                "the emitted C performs accesses the IR statements never "
                "declared — the IR-level dependence gate ran on the wrong model",
                ", ".join(
                    _format_access(key, count)
                    for key, count in sorted(emitted_only.items())
                ),
            )
        if ir_only:
            report.add(
                "c-body/ir-over-approximates",
                "info",
                subject,
                "the IR declares accesses the emitted C does not perform "
                "(a conservative model; harmless)",
                ", ".join(
                    _format_access(key, count) for key, count in sorted(ir_only.items())
                ),
            )
        if not emitted_only and not ir_only:
            report.add(
                "c-body/footprint-matches-ir",
                "info",
                subject,
                "the emitted access footprint equals the IR statement accesses",
            )
    return audit
