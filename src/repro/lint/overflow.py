"""Static width audit: prove the emitted integer types cannot wrap.

The native translation unit runs the collapsed iterator ``pc`` and the trip
count as ``long long`` and certifies every recovery bracket with the exact
``__int128`` comparison ``bracket_numerator(x) <= pc * bracket_denominator``
(the exact-recovery scheme).  Those widths were chosen generously but never
*proven*: at absurd parameter values a quartic bracket numerator times a
large denominator LCM could exceed 127 bits and wrap silently — UB the
runtime would never notice.  This audit bounds every intermediate from the
Ehrhart polynomial at the requested sizes:

* the total trip count must fit ``long long`` (``pc``, ``repro_total``);
* ``max_pc * bracket_denominator`` — the right-hand side of every bracket
  comparison — must fit ``__int128``;
* a conservative absolute bound of each level's ``bracket_numerator`` over
  the (one-widened) iteration box must fit ``__int128``.  The bound sums
  ``|coefficient| * prod max(|lo|, |hi|, 1)^exp`` over the monomials, which
  dominates every partial sum and partial product an integer evaluation
  scheme (Horner or term-by-term) can produce at integer points inside the
  box.

Everything is exact big-int/Fraction arithmetic — no float trust.  The
audit runs at :func:`repro.runtime.build_plan` time for native plans and
raises before anything is compiled or executed.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor
from typing import Dict, Mapping, Tuple

from ..polyhedra import AffineExpr
from ..symbolic import Polynomial
from .findings import LintReport

#: the widest value ``long long`` holds (C99 guarantees 64 bits here)
INT64_MAX = 2**63 - 1
#: the widest value the certification arithmetic holds (``__int128``)
INT128_MAX = 2**127 - 1

Interval = Tuple[Fraction, Fraction]


def _affine_interval(
    expression: AffineExpr, boxes: Mapping[str, Interval]
) -> Interval:
    """Exact interval of an affine expression over per-variable boxes."""
    low = high = Fraction(expression.constant)
    for variable, coefficient in expression.coefficient_map().items():
        if variable not in boxes:
            raise KeyError(
                f"no interval for variable {variable!r} in {expression!s}"
            )
        box_low, box_high = boxes[variable]
        if coefficient >= 0:
            low += coefficient * box_low
            high += coefficient * box_high
        else:
            low += coefficient * box_high
            high += coefficient * box_low
    return low, high


def _iterator_boxes(
    loops, parameter_values: Mapping[str, int]
) -> Dict[str, Interval]:
    """Integer boxes of each loop iterator, outermost first, widened by one.

    The widening covers the recovery's shift-by-one probe (the bracket is
    also evaluated at ``x + 1``) and the bisection fallback touching the
    window edges.
    """
    boxes: Dict[str, Interval] = {
        name: (Fraction(value), Fraction(value))
        for name, value in parameter_values.items()
    }
    for loop in loops:
        lower_low, _ = _affine_interval(loop.lower, boxes)
        _, upper_high = _affine_interval(loop.upper, boxes)
        low = Fraction(floor(lower_low) - 1)
        high = Fraction(ceil(upper_high))  # upper is exclusive: last index + 1
        if high < low:
            high = low
        boxes[loop.iterator] = (low, high)
    return boxes


def _polynomial_abs_bound(
    polynomial: Polynomial, boxes: Mapping[str, Interval]
) -> int:
    """Sum of ``|coefficient| * prod max(|lo|, |hi|, 1)^exp`` over monomials.

    Exact and conservative: dominates the absolute value of every partial
    sum (term-by-term) and, because each base is clamped to at least 1,
    every partial product inside a monomial at integer points of the box.
    """
    total = Fraction(0)
    for monomial, coefficient in polynomial.terms().items():
        term = abs(coefficient)
        for variable, exponent in monomial.powers:
            if variable not in boxes:
                raise KeyError(
                    f"no interval for variable {variable!r} in {polynomial}"
                )
            low, high = boxes[variable]
            base = max(abs(low), abs(high), Fraction(1))
            term *= base**exponent
        total += term
    return ceil(total)


def audit_overflow(
    collapsed,
    parameter_values: Mapping[str, int],
    subject: str = "collapsed",
) -> LintReport:
    """Audit one collapsed nest's emitted widths at concrete parameter values."""
    report = LintReport()
    values = dict(parameter_values)
    missing = [p for p in collapsed.nest.parameters if p not in values]
    if missing:
        report.add(
            "overflow/missing-parameters",
            "error",
            subject,
            "cannot bound the emitted widths without concrete sizes",
            f"missing parameter values: {', '.join(missing)}",
        )
        return report

    total = collapsed.total_iterations(values)
    if total > INT64_MAX:
        report.add(
            "overflow/total-exceeds-int64",
            "error",
            subject,
            "the collapsed trip count does not fit the emitted long long "
            "(repro_total / pc would wrap)",
            f"total = {total} > 2^63 - 1",
        )

    max_pc = max(total - 1, 0)
    boxes = _iterator_boxes(collapsed.nest.loops, values)
    worst_bound = 0
    for recovery in collapsed.unranking.recoveries:
        denominator = recovery.bracket_denominator
        rhs = max_pc * denominator
        if rhs > INT128_MAX:
            report.add(
                "overflow/rank-scale-exceeds-int128",
                "error",
                subject,
                "pc * bracket_denominator does not fit the __int128 "
                f"certification arithmetic at level {recovery.iterator!r}",
                f"max_pc = {max_pc}, denominator = {denominator}",
            )
        try:
            bound = _polynomial_abs_bound(recovery.bracket_numerator, boxes)
        except KeyError as error:
            report.add(
                "overflow/unbounded-bracket",
                "error",
                subject,
                "cannot bound a bracket numerator over the iteration box",
                str(error),
            )
            continue
        worst_bound = max(worst_bound, bound, rhs)
        if bound > INT128_MAX:
            report.add(
                "overflow/bracket-exceeds-int128",
                "error",
                subject,
                "a bracket numerator may exceed __int128 over the iteration "
                f"box at level {recovery.iterator!r}",
                f"|numerator| <= {bound} > 2^127 - 1",
            )

    if report.ok:
        report.add(
            "overflow/widths-proven",
            "info",
            subject,
            "the emitted long long / __int128 widths cannot wrap at these sizes",
            f"total = {total} (~2^{max(total, 1).bit_length() - 1}), "
            f"worst bracket bound ~2^{max(worst_bound, 1).bit_length() - 1} "
            "of 2^127",
        )
    return report
