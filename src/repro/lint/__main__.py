"""``python -m repro.lint``: audit every registered kernel statically.

Runs the dependence-gate, C-body footprint, overflow, and generated-C
audits over the kernel registry, prints a summary table, and writes

* ``REPORT_lint.json`` — sorted-key machine-checkable findings, and
* ``REPORT_lint.md`` — the same findings as a markdown table

(paths configurable).  Exit status is non-zero iff any error-severity
finding was recorded, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from ..analysis.reporting import format_table
from .findings import SEVERITIES, LintReport
from .registry import DEFAULT_SCHEDULES, lint_all_kernels


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="static safety audit of every registered kernel",
    )
    parser.add_argument(
        "--kernel",
        action="append",
        default=None,
        help="audit only this kernel (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--schedule",
        action="append",
        default=None,
        help="generated-C schedules to lint (repeatable; default: "
        + ", ".join(DEFAULT_SCHEDULES),
    )
    parser.add_argument(
        "--json",
        default="REPORT_lint.json",
        help="findings JSON path (default: %(default)s; '-' to skip)",
    )
    parser.add_argument(
        "--markdown",
        default="REPORT_lint.md",
        help="findings markdown path (default: %(default)s; '-' to skip)",
    )
    parser.add_argument(
        "--show-info",
        action="store_true",
        help="also print info-severity findings (JSON always carries them)",
    )
    return parser.parse_args(argv)


def main(argv: List[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    from ..kernels import all_kernels, get_kernel

    if args.kernel:
        kernels = [get_kernel(name) for name in args.kernel]
    else:
        kernels = all_kernels()
    schedules = tuple(args.schedule) if args.schedule else DEFAULT_SCHEDULES

    reports: Dict[str, LintReport] = lint_all_kernels(kernels, schedules=schedules)

    merged = LintReport()
    rows = []
    for name, report in reports.items():
        merged.merge(report)
        counts = report.counts()
        rows.append(
            (
                name,
                str(counts["error"]),
                str(counts["warning"]),
                str(counts["info"]),
                "FAIL" if counts["error"] else "ok",
            )
        )
    print(
        format_table(
            ("kernel", "errors", "warnings", "info", "verdict"),
            rows,
            title="repro.lint: static safety audit",
        )
    )
    print()
    shown = [
        finding
        for finding in merged.findings
        if finding.severity != "info" or args.show_info
    ]
    for severity in SEVERITIES:
        for finding in shown:
            if finding.severity == severity:
                print(finding)
    counts = merged.counts()
    print(
        f"\n{len(reports)} kernel(s) audited: "
        + ", ".join(f"{counts[s]} {s}(s)" for s in SEVERITIES)
    )

    if args.json != "-":
        payload = {
            "kernels": {name: report.to_dict() for name, report in reports.items()},
            "schedules": list(schedules),
            "totals": counts,
            "ok": merged.ok,
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if args.markdown != "-":
        Path(args.markdown).write_text(
            merged.to_markdown(title="repro.lint findings") + "\n"
        )
        print(f"wrote {args.markdown}")
    return 0 if merged.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
