"""Lint generated C/OpenMP translation units for privatisation and races.

``generate_translation_unit`` keeps every thread-local of the parallel
region block-scope-declared *inside* the region (the C way to make it
private) and funnels all shared-scalar writes through ``#pragma omp
single``.  That discipline is what makes the region race-free — and until
now it was enforced by nothing but convention.  This linter proves it for
every unit the backend is about to compile:

* **scalar writes**: every scalar assigned inside a ``#pragma omp
  parallel`` region must be block-scope-declared within the region, listed
  in a ``private``/``firstprivate``/``lastprivate``/``reduction`` clause,
  or sit under ``#pragma omp single``/``critical``/``atomic``/``master``.
  Per-thread result slots (subscripted by ``repro_tid``) are recognised as
  disjoint by construction.  Anything else is an error finding.
* **array writes**: no two distinct collapsed iterations may statically
  write the same array cell.  The kernel-body macro writes are checked
  through the dependence system (:func:`repro.ir.dependences
  .write_write_report` on the emitted footprint, write/write self-pairs
  included).

The scalar proof is purely textual over the unit the compiler will see, so
it also rejects hand-doctored sources (the regression fixtures strip a
declaration out of the region and must fail).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set

from ..ir import write_write_report
from ..ir.loopnest import Loop, LoopNest
from ..ir.parser import ParseError
from .c_body import _strip_comments, parse_c_body
from .findings import LintReport

_PARALLEL_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")
_EXEMPT_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\s+(?:single|critical|atomic|master)\b")
_CLAUSE_RE = re.compile(
    r"(?:first|last)?private\s*\(([^)]*)\)|reduction\s*\(\s*[^:]+:\s*([^)]*)\)"
)
_TYPE_RE = re.compile(
    r"(?:const\s+)?(?:unsigned\s+)?"
    r"(?:double|float|clock_t|size_t|__int128|long\s+long|long|int)\s+"
    r"(?=[A-Za-z_])"
)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
_SCALAR_WRITE_RE = re.compile(r"(?<![\w\])])\b([A-Za-z_]\w*)\s*[-+*/%&|^]?=(?!=)")
_SUBSCRIPT_WRITE_RE = re.compile(r"([A-Za-z_]\w*)\s*\[([^\]]*)\]\s*[-+*/%&|^]?=(?!=)")
_DEREF_WRITE_RE = re.compile(r"\*\s*([A-Za-z_]\w*)\s*[-+*/%&|^]?=(?!=)")
_INCDEC_WRITE_RE = re.compile(
    r"(?:\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(?:\+\+|--)"
)


def _clause_private_names(pragma_line: str) -> Set[str]:
    names: Set[str] = set()
    for match in _CLAUSE_RE.finditer(pragma_line):
        listed = match.group(1) or match.group(2) or ""
        names.update(part.strip() for part in listed.split(",") if part.strip())
    return names


def _declared_names(line: str) -> Set[str]:
    """Every scalar a line declares (handles comma-separated declarators)."""
    names: Set[str] = set()
    for match in _TYPE_RE.finditer(line):
        tail = line[match.end():]
        terminator = tail.find(";")
        if terminator >= 0:
            tail = tail[:terminator]
        for declarator in tail.split(","):
            identifier = _IDENT_RE.match(declarator.strip())
            if identifier:
                names.add(identifier.group(0))
    return names


def _scalar_writes(line: str) -> List[str]:
    writes: List[str] = []
    for match in _SCALAR_WRITE_RE.finditer(line):
        writes.append(match.group(1))
    for match in _INCDEC_WRITE_RE.finditer(line):
        writes.append(match.group(1) or match.group(2))
    return writes


def lint_c_source(source: str, subject: str = "translation_unit") -> LintReport:
    """Prove every scalar write inside ``#pragma omp parallel`` is private.

    Pure text analysis over the source the compiler will see.  Reports an
    ``error`` finding per unproven scalar write and one ``info`` roll-up
    per parallel region when everything is proven.
    """
    report = LintReport()
    lines = _strip_comments(source).splitlines()

    depth = 0
    in_region = False
    region_exit_depth = 0
    pending_region = False
    clause_private: Set[str] = set()
    declared: Set[str] = set()
    exempt_pending = False
    exempt_until_depth: Optional[int] = None
    proven_writes = 0
    regions = 0

    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        opens = line.count("{")
        closes = line.count("}")

        if stripped.startswith("#"):
            if _PARALLEL_PRAGMA_RE.search(stripped):
                pending_region = True
                clause_private = _clause_private_names(stripped)
            elif in_region and _EXEMPT_PRAGMA_RE.search(stripped):
                exempt_pending = True
            depth += opens - closes
            continue

        if pending_region and stripped:
            if opens:
                in_region = True
                regions += 1
                region_exit_depth = depth
                declared = set()
                pending_region = False
            else:
                # a combined `parallel for` / braceless region: treat this
                # single statement as the region
                in_region = True
                regions += 1
                region_exit_depth = depth
                declared = set()
                pending_region = False

        if in_region and stripped:
            exempt_here = exempt_until_depth is not None
            if exempt_pending:
                exempt_here = True
                exempt_pending = False
                if opens > closes:
                    exempt_until_depth = depth
            declared |= _declared_names(line)
            if exempt_here:
                proven_writes += len(_scalar_writes(line))
            else:
                for name in _subscripted_unproven(line):
                    report.add(
                        "generated/unchecked-subscripted-write",
                        "warning",
                        subject,
                        f"line {number}: subscripted write to {name!r} is not "
                        "provably per-thread (subscript does not mention "
                        "repro_tid)",
                        stripped,
                    )
                for match in _DEREF_WRITE_RE.finditer(line):
                    report.add(
                        "generated/unproven-scalar-write",
                        "error",
                        subject,
                        f"line {number}: write through pointer "
                        f"*{match.group(1)} inside the parallel region is "
                        "not provably private",
                        stripped,
                    )
                for name in _scalar_writes(line):
                    if name in declared or name in clause_private:
                        proven_writes += 1
                        continue
                    report.add(
                        "generated/unproven-scalar-write",
                        "error",
                        subject,
                        f"line {number}: scalar {name!r} is written inside the "
                        "parallel region but is neither declared in the region "
                        "nor in a private-family clause nor under omp "
                        "single/critical/atomic",
                        stripped,
                    )

        depth += opens - closes

        if in_region and depth <= region_exit_depth:
            in_region = False
            clause_private = set()
            exempt_until_depth = None
        if exempt_until_depth is not None and depth <= exempt_until_depth:
            exempt_until_depth = None

    if report.ok:
        report.add(
            "generated/private-proof",
            "info",
            subject,
            f"every scalar write inside {regions} parallel region(s) is "
            "provably private",
            f"{proven_writes} writes proven",
        )
    return report


def _subscripted_unproven(line: str) -> List[str]:
    names: List[str] = []
    for match in _SUBSCRIPT_WRITE_RE.finditer(line):
        if "repro_tid" not in match.group(2):
            names.append(match.group(1))
    return names


def lint_generated_c(
    collapsed,
    *,
    body: Optional[str] = None,
    arrays: Sequence[str] = (),
    schedule: object = "static",
    guard: bool = True,
    array_ndims: Optional[Dict[str, int]] = None,
    source: Optional[str] = None,
    footprint: Optional[LoopNest] = None,
    subject: str = "generated",
) -> LintReport:
    """Lint the exact translation unit the native backend would compile.

    Generates the unit (unless a doctored ``source`` is supplied), runs the
    textual privatisation proof, and — when the kernel body is available —
    checks through the dependence system that no two distinct collapsed
    iterations statically write the same array cell.
    """
    from ..core.codegen_c import generate_translation_unit

    if source is None:
        source = generate_translation_unit(
            collapsed,
            body=body,
            arrays=arrays,
            schedule=schedule,
            guard=guard,
            array_ndims=array_ndims,
        )
    report = lint_c_source(source, subject=subject)

    depth = len(collapsed.iterators)
    if footprint is None and body is not None:
        try:
            inner_loops, statements, _, _ = parse_c_body(body, subject)
            footprint = LoopNest(
                tuple(collapsed.nest.loops[:depth]) + inner_loops,
                statements,
                collapsed.nest.parameters,
                name=f"{subject}_footprint",
            )
        except (ParseError, ValueError) as error:
            report.add(
                "generated/unauditable-body",
                "warning",
                subject,
                "cannot derive the emitted write footprint from the body",
                str(error),
            )
    if footprint is not None:
        conflicts = [
            result
            for result in write_write_report(footprint, depth)
            if result.may_depend
        ]
        seen: Set[str] = set()
        for result in conflicts:
            key = str(result)
            if key in seen:
                continue
            seen.add(key)
            report.add(
                "generated/write-write-conflict",
                "error",
                subject,
                "two distinct collapsed iterations may write the same array "
                "cell",
                key,
            )
        if not conflicts:
            report.add(
                "generated/write-write-clean",
                "info",
                subject,
                "no two distinct collapsed iterations statically write the "
                "same array cell",
            )
    return report
