"""Pluto-lite loop transformations.

The paper feeds its collapser with loop nests that the Pluto polyhedral
compiler has already transformed (skewed and/or tiled): such transformations
routinely turn rectangular loops into non-rectangular ones, which is exactly
where collapsing pays off.  This package provides the two transformations
needed to regenerate the paper's ``*_tiled`` program variants and the
skewed-stencil shapes:

* :func:`repro.transforms.skewing.skew` — replace an iterator ``j`` by
  ``j + factor * i`` (wavefront skewing), producing rhomboidal domains,
* :func:`repro.transforms.tiling.tile_triangular` — tile the two outer
  triangular loops, producing the tile-loop nest the collapser runs on plus
  the exact per-tile work function (full and partial tiles).
"""

from .skewing import skew
from .tiling import TiledNest, tile_triangular

__all__ = ["skew", "TiledNest", "tile_triangular"]
