"""Rectangular tiling of triangular loop pairs ("Pluto --tile"-lite).

Tiling a triangular domain produces the ``*_tiled`` variants of the paper's
evaluation: the tile loops themselves form a (smaller) triangular domain,
and the boundary tiles are only partially full, which is precisely the load
imbalance the paper points at ("tiling often yields incomplete tiles that
affect load balancing").

The point loops of a tiled triangular domain need ``min``/``max`` bounds and
therefore fall outside the single-affine-bound loop model; what the
collapser consumes are the *tile loops*, which stay affine when expressed in
the tile-count parameter ``NT = ceil(N / tile_size)``.  :func:`tile_triangular`
returns that affine tile-loop nest together with the exact per-tile work
function (number of original points inside each full or partial tile), which
is what the scheduling simulation needs to reproduce the ``*_tiled`` bars of
Fig. 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..ir import Loop, LoopNest

#: Name of the tile-count parameter of the generated tile-loop nest.
TILE_COUNT_PARAMETER = "NT"


@dataclass(frozen=True)
class TiledNest:
    """The tile-loop view of a tiled triangular nest."""

    tile_nest: LoopNest
    tile_size: int
    original: LoopNest
    inner_work: Callable[[int, int, Mapping[str, int]], float]

    def tile_parameters(self, parameter_values: Mapping[str, int]) -> Dict[str, int]:
        """Translate original parameter values into the tile nest's ``NT``."""
        environment = {k: int(v) for k, v in parameter_values.items()}
        upper = self.original.loops[0].upper.evaluate(environment)
        inner_upper = self.original.loops[1].upper.evaluate(environment)
        extent = max(math.ceil(upper), math.ceil(inner_upper))
        return {TILE_COUNT_PARAMETER: max(0, math.ceil(extent / self.tile_size))}

    def tile_work(self, tile_i: int, tile_j: int, parameter_values: Mapping[str, int]) -> float:
        """Work contained in tile ``(tile_i, tile_j)`` (0 for empty corner tiles)."""
        return self.inner_work(tile_i, tile_j, parameter_values)

    def total_work(self, parameter_values: Mapping[str, int]) -> float:
        """Work summed over every tile — must equal the untiled nest's work."""
        tiles = self.tile_parameters(parameter_values)[TILE_COUNT_PARAMETER]
        return sum(
            self.tile_work(tile_i, tile_j, parameter_values)
            for tile_i in range(tiles)
            for tile_j in range(tile_i, tiles)
        )


def tile_triangular(
    nest: LoopNest,
    tile_size: int,
    name: Optional[str] = None,
    point_work: Optional[Callable[[int, int, Mapping[str, int]], float]] = None,
) -> TiledNest:
    """Tile the two outermost loops of an upper-triangular nest.

    Requirements (checked):

    * the nest has at least two loops,
    * the outer loop's bounds involve only parameters,
    * the inner loop's lower bound is ``outer_iterator + c`` with ``c >= 0``
      (the upper-triangular pattern of correlation/covariance/utma) and its
      upper bound involves only parameters.

    The resulting tile nest is ``for (it = 0; it < NT; it++) for (jt = it;
    jt < NT; jt++)`` over the tile-count parameter ``NT``; boundary tiles that
    contain no original point simply have zero work.

    ``point_work`` gives the work of one original ``(i, j)`` iteration
    (default 1.0; pass the inner trip count for kernels with a compute loop
    below the tiled pair).
    """
    if tile_size < 1:
        raise ValueError("tile_size must be at least 1")
    if nest.depth < 2:
        raise ValueError("tiling needs at least two loops")
    outer, inner = nest.loops[0], nest.loops[1]
    iterators = set(nest.iterators)
    if (outer.lower.variables() | outer.upper.variables()) & iterators:
        raise ValueError("the outer loop's bounds must only involve parameters")
    if inner.upper.variables() & iterators:
        raise ValueError("the inner loop's upper bound must only involve parameters")
    if inner.lower.coefficient(outer.iterator) != 1 or (
        inner.lower.variables() - {outer.iterator}
    ) & iterators:
        raise ValueError(
            "tile_triangular handles the upper-triangular pattern "
            f"'{inner.iterator} >= {outer.iterator} + c' only"
        )
    if inner.lower.constant < 0:
        raise ValueError("the inner lower bound offset must be non-negative")

    tile_iterator_i = f"{outer.iterator}t"
    tile_iterator_j = f"{inner.iterator}t"
    tile_nest = LoopNest(
        [
            Loop.make(tile_iterator_i, 0, TILE_COUNT_PARAMETER),
            Loop.make(tile_iterator_j, tile_iterator_i, TILE_COUNT_PARAMETER),
        ],
        statements=(),
        parameters=[TILE_COUNT_PARAMETER],
        name=name or f"{nest.name}_tiled",
    )

    point_work = point_work or (lambda i, j, values: 1.0)

    def inner_work(tile_i: int, tile_j: int, parameter_values: Mapping[str, int]) -> float:
        environment = {k: int(v) for k, v in parameter_values.items()}
        lower_i = math.ceil(outer.lower.evaluate(environment))
        upper_i = math.ceil(outer.upper.evaluate(environment))
        total = 0.0
        i_first = max(lower_i, tile_i * tile_size)
        i_last = min(upper_i, (tile_i + 1) * tile_size) - 1
        for i in range(i_first, i_last + 1):
            row_environment = {**environment, outer.iterator: i}
            j_first = max(math.ceil(inner.lower.evaluate(row_environment)), tile_j * tile_size)
            j_last = min(math.ceil(inner.upper.evaluate(row_environment)), (tile_j + 1) * tile_size) - 1
            for j in range(j_first, j_last + 1):
                total += point_work(i, j, parameter_values)
        return total

    return TiledNest(tile_nest=tile_nest, tile_size=tile_size, original=nest, inner_work=inner_work)
