"""Loop skewing: ``j -> j + factor * i``.

Skewing is the transformation Pluto applies to legalise wavefront
parallelism in stencils; its visible effect on the loop nest is that the
skewed iterator's bounds start sliding with the outer iterator, turning a
rectangular domain into a rhomboid (one of the shapes listed in the paper's
introduction).  The skewed nest iterates exactly the same set of statement
instances: the new iterator ``j' = j + factor * i`` replaces ``j``, and every
use of ``j`` in deeper bounds or subscripts becomes ``j' - factor * i``.
"""

from __future__ import annotations

from typing import List

from ..ir import ArrayAccess, Loop, LoopNest, Statement
from ..polyhedra import AffineExpr


def skew(nest: LoopNest, target: str, source: str, factor: int, name: str | None = None) -> LoopNest:
    """Return the nest with iterator ``target`` skewed by ``factor * source``.

    ``source`` must be an iterator *outer* to ``target`` (the usual legality
    condition for skewing within a perfect nest).
    """
    iterators = list(nest.iterators)
    if target not in iterators or source not in iterators:
        raise ValueError(f"unknown iterator in skew: {target!r} or {source!r}")
    if iterators.index(source) >= iterators.index(target):
        raise ValueError(f"skew source {source!r} must be outer to target {target!r}")
    if factor == 0:
        return nest

    shift = AffineExpr.build({source: factor})
    # in the transformed nest, references to the old iterator value are
    # expressed as  target - factor * source
    old_value = AffineExpr.variable(target) - shift

    new_loops: List[Loop] = []
    for loop in nest.loops:
        lower, upper = loop.lower, loop.upper
        if loop.iterator == target:
            # new bounds: old bounds shifted by factor * source
            lower = lower + shift
            upper = upper + shift
        else:
            lower = lower.substitute({target: old_value})
            upper = upper.substitute({target: old_value})
        new_loops.append(Loop(loop.iterator, lower, upper, loop.parallel))

    new_statements: List[Statement] = []
    for statement in nest.statements:
        accesses = tuple(
            ArrayAccess(
                access.array,
                tuple(subscript.substitute({target: old_value}) for subscript in access.subscripts),
                access.is_write,
            )
            for access in statement.accesses
        )
        new_statements.append(Statement(statement.name, accesses, statement.compute))

    return LoopNest(new_loops, new_statements, nest.parameters, name or f"{nest.name}_skewed")
