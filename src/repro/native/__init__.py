"""The native backend: compile the generated C/OpenMP and run it.

The paper's deliverable is generated C; everywhere else in this repository
that text is executed through Python re-implementations.  This package
closes the loop the way the paper's own evaluation does — by *running the
emitted program*:

* :mod:`repro.native.compiler` — compiler discovery (``$CC``, ``cc``,
  ``gcc``, ``clang``), an OpenMP probe, and compilation to shared
  libraries behind an on-disk cache keyed by source hash;
* :mod:`repro.native.module` — the ``ctypes``-bound :class:`NativeModule`
  (``total`` / ``recover_range`` / ``run``), the memoised
  :func:`compile_collapsed` / :func:`compile_native_kernel` constructors
  and the :class:`NativeRunResult` (an
  :class:`~repro.runtime.engine.EngineRunResult` carrying per-thread
  timings measured inside the C code).

Machines without a C compiler raise :class:`NativeUnavailable` from every
entry point; ``native_available()`` is the cheap feature test the kernels
layer, the benchmarks and CI use to skip instead of fail.

See docs/native.md for the backend matrix and the guarded-floor story.
"""

from .compiler import (
    BASE_FLAGS,
    SANITIZER_PRESETS,
    NativeUnavailable,
    cache_dir,
    clear_native_cache,
    compile_shared_library,
    default_sanitize,
    extra_compile_flags,
    find_compiler,
    flags_supported,
    native_available,
    openmp_flags,
    sanitize_flags,
    sanitize_supported,
)
from .module import (
    NativeChunkRunner,
    NativeExecutionError,
    NativeLibrarySpec,
    NativeModule,
    NativeRunResult,
    clear_module_cache,
    compile_collapsed,
    compile_native_kernel,
)

__all__ = [
    "BASE_FLAGS",
    "SANITIZER_PRESETS",
    "NativeUnavailable",
    "cache_dir",
    "clear_native_cache",
    "compile_shared_library",
    "default_sanitize",
    "extra_compile_flags",
    "find_compiler",
    "flags_supported",
    "native_available",
    "openmp_flags",
    "sanitize_flags",
    "sanitize_supported",
    "NativeChunkRunner",
    "NativeExecutionError",
    "NativeLibrarySpec",
    "NativeModule",
    "NativeRunResult",
    "clear_module_cache",
    "compile_collapsed",
    "compile_native_kernel",
]
