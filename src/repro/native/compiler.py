"""Compiler discovery and cached shared-library compilation.

This is the bottom half of the native backend: find a C compiler (``$CC``,
then ``cc``/``gcc``/``clang`` on ``PATH``), probe once whether it accepts
``-fopenmp``, and turn generated translation units into ``ctypes``-loadable
shared libraries with ``cc -O2 -fPIC -shared [-fopenmp] ... -lm``.

Compilation results are cached on disk, keyed by the SHA-256 of the source
*and* of the exact compiler command line: the ``<digest>.c`` /
``<digest>.so`` pair lives in ``$REPRO_NATIVE_CACHE`` (default
``~/.cache/repro-native``), so an identical nest re-collapsed in a fresh
process loads the library without invoking the compiler at all.  Everything
degrades cleanly: machines without any compiler raise
:class:`NativeUnavailable`, which the execution layers and the test suite
translate into an explicit skip, never a crash.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Optional, Tuple

#: compilers probed, in order, when ``$CC`` is not set
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: flags every compilation uses (OpenMP is probed separately)
BASE_FLAGS = ("-O2", "-fPIC", "-shared")


class NativeUnavailable(RuntimeError):
    """No usable C compiler (or a compilation failed); callers should fall
    back to the Python engine or skip, never crash."""


def find_compiler() -> Optional[str]:
    """Absolute path of the first usable C compiler, or ``None``.

    ``$CC`` wins when set (even if broken — an explicit override should fail
    loudly rather than silently picking a different compiler).
    """
    override = os.environ.get("CC", "").strip()
    if override:
        return shutil.which(override) or override
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


@lru_cache(maxsize=None)
def openmp_flags(compiler: str) -> Tuple[str, ...]:
    """``("-fopenmp",)`` when the compiler links an OpenMP test unit, else ``()``.

    Probed once per compiler per process; without OpenMP the generated code
    still compiles (its ``#ifdef _OPENMP`` fallback runs single-threaded).
    """
    probe = (
        "#include <omp.h>\n"
        "double repro_probe(void) { return omp_get_wtime(); }\n"
    )
    with tempfile.TemporaryDirectory(prefix="repro-native-probe-") as workdir:
        source = Path(workdir) / "probe.c"
        output = Path(workdir) / "probe.so"
        source.write_text(probe)
        command = [compiler, *BASE_FLAGS, "-fopenmp", str(source), "-o", str(output), "-lm"]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=60.0
            )
        except (OSError, subprocess.TimeoutExpired):
            return ()
        return ("-fopenmp",) if result.returncode == 0 else ()


def native_available() -> bool:
    """True when a C compiler exists (the test suite's skip condition)."""
    return find_compiler() is not None


def cache_dir() -> Path:
    """The on-disk compilation cache (``$REPRO_NATIVE_CACHE`` overrides)."""
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def source_digest(source: str, command_tail: Tuple[str, ...]) -> str:
    """SHA-256 of the source plus the compiler invocation that builds it."""
    payload = "\x00".join((source, *command_tail))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compile_shared_library(source: str, tag: str = "collapsed") -> Path:
    """Compile a translation unit to a cached shared library; return its path.

    A cache hit (same source, same compiler, same flags) returns the
    existing ``.so`` without running the compiler.  Raises
    :class:`NativeUnavailable` when no compiler is found or the compilation
    fails (with the compiler's stderr in the message).
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailable(
            "no C compiler found (tried $CC, cc, gcc, clang); install one or use "
            "the Python engine backend"
        )
    flags = BASE_FLAGS + openmp_flags(compiler)
    digest = source_digest(source, (compiler,) + flags)
    directory = cache_dir()
    library = directory / f"{tag}-{digest[:16]}.so"
    if library.exists():
        return library

    directory.mkdir(parents=True, exist_ok=True)
    c_file = directory / f"{tag}-{digest[:16]}.c"
    c_file.write_text(source)
    # compile to a temporary name and publish atomically, so concurrent
    # processes racing on the same digest never load a half-written library
    scratch = directory / f".{tag}-{digest[:16]}-{os.getpid()}.so"
    command = [compiler, *flags, str(c_file), "-o", str(scratch), "-lm"]
    try:
        result = subprocess.run(command, capture_output=True, text=True, timeout=300.0)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise NativeUnavailable(f"C compiler failed to run: {error}") from error
    if result.returncode != 0:
        scratch.unlink(missing_ok=True)
        raise NativeUnavailable(
            f"compilation failed ({' '.join(command)}):\n{result.stderr.strip()}"
        )
    os.replace(scratch, library)
    return library


def clear_native_cache() -> int:
    """Delete every cached source/library pair; returns the file count."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.iterdir():
            if path.suffix in (".c", ".so"):
                path.unlink(missing_ok=True)
                removed += 1
    return removed
