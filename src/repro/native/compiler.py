"""Compiler discovery and cached shared-library compilation.

This is the bottom half of the native backend: find a C compiler (``$CC``,
then ``cc``/``gcc``/``clang`` on ``PATH``), probe once whether it accepts
``-fopenmp``, and turn generated translation units into ``ctypes``-loadable
shared libraries with ``cc -O2 -fPIC -shared [-fopenmp] ... -lm``.

Beyond the fixed :data:`BASE_FLAGS`, callers can append *extra* flags per
compilation (``compile_shared_library(..., extra_flags=("-march=native",))``
— the conformance sweep's compiler-flags axis) and users can append
process-wide flags through ``$REPRO_NATIVE_FLAGS`` (whitespace-separated;
applied after the per-call flags so the environment wins).  Aggressive
value-changing flags like ``-ffast-math`` are never added implicitly — the
differential gates compare native output against the Python baselines, so
the default build must honour IEEE semantics.

Compilation results are cached on disk, keyed by the SHA-256 of the source
*and* of the exact compiler command line — **including every extra flag**,
so changing flags can never serve a stale shared object: the ``<digest>.c``
/ ``<digest>.so`` pair lives in ``$REPRO_NATIVE_CACHE`` (default
``~/.cache/repro-native``), and an identical nest re-collapsed in a fresh
process loads the library without invoking the compiler at all.  Everything
degrades cleanly: machines without any compiler raise
:class:`NativeUnavailable`, which the execution layers and the test suite
translate into an explicit skip, never a crash.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence, Tuple

#: compilers probed, in order, when ``$CC`` is not set
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: flags every compilation uses (OpenMP is probed separately)
BASE_FLAGS = ("-O2", "-fPIC", "-shared")

#: sanitizer presets accepted by ``sanitize=`` parameters and
#: ``$REPRO_NATIVE_SANITIZE``; each maps to the exact flag set appended to
#: the compiler command line (and therefore to both cache keys)
SANITIZER_PRESETS = {
    "address": ("-fsanitize=address", "-fno-omit-frame-pointer", "-g"),
    "address,undefined": (
        "-fsanitize=address,undefined",
        "-fno-omit-frame-pointer",
        "-g",
    ),
    "undefined": ("-fsanitize=undefined", "-g"),
    "thread": ("-fsanitize=thread", "-g"),
}


class NativeUnavailable(RuntimeError):
    """No usable C compiler (or a compilation failed); callers should fall
    back to the Python engine or skip, never crash."""


def find_compiler() -> Optional[str]:
    """Absolute path of the first usable C compiler, or ``None``.

    ``$CC`` wins when set (even if broken — an explicit override should fail
    loudly rather than silently picking a different compiler).
    """
    override = os.environ.get("CC", "").strip()
    if override:
        return shutil.which(override) or override
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


@lru_cache(maxsize=None)
def openmp_flags(compiler: str) -> Tuple[str, ...]:
    """``("-fopenmp",)`` when the compiler links an OpenMP test unit, else ``()``.

    Probed once per compiler per process; without OpenMP the generated code
    still compiles (its ``#ifdef _OPENMP`` fallback runs single-threaded).
    """
    probe = (
        "#include <omp.h>\n"
        "double repro_probe(void) { return omp_get_wtime(); }\n"
    )
    with tempfile.TemporaryDirectory(prefix="repro-native-probe-") as workdir:
        source = Path(workdir) / "probe.c"
        output = Path(workdir) / "probe.so"
        source.write_text(probe)
        command = [compiler, *BASE_FLAGS, "-fopenmp", str(source), "-o", str(output), "-lm"]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=60.0
            )
        except (OSError, subprocess.TimeoutExpired):
            return ()
        return ("-fopenmp",) if result.returncode == 0 else ()


def native_available() -> bool:
    """True when a C compiler exists (the test suite's skip condition)."""
    return find_compiler() is not None


def extra_compile_flags() -> Tuple[str, ...]:
    """Process-wide extra flags from ``$REPRO_NATIVE_FLAGS`` (whitespace-split).

    Applied after any per-call ``extra_flags``, so the environment can
    override a harness's choice.  Like every flag, they are part of the
    cache digest: flipping the variable recompiles instead of serving a
    stale shared object.
    """
    raw = os.environ.get("REPRO_NATIVE_FLAGS", "").strip()
    return tuple(raw.split()) if raw else ()


def sanitize_flags(sanitize: Optional[str]) -> Tuple[str, ...]:
    """The compiler flags of a sanitizer preset (``()`` for ``None``/``""``).

    ``sanitize`` must be a :data:`SANITIZER_PRESETS` key —
    ``"address"``, ``"address,undefined"``, ``"undefined"`` or ``"thread"``
    — so a typo raises here instead of silently compiling uninstrumented
    code.  ASan libraries generally cannot ``dlopen`` into an
    uninstrumented interpreter; CI preloads ``libasan`` for that
    (``LD_PRELOAD=$(gcc -print-file-name=libasan.so)``), while UBSan works
    in-process without ceremony.
    """
    if not sanitize:
        return ()
    spec = str(sanitize).strip()
    try:
        return SANITIZER_PRESETS[spec]
    except KeyError:
        raise ValueError(
            f"unknown sanitizer preset {spec!r}; "
            f"choose one of {sorted(SANITIZER_PRESETS)}"
        ) from None


def default_sanitize() -> Optional[str]:
    """The process-wide sanitizer preset from ``$REPRO_NATIVE_SANITIZE``.

    Empty/unset means no sanitizer.  Like every flag source, the resolved
    preset lands in both cache keys, so flipping the variable recompiles
    instead of serving a stale uninstrumented library.
    """
    raw = os.environ.get("REPRO_NATIVE_SANITIZE", "").strip()
    return raw or None


def sanitize_supported(sanitize: str) -> bool:
    """True when the compiler builds a trivial unit under the preset.

    The ASan/UBSan CI smoke gates on this the way the sweep gates optional
    flag axes on :func:`flags_supported`; the probe object lands in the
    normal on-disk cache, making repeated probes free.
    """
    probe = "double repro_sanitize_probe(void) { return 1.0; }\n"
    try:
        compile_shared_library(probe, tag="sanprobe", sanitize=sanitize)
    except (NativeUnavailable, ValueError):
        return False
    return True


def flags_supported(extra_flags: Sequence[str]) -> bool:
    """True when the compiler accepts ``extra_flags`` on a trivial unit.

    The conformance sweep probes optional axis values (``-march=native``)
    with this before enumerating cells, so an older compiler shrinks the
    axis instead of failing the sweep.  The probe object lands in the
    normal on-disk cache, making repeated probes free.
    """
    probe = "double repro_flags_probe(void) { return 1.0; }\n"
    try:
        compile_shared_library(probe, tag="flagprobe", extra_flags=tuple(extra_flags))
    except NativeUnavailable:
        return False
    return True


def cache_dir() -> Path:
    """The on-disk compilation cache (``$REPRO_NATIVE_CACHE`` overrides)."""
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def source_digest(source: str, command_tail: Tuple[str, ...]) -> str:
    """SHA-256 of the source plus the compiler invocation that builds it."""
    payload = "\x00".join((source, *command_tail))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compile_shared_library(
    source: str,
    tag: str = "collapsed",
    extra_flags: Sequence[str] = (),
    sanitize: Optional[str] = None,
) -> Path:
    """Compile a translation unit to a cached shared library; return its path.

    A cache hit (same source, same compiler, same flags — ``extra_flags``,
    ``sanitize`` and ``$REPRO_NATIVE_FLAGS`` included) returns the existing
    ``.so`` without running the compiler; any flag change produces a
    different digest and therefore a fresh compilation (pinned by
    ``tests/native/test_compiler.py``).  ``sanitize`` names a
    :data:`SANITIZER_PRESETS` entry whose flags join the command line —
    since the digest covers the full command, sanitized and plain builds of
    the same source never collide in the cache.  Raises
    :class:`NativeUnavailable` when no compiler is found or the compilation
    fails (with the compiler's stderr in the message).
    """
    compiler = find_compiler()
    if compiler is None:
        raise NativeUnavailable(
            "no C compiler found (tried $CC, cc, gcc, clang); install one or use "
            "the Python engine backend"
        )
    flags = (
        BASE_FLAGS
        + openmp_flags(compiler)
        + tuple(extra_flags)
        + sanitize_flags(sanitize)
        + extra_compile_flags()
    )
    digest = source_digest(source, (compiler,) + flags)
    directory = cache_dir()
    library = directory / f"{tag}-{digest[:16]}.so"
    if library.exists():
        return library

    directory.mkdir(parents=True, exist_ok=True)
    c_file = directory / f"{tag}-{digest[:16]}.c"
    c_file.write_text(source)
    # compile to a temporary name and publish atomically, so concurrent
    # processes racing on the same digest never load a half-written library
    scratch = directory / f".{tag}-{digest[:16]}-{os.getpid()}.so"
    command = [compiler, *flags, str(c_file), "-o", str(scratch), "-lm"]
    try:
        result = subprocess.run(command, capture_output=True, text=True, timeout=300.0)
    except (OSError, subprocess.TimeoutExpired) as error:
        raise NativeUnavailable(f"C compiler failed to run: {error}") from error
    if result.returncode != 0:
        scratch.unlink(missing_ok=True)
        raise NativeUnavailable(
            f"compilation failed ({' '.join(command)}):\n{result.stderr.strip()}"
        )
    os.replace(scratch, library)
    return library


def clear_native_cache() -> int:
    """Delete every cached source/library pair; returns the file count."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for path in directory.iterdir():
            if path.suffix in (".c", ".so"):
                path.unlink(missing_ok=True)
                removed += 1
    return removed
