"""Unranking: inverting ranking polynomials (Section IV of the paper).

Given the ranking polynomial ``r(i1, ..., ic)`` of the collapsed loops and a
value ``pc`` of the collapsed iterator, the original indices are recovered
one by one, outermost first.  For index ``i_k`` the univariate equation

    r(i1, ..., i_{k-1}, x, lexmin_{k+1}, ..., lexmin_c) - pc = 0

is solved symbolically (degree <= 4, Section IV-B) and the *convenient* root
— the one whose floor reproduces the correct index — is selected by
validation on a sample instantiation, mirroring the paper's ``⌊x(1)⌋ = 0``
criterion.  The innermost index always appears linearly, so its recovery is
an exact polynomial expression (Section IV-A's final step).

Two robustness mechanisms extend the paper's scheme without changing it:

* a *guarded floor* (seed-then-correct): the floating-point evaluation of
  the closed-form root is only a **seed**.  The bracket property
  ``r(..., i_k, lexmins) <= pc < r(..., i_k + 1, lexmins)`` is re-checked in
  exact integer arithmetic — the bracket polynomial times its coefficient
  denominator LCM has integer coefficients, so ``r(x) <= pc`` becomes the
  exact comparison ``num(x) <= pc * den`` over Python big ints — and any
  float miss is corrected by an exact bisection over the window the seed
  check leaves open.  A correct seed costs two integer evaluations; a miss
  costs O(log error).  The recovery is therefore exact at *any* magnitude,
  with no float-trust cliff;
* an *exact bisection fallback* for levels whose equation degree exceeds 4
  (outside the paper's scope), whose symbolic root cannot be validated, or
  whose float seed is non-finite (degenerate branch, overflow).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir import LoopNest, enumerate_iterations
from ..polyhedra import AffineExpr
from ..symbolic import Expr, Polynomial, UnivariatePolynomial
from ..symbolic.solve import SolveError, solve_univariate_symbolic
from .ranking import RankingPolynomial

#: Tolerance added before flooring the real part of a closed-form root; the
#: exact bracket correction repairs any residual off-by-one.  This is the
#: single source of truth for every floor site — the scalar path here, the
#: batch path (``repro.core.batch``), and both code generators
#: (``repro.core.codegen_python``, ``repro.core.codegen_c``) import it, so
#: the tolerance can never desynchronize across backends.
FLOOR_EPSILON = 1e-9


class UnrankingError(ValueError):
    """Raised when no valid recovery can be constructed for some index."""


@dataclass(frozen=True)
class IndexRecovery:
    """How one original index is recovered from ``pc`` and the outer indices."""

    level: int
    iterator: str
    method: str                      # "symbolic", "linear" or "bisection"
    expression: Optional[Expr]       # closed-form root (None for bisection)
    bracket: Polynomial              # rank of the first iteration with prefix (i1..i_{k-1}, x)
    lower: AffineExpr                # loop lower bound (affine in outer iterators)
    upper: AffineExpr                # loop upper bound, exclusive
    degree: int
    #: denominator-cleared bracket: ``bracket == bracket_numerator / bracket_denominator``
    #: with integer coefficients only — ``r(x) <= pc`` is evaluated as the
    #: exact integer comparison ``bracket_numerator(x) <= pc * bracket_denominator``
    #: by every backend (derived in ``__post_init__``; both fields pickle with
    #: the dataclass, so engine workers never re-derive them)
    bracket_numerator: Optional[Polynomial] = None
    bracket_denominator: int = 0

    def __post_init__(self) -> None:
        if self.bracket_numerator is None:
            numerator, denominator = self.bracket.integer_form()
            object.__setattr__(self, "bracket_numerator", numerator)
            object.__setattr__(self, "bracket_denominator", denominator)

    def describe(self) -> str:
        if self.method == "bisection":
            return f"{self.iterator} = bisect(r - pc)  [degree {self.degree}]"
        return f"{self.iterator} = floor(Re({self.expression}))"


@dataclass(frozen=True)
class UnrankingFunction:
    """The complete index-recovery function of a collapsed loop nest."""

    nest: LoopNest
    depth: int
    ranking: RankingPolynomial
    recoveries: Tuple[IndexRecovery, ...]
    pc_name: str = "pc"
    guard: bool = True

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    def recover(self, pc: int, parameter_values: Mapping[str, int]) -> Tuple[int, ...]:
        """Original indices of the iteration of rank ``pc`` (1-based)."""
        if pc < 1:
            raise ValueError(f"pc must be >= 1, got {pc}")
        environment: Dict[str, int] = {name: int(v) for name, v in parameter_values.items()}
        indices: List[int] = []
        for recovery in self.recoveries:
            value = self._recover_level(recovery, pc, environment)
            environment[recovery.iterator] = value
            indices.append(value)
        return tuple(indices)

    def _recover_level(self, recovery: IndexRecovery, pc: int, environment: Dict[str, int]) -> int:
        lower = math.ceil(recovery.lower.evaluate(environment))
        upper = math.ceil(recovery.upper.evaluate(environment)) - 1  # inclusive
        if recovery.method == "bisection" or recovery.expression is None:
            return self._bisect(recovery, pc, environment, lower, upper)
        assignment = dict(environment)
        assignment[self.pc_name] = pc
        try:
            root = recovery.expression.evaluate(assignment)
            value = math.floor(root.real + FLOOR_EPSILON)
        except (ZeroDivisionError, OverflowError, ValueError):
            # the chosen branch degenerates (division by zero) or the float
            # evaluation leaves the finite range — the exact search still
            # recovers the right index
            return self._bisect(recovery, pc, environment, lower, upper)
        if self.guard:
            value = self._corrected(recovery, pc, environment, value, lower, upper)
        return value

    def _bracket_num(self, recovery: IndexRecovery, environment: Mapping[str, int], x: int) -> int:
        """Exact integer value of the denominator-cleared bracket at ``x``."""
        assignment = dict(environment)
        assignment[recovery.iterator] = x
        return recovery.bracket_numerator.evaluate_int(assignment)

    def _corrected(
        self,
        recovery: IndexRecovery,
        pc: int,
        environment: Mapping[str, int],
        seed: int,
        lower: int,
        upper: int,
    ) -> int:
        """Exact seed-then-correct: validate the float ``seed`` against the
        integer bracket ``num(x) <= pc * den < num(x + 1)`` and, on a miss,
        bisect the window the check leaves open.

        A correct seed returns after two exact evaluations; a seed off by
        ``e`` costs ``O(log)`` evaluations — bounded, unlike a linear walk.
        """
        if lower > upper:  # degenerate empty range: preserve the clamp
            return min(max(seed, lower), upper)
        rank = pc * recovery.bracket_denominator
        lo, hi = lower, upper
        value = min(max(seed, lower), upper)
        if self._bracket_num(recovery, environment, value) <= rank:
            if value >= upper or self._bracket_num(recovery, environment, value + 1) > rank:
                return value
            lo = value  # seed too low: the true index lies in [value + 1, upper]
        else:
            hi = value - 1  # seed too high: the true index lies in [lower, value - 1]
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._bracket_num(recovery, environment, mid) <= rank:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _bisect(
        self,
        recovery: IndexRecovery,
        pc: int,
        environment: Mapping[str, int],
        lower: int,
        upper: int,
    ) -> int:
        """Largest index with ``r(prefix, x, lexmins) <= pc`` by exact bisection."""
        if lower > upper:
            raise UnrankingError(
                f"empty range for iterator {recovery.iterator!r} while unranking pc={pc}"
            )
        rank = pc * recovery.bracket_denominator
        lo, hi = lower, upper
        if self._bracket_num(recovery, environment, lo) > rank:
            raise UnrankingError(
                f"pc={pc} is below the rank of the first iteration of {recovery.iterator!r}"
            )
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._bracket_num(recovery, environment, mid) <= rank:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # ------------------------------------------------------------------ #
    # introspection / validation
    # ------------------------------------------------------------------ #
    def uses_only_closed_forms(self) -> bool:
        """True when every index has a closed-form (paper-style) recovery."""
        return all(r.method in ("symbolic", "linear") for r in self.recoveries)

    def validate(self, parameter_values: Mapping[str, int]) -> bool:
        """Full round-trip check: unrank(rank(it)) == it for every iteration."""
        for expected_rank, indices in enumerate(
            enumerate_iterations(self.nest, parameter_values, self.depth), start=1
        ):
            if self.recover(expected_rank, parameter_values) != indices:
                return False
        return True

    def describe(self) -> str:
        lines = [f"unranking of the {self.depth} outer loops of {self.nest.name!r}:"]
        lines.extend("  " + recovery.describe() for recovery in self.recoveries)
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# construction
# ---------------------------------------------------------------------- #
def _counts_are_consistent(ranking: RankingPolynomial, values: Mapping[str, int]) -> bool:
    """Does the ranking polynomial's total match the executed iteration count?"""
    try:
        counted = ranking.total_iterations(values)
    except ValueError:
        return False
    enumerated = sum(1 for _ in enumerate_iterations(ranking.nest, values, ranking.depth))
    return counted == enumerated


def _default_sample_parameters(ranking: RankingPolynomial) -> Dict[str, int]:
    """Pick parameter values that make the sample domain small but non-empty.

    Uniform assignments are tried first; if the domain stays empty or the
    model degenerates for them (e.g. a pivot parameter ``K`` that must stay
    smaller than the size ``N``, or a wavefront extent that must stay smaller
    than the data size), combinations of a few small candidate values are
    explored.  Candidates on which the ranking count disagrees with the
    executed count are rejected, so root selection always happens on a
    well-formed instantiation.
    """
    from itertools import product

    nest, depth = ranking.nest, ranking.depth
    parameters = list(nest.parameters)

    def is_usable(candidate: Dict[str, int]) -> bool:
        try:
            non_empty = next(iter(enumerate_iterations(nest, candidate, depth)), None) is not None
        except Exception:
            return False
        return non_empty and _counts_are_consistent(ranking, candidate)

    for size in (8, 10, 12, 16, 24):
        candidate = {name: size for name in parameters}
        if is_usable(candidate):
            return candidate
    candidates = (2, 3, 5, 8, 12, 0)
    for combination in product(candidates, repeat=len(parameters)):
        candidate = dict(zip(parameters, combination))
        if is_usable(candidate):
            return candidate
    raise UnrankingError(
        f"could not find sample parameter values giving a non-empty, non-degenerate domain for "
        f"{nest.name!r}; pass sample_parameters explicitly"
    )


def _select_root(
    roots: Sequence[Expr],
    ranking: RankingPolynomial,
    level: int,
    sample_parameters: Mapping[str, int],
    pc_name: str,
) -> Optional[Expr]:
    """Pick the root whose floor recovers the level's index on every sample iteration.

    This generalises the paper's criterion (evaluate the roots at ``pc = 1``
    and keep the one equal to the first index value) to a whole-domain check,
    which also weeds out roots that only coincide at the first iteration.
    """
    iterations = list(enumerate_iterations(ranking.nest, sample_parameters, ranking.depth))
    if not iterations:
        return None
    survivors = list(roots)
    for pc, indices in enumerate(iterations, start=1):
        if not survivors:
            break
        expected = indices[level]
        assignment = {name: int(v) for name, v in sample_parameters.items()}
        assignment.update(dict(zip(ranking.iterators[:level], indices[:level])))
        assignment[pc_name] = pc
        still_alive = []
        for root in survivors:
            try:
                value = root.evaluate(assignment)
            except ZeroDivisionError:
                continue
            if abs(value.imag) > 1e-6:
                continue
            if math.floor(value.real + FLOOR_EPSILON) == expected:
                still_alive.append(root)
        survivors = still_alive
    return survivors[0] if survivors else None


def build_unranking(
    ranking: RankingPolynomial,
    sample_parameters: Optional[Mapping[str, int]] = None,
    pc_name: str = "pc",
    guard: bool = True,
    allow_bisection_fallback: bool = True,
) -> UnrankingFunction:
    """Construct the index-recovery function for a ranking polynomial.

    ``sample_parameters`` are the concrete sizes used to select the
    convenient symbolic root (and to cross-check it); they default to a small
    non-empty instantiation.  When ``allow_bisection_fallback`` is ``False``
    the construction fails, like the paper's method, for any level whose
    equation degree exceeds 4 or whose symbolic root cannot be validated.
    """
    nest = ranking.nest
    depth = ranking.depth
    if pc_name in nest.iterators or pc_name in nest.parameters:
        raise UnrankingError(
            f"the collapsed iterator name {pc_name!r} clashes with the nest's symbols; "
            "pass a different pc_name"
        )
    sample = dict(sample_parameters) if sample_parameters is not None else _default_sample_parameters(ranking)

    # The Ehrhart/ranking construction (like the paper's) assumes every loop of
    # the nest keeps a non-negative range throughout the domain; nests
    # violating that (an inner range whose closed-form length goes negative
    # for some outer indices) would yield a wrong trip count.  Detect it on
    # the sample instantiation — and on a scaled-up copy of it, since the
    # degeneracy often only appears at larger sizes — and fail loudly instead
    # of mis-iterating.
    for values in (sample, {name: value + 5 for name, value in sample.items()}):
        if sum(1 for _ in enumerate_iterations(nest, values, depth)) == 0:
            continue
        if not _counts_are_consistent(ranking, values):
            raise UnrankingError(
                f"the ranking polynomial of {nest.name!r} does not count the executed iterations "
                f"for {values}; some inner loop range becomes negative inside the domain, which "
                "the affine loop model of Fig. 5 (and this collapser) does not support"
            )

    bounds = nest.bounds()[:depth]
    recoveries: List[IndexRecovery] = []
    for level, (iterator, lower, upper) in enumerate(bounds):
        bracket = ranking.partial_rank_polynomial(level + 1)
        equation = bracket - Polynomial.variable(pc_name)
        univariate = UnivariatePolynomial.from_polynomial(equation, iterator)
        degree = univariate.degree

        expression: Optional[Expr] = None
        method = "bisection"
        if degree == 1:
            method = "linear"
        elif degree <= 4:
            method = "symbolic"

        if method != "bisection":
            try:
                roots = solve_univariate_symbolic(univariate)
            except SolveError:
                roots = []
            expression = _select_root(roots, ranking, level, sample, pc_name)
            if expression is None:
                method = "bisection"

        if method == "bisection" and not allow_bisection_fallback:
            raise UnrankingError(
                f"cannot build a closed-form recovery for iterator {iterator!r} "
                f"(equation degree {degree}); the paper's method requires degree <= 4"
            )

        recoveries.append(
            IndexRecovery(
                level=level,
                iterator=iterator,
                method=method,
                expression=expression,
                bracket=bracket,
                lower=lower,
                upper=upper,
                degree=degree,
            )
        )

    return UnrankingFunction(
        nest=nest,
        depth=depth,
        ranking=ranking,
        recoveries=tuple(recoveries),
        pc_name=pc_name,
        guard=guard,
    )
