"""Index-recovery strategies and their cost accounting (Section V).

Recovering the original indices from ``pc`` through the closed-form roots
involves square/cube roots, floors and floating-point (complex) arithmetic,
which would be paid at *every* iteration if done naively (Fig. 3).  The
paper's remedy (Fig. 4 and Section V) is to pay the costly recovery only
once per thread — or once per chunk of the OpenMP schedule — and to obtain
the following indices by replaying the original loop-nest incrementation
(the :class:`~repro.ir.iteration.Odometer`).

This module implements both strategies over a :class:`CollapsedLoop` and
counts how many costly recoveries / cheap increments each one performs.
Those counters feed the Figure 10 overhead experiment and the recovery
ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Mapping, Optional, Tuple

from ..ir import Odometer
from .collapse import CollapsedLoop

#: the index-recovery back ends selectable throughout the execution layers
RECOVERY_BACKENDS = ("symbolic", "compiled")


def resolve_recovery_backend(recovery: str) -> str:
    """Validate a ``recovery=`` argument; the single source of the error text."""
    if recovery not in RECOVERY_BACKENDS:
        raise ValueError(
            f"unknown recovery back end {recovery!r}; expected one of {RECOVERY_BACKENDS}"
        )
    return recovery


def chunk_iterator_factory(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    recovery: str = "symbolic",
    strategy: "RecoveryStrategy" = None,
) -> Callable[[int, int], Iterator[Tuple[int, ...]]]:
    """One chunk-walking function per recovery back end.

    Returns ``fn(first_pc, last_pc)`` yielding the original index tuples of
    that chunk.  ``"symbolic"`` walks it with the paper's scalar scheme
    under ``strategy`` (default ``FIRST_THEN_INCREMENT``); ``"compiled"``
    recovers each chunk as one vectorized batch (:mod:`repro.core.batch`,
    resolved through the memo cache once, here, not per chunk).  This is the
    shared dispatch behind every ``recovery=`` switch in the execution
    layers.
    """
    resolve_recovery_backend(recovery)
    if recovery == "compiled":
        from .batch import batch_recovery  # deferred: keeps NumPy optional at import

        recoverer = batch_recovery(collapsed)
        return lambda first_pc, last_pc: recoverer.iterate(first_pc, last_pc, parameter_values)
    strategy = strategy if strategy is not None else RecoveryStrategy.FIRST_THEN_INCREMENT
    return lambda first_pc, last_pc: iterate_chunk(
        collapsed, first_pc, last_pc, parameter_values, strategy
    )


class RecoveryStrategy(enum.Enum):
    """How the original indices are obtained inside one chunk of iterations."""

    #: Evaluate the closed-form roots at every iteration (Fig. 3).
    PER_ITERATION = "per_iteration"
    #: Evaluate them once at the first iteration of the chunk, then increment
    #: like the original loop nest (Fig. 4 / Section V).
    FIRST_THEN_INCREMENT = "first_then_increment"


@dataclass
class RecoveryStats:
    """Cost counters accumulated while walking chunks of a collapsed loop."""

    costly_recoveries: int = 0
    increments: int = 0
    iterations: int = 0

    def merge(self, other: "RecoveryStats") -> "RecoveryStats":
        return RecoveryStats(
            costly_recoveries=self.costly_recoveries + other.costly_recoveries,
            increments=self.increments + other.increments,
            iterations=self.iterations + other.iterations,
        )


def recover_range(
    collapsed: CollapsedLoop,
    first_pc: int,
    last_pc: int,
    parameter_values: Mapping[str, int],
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    stats: Optional[RecoveryStats] = None,
) -> List[Tuple[int, ...]]:
    """Materialise the index tuples of the collapsed iterations ``first_pc..last_pc``."""
    return list(
        iterate_chunk(collapsed, first_pc, last_pc, parameter_values, strategy, stats)
    )


def iterate_chunk(
    collapsed: CollapsedLoop,
    first_pc: int,
    last_pc: int,
    parameter_values: Mapping[str, int],
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    stats: Optional[RecoveryStats] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield the original index tuples for the chunk ``[first_pc, last_pc]``.

    ``first_pc``/``last_pc`` are 1-based and inclusive, exactly the bounds a
    static OpenMP schedule hands to one thread.  With
    :attr:`RecoveryStrategy.FIRST_THEN_INCREMENT` only the first iteration of
    the chunk performs the costly closed-form recovery; every following
    iteration is obtained with the odometer incrementation, which is the
    scheme of Fig. 4.
    """
    if last_pc < first_pc:
        return
    stats = stats if stats is not None else RecoveryStats()

    if strategy is RecoveryStrategy.PER_ITERATION:
        for pc in range(first_pc, last_pc + 1):
            stats.costly_recoveries += 1
            stats.iterations += 1
            yield collapsed.recover_indices(pc, parameter_values)
        return

    odometer = Odometer(collapsed.nest, parameter_values, collapsed.depth)
    current = collapsed.recover_indices(first_pc, parameter_values)
    stats.costly_recoveries += 1
    stats.iterations += 1
    yield current
    for _ in range(first_pc + 1, last_pc + 1):
        following = odometer.increment(current)
        if following is None:
            raise ValueError(
                f"chunk [{first_pc}, {last_pc}] runs past the end of the collapsed loop"
            )
        stats.increments += 1
        stats.iterations += 1
        current = following
        yield current
