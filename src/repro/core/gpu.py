"""GPU-warp execution scheme for collapsed loops (Section VI-B).

On a GPU, consecutive collapsed iterations are distributed over the ``W``
threads of a warp so that memory accesses coalesce: thread ``t`` executes
the iterations ``pc = t+1, t+1+W, t+1+2W, ...``.  After its single costly
recovery, each thread obtains its next index tuple by applying the original
loop-nest incrementation ``W`` times (the paper's
``for (inc = 0; inc < W; inc++) Incrementation(Indices);``).

:func:`warp_schedule` reproduces the scheme and returns, per thread, the
sequence of index tuples it executes together with the cost counters; the
tests check that the union of all threads' work is exactly the original
iteration set and that each thread paid exactly one costly recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Tuple

from ..ir import Odometer
from .collapse import CollapsedLoop
from .recovery import RecoveryStats


@dataclass
class WarpExecution:
    """The work of one GPU thread within a warp."""

    thread: int
    warp_size: int
    iterations: List[Tuple[int, ...]] = field(default_factory=list)
    stats: RecoveryStats = field(default_factory=RecoveryStats)


def warp_schedule(
    collapsed: CollapsedLoop,
    parameter_values: Mapping[str, int],
    warp_size: int,
    first_pc: int = 1,
    last_pc: int | None = None,
) -> List[WarpExecution]:
    """Simulate the Section VI-B scheme over ``pc`` in ``[first_pc, last_pc]``.

    Returns one :class:`WarpExecution` per warp thread.  Thread ``t`` starts
    at ``pc = first_pc + t`` (one costly recovery) and then advances by
    ``warp_size`` odometer increments between iterations.
    """
    if warp_size < 1:
        raise ValueError("warp_size must be at least 1")
    total = collapsed.total_iterations(parameter_values)
    last_pc = total if last_pc is None else min(last_pc, total)

    odometer = Odometer(collapsed.nest, parameter_values, collapsed.depth)
    executions: List[WarpExecution] = []
    for thread in range(warp_size):
        execution = WarpExecution(thread=thread, warp_size=warp_size)
        pc = first_pc + thread
        if pc <= last_pc:
            current = collapsed.recover_indices(pc, parameter_values)
            execution.stats.costly_recoveries += 1
            while pc <= last_pc:
                execution.iterations.append(current)
                execution.stats.iterations += 1
                pc += warp_size
                if pc <= last_pc:
                    advanced = odometer.advance(current, warp_size)
                    execution.stats.increments += warp_size
                    if advanced is None:
                        raise ValueError("warp stride ran past the end of the collapsed loop")
                    current = advanced
        executions.append(execution)
    return executions
