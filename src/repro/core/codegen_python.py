"""Executable Python code generation for collapsed loops.

The paper's tool is a C source-to-source translator; the Python equivalent
generated here serves two purposes:

* it demonstrates that the recovery expressions really are *generated code*
  (plain arithmetic on ``pc`` — no reference back to the symbolic engine),
* it gives the executors and the test-suite a fast, self-contained kernel
  driver whose behaviour can be compared against the original nest.

Two variants mirror the paper's Figures 3 and 4:

* ``PER_ITERATION`` — the closed-form recovery is evaluated at every ``pc``;
* ``FIRST_THEN_INCREMENT`` — the recovery runs once for the first iteration
  of the chunk a thread receives, after which the original loop-nest
  incrementation produces the following index tuples.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, List, Optional

from .collapse import CollapsedLoop
from .recovery import RecoveryStrategy


class CodegenError(ValueError):
    """Raised when no closed-form code can be generated for a collapsed loop."""


def _indent(lines: List[str], spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line else line for line in lines)


def _recovery_lines(collapsed: CollapsedLoop, guard: bool) -> List[str]:
    """Python statements recovering every original index from ``pc``."""
    lines: List[str] = []
    for recovery in collapsed.unranking.recoveries:
        if recovery.expression is None:
            raise CodegenError(
                f"iterator {recovery.iterator!r} has no closed-form recovery "
                "(bisection fallback); Python code generation follows the paper and "
                "only supports closed forms"
            )
        iterator = recovery.iterator
        lines.append(f"{iterator} = math.floor(({recovery.expression.to_python()}).real + 1e-9)")
        if guard:
            bracket = recovery.bracket.to_python_source()
            lower = recovery.lower.to_polynomial().to_python_source()
            lines.append(f"_low_{iterator} = math.ceil({lower})")
            lines.append(f"{iterator} = max({iterator}, _low_{iterator})")
            lines.append(f"while {iterator} > _low_{iterator} and ({bracket}) > pc:")
            lines.append(f"    {iterator} -= 1")
            lines.append(
                f"while ({_shifted_bracket(bracket, iterator)}) <= pc:"
            )
            lines.append(f"    {iterator} += 1")
    return lines


def _shifted_bracket(bracket_source: str, iterator: str) -> str:
    """The bracket source with ``iterator`` replaced by ``(iterator + 1)``.

    Generated inline so the guard needs no helper function in the emitted
    module.  A plain token substitution is safe because iterator names are
    valid identifiers and the polynomial printer separates tokens with
    spaces and parentheses.
    """
    import re

    return re.sub(rf"\b{re.escape(iterator)}\b", f"({iterator} + 1)", bracket_source)


def _increment_lines(collapsed: CollapsedLoop) -> List[str]:
    """Python statements advancing the index tuple like the original nest.

    Generalisation of Fig. 4's ``j++; if (j >= N) {{ i++; j = i+1; }}`` to any
    collapse depth: bump the innermost index and carry outwards, re-evaluating
    the affine bounds of the inner loops after each carry.
    """
    bounds = collapsed.nest.bounds()[: collapsed.depth]
    lines: List[str] = []
    lines.append(f"{bounds[-1][0]} += 1")

    def carry(level: int, indent: str) -> None:
        iterator, lower, upper = bounds[level]
        upper_src = upper.to_polynomial().to_python_source()
        lower_src = lower.to_polynomial().to_python_source()
        outer_iterator = bounds[level - 1][0]
        lines.append(f"{indent}if {iterator} >= math.ceil({upper_src}):")
        lines.append(f"{indent}    {outer_iterator} += 1")
        if level - 1 >= 1:
            carry(level - 1, indent + "    ")
        lines.append(f"{indent}    {iterator} = math.ceil({lower_src})")

    if len(bounds) > 1:
        carry(len(bounds) - 1, "")
    return lines


def generate_python_source(
    collapsed: CollapsedLoop,
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    function_name: Optional[str] = None,
    guard: bool = True,
) -> str:
    """Render the collapsed loop as the source of a standalone Python function.

    The generated function has the signature::

        def <name>(body, <parameters...>, first_pc=1, last_pc=None) -> int

    It calls ``body(i1, ..., ic)`` for every collapsed iteration in
    ``[first_pc, last_pc]`` (1-based, inclusive; ``None`` means the full trip
    count) and returns the number of iterations executed — exactly the
    contract of one chunk of an OpenMP static schedule.
    """
    function_name = function_name or f"collapsed_{collapsed.nest.name}"
    parameter_list = "".join(f"{name}, " for name in collapsed.nest.parameters)
    iterators = ", ".join(collapsed.iterators)
    total_src = collapsed.total_polynomial.to_python_source()
    recovery = _recovery_lines(collapsed, guard)

    lines: List[str] = [
        f"def {function_name}(body, {parameter_list}first_pc=1, last_pc=None):",
        f'    """Collapsed form of the {collapsed.depth} outer loops of '
        f'{collapsed.nest.name!r} (auto-generated)."""',
        # the trip-count polynomial is integer-valued but its Python rendering
        # uses exact divisions evaluated in floating point; round, don't truncate
        f"    total = int(round({total_src}))",
        "    if last_pc is None:",
        "        last_pc = total",
        "    last_pc = min(last_pc, total)",
        "    executed = 0",
    ]

    if strategy is RecoveryStrategy.PER_ITERATION:
        lines.append("    for pc in range(first_pc, last_pc + 1):")
        lines.append(_indent(recovery, 8))
        lines.append(f"        body({iterators})")
        lines.append("        executed += 1")
        lines.append("    return executed")
    else:
        increment = _increment_lines(collapsed)
        lines.append("    pc = first_pc")
        lines.append("    first_iteration = 1")
        lines.append("    while pc <= last_pc:")
        lines.append("        if first_iteration:")
        lines.append(_indent(recovery, 12))
        lines.append("            first_iteration = 0")
        lines.append(f"        body({iterators})")
        lines.append("        executed += 1")
        lines.append("        pc += 1")
        lines.append("        if pc <= last_pc:")
        lines.append(_indent(increment, 12))
        lines.append("    return executed")
    return "\n".join(lines) + "\n"


def compile_collapsed_loop(
    collapsed: CollapsedLoop,
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    guard: bool = True,
) -> Callable:
    """Compile the generated source and return the resulting function object."""
    source = generate_python_source(collapsed, strategy, guard=guard)
    namespace = {"math": math, "cmath": cmath}
    exec(compile(source, f"<collapsed:{collapsed.nest.name}>", "exec"), namespace)
    return namespace[f"collapsed_{collapsed.nest.name}"]
