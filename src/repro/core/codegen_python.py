"""Executable Python code generation for collapsed loops.

The paper's tool is a C source-to-source translator; the Python equivalent
generated here serves two purposes:

* it demonstrates that the recovery expressions really are *generated code*
  (plain arithmetic on ``pc`` — no reference back to the symbolic engine),
* it gives the executors and the test-suite a fast, self-contained kernel
  driver whose behaviour can be compared against the original nest.

Two variants mirror the paper's Figures 3 and 4:

* ``PER_ITERATION`` — the closed-form recovery is evaluated at every ``pc``;
* ``FIRST_THEN_INCREMENT`` — the recovery runs once for the first iteration
  of the chunk a thread receives, after which the original loop-nest
  incrementation produces the following index tuples.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, List, Optional

from .collapse import CollapsedLoop
from .recovery import RecoveryStrategy
from .unranking import FLOOR_EPSILON


class CodegenError(ValueError):
    """Raised when no closed-form code can be generated for a collapsed loop."""


def _indent(lines: List[str], spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line else line for line in lines)


def _ceil_source(expr) -> str:
    """Python source of ``ceil(expr)`` for an affine bound, exact at any size.

    Denominator-cleared so the emitted arithmetic is pure ``int``:
    ``ceil(a / b) == -((-a) // b)`` for ``b > 0`` — a ``math.ceil`` over the
    float rendering would round once bound values pass 2^53.
    """
    numerator, denominator = expr.to_polynomial().integer_form()
    source = numerator.to_python_source()
    if denominator == 1:
        return f"({source})"
    return f"(-((-({source})) // {denominator}))"


def _recovery_lines(collapsed: CollapsedLoop, guard: bool) -> List[str]:
    """Python statements recovering every original index from ``pc``.

    The emitted guard is the same exact seed-then-correct scheme as the
    scalar unranker and the generated C: the float root (floored with the
    shared ``FLOOR_EPSILON``) seeds an exact integer bracket check over the
    denominator-cleared bracket polynomial — pure ``int`` arithmetic, so
    Python's big ints make it exact at any magnitude — and a miss bisects
    the window the check leaves open.  ``guard=False`` keeps the bare
    epsilon-padded floor (regression demonstrations only).
    """
    lines: List[str] = []
    for recovery in collapsed.unranking.recoveries:
        if recovery.expression is None:
            raise CodegenError(
                f"iterator {recovery.iterator!r} has no closed-form recovery "
                "(bisection fallback); Python code generation follows the paper and "
                "only supports closed forms"
            )
        it = recovery.iterator
        if not guard:
            lines.append(
                f"{it} = math.floor(({recovery.expression.to_python()}).real + {FLOOR_EPSILON!r})"
            )
            continue
        numerator = recovery.bracket_numerator.to_python_source()
        # a degenerate closed-form branch (division by zero) or a float
        # evaluation leaving the finite range routes to the exact bisection
        # below via a non-finite seed — the same classes the scalar
        # unranker's _recover_level catches
        lines.append("try:")
        lines.append(f"    _root_{it} = ({recovery.expression.to_python()}).real")
        lines.append("except (ZeroDivisionError, OverflowError, ValueError):")
        lines.append(f"    _root_{it} = math.inf")
        lines.append(f"_lo_{it} = {_ceil_source(recovery.lower)}")
        lines.append(f"_hi_{it} = {_ceil_source(recovery.upper)} - 1")
        lines.append(f"_rank_{it} = pc * {recovery.bracket_denominator}")
        lines.append(f"if math.isfinite(_root_{it}):")
        lines.append(f"    {it} = min(max(math.floor(_root_{it} + {FLOOR_EPSILON!r}), _lo_{it}), _hi_{it})")
        lines.append(f"    if ({numerator}) <= _rank_{it}:")
        lines.append(f"        _lo_{it} = {it}")
        lines.append(f"        if {it} >= _hi_{it} or ({_shifted_bracket(numerator, it)}) > _rank_{it}:")
        lines.append(f"            _hi_{it} = {it}")
        lines.append("    else:")
        lines.append(f"        _hi_{it} = {it} - 1")
        lines.append(f"while _lo_{it} < _hi_{it}:")
        lines.append(f"    {it} = (_lo_{it} + _hi_{it} + 1) // 2")
        lines.append(f"    if ({numerator}) <= _rank_{it}:")
        lines.append(f"        _lo_{it} = {it}")
        lines.append("    else:")
        lines.append(f"        _hi_{it} = {it} - 1")
        lines.append(f"{it} = _lo_{it}")
    return lines


def _shifted_bracket(bracket_source: str, iterator: str) -> str:
    """The bracket source with ``iterator`` replaced by ``(iterator + 1)``.

    Generated inline so the guard needs no helper function in the emitted
    module.  A plain token substitution is safe because iterator names are
    valid identifiers and the polynomial printer separates tokens with
    spaces and parentheses.
    """
    import re

    return re.sub(rf"\b{re.escape(iterator)}\b", f"({iterator} + 1)", bracket_source)


def _increment_lines(collapsed: CollapsedLoop) -> List[str]:
    """Python statements advancing the index tuple like the original nest.

    Generalisation of Fig. 4's ``j++; if (j >= N) {{ i++; j = i+1; }}`` to any
    collapse depth: bump the innermost index and carry outwards, re-evaluating
    the affine bounds of the inner loops after each carry.
    """
    bounds = collapsed.nest.bounds()[: collapsed.depth]
    lines: List[str] = []
    lines.append(f"{bounds[-1][0]} += 1")

    def carry(level: int, indent: str) -> None:
        iterator, lower, upper = bounds[level]
        outer_iterator = bounds[level - 1][0]
        # exact integer ceils: `x >= upper` over integers is `x >= ceil(upper)`
        lines.append(f"{indent}if {iterator} >= {_ceil_source(upper)}:")
        lines.append(f"{indent}    {outer_iterator} += 1")
        if level - 1 >= 1:
            carry(level - 1, indent + "    ")
        lines.append(f"{indent}    {iterator} = {_ceil_source(lower)}")

    if len(bounds) > 1:
        carry(len(bounds) - 1, "")
    return lines


def generate_python_source(
    collapsed: CollapsedLoop,
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    function_name: Optional[str] = None,
    guard: bool = True,
) -> str:
    """Render the collapsed loop as the source of a standalone Python function.

    The generated function has the signature::

        def <name>(body, <parameters...>, first_pc=1, last_pc=None) -> int

    It calls ``body(i1, ..., ic)`` for every collapsed iteration in
    ``[first_pc, last_pc]`` (1-based, inclusive; ``None`` means the full trip
    count) and returns the number of iterations executed — exactly the
    contract of one chunk of an OpenMP static schedule.
    """
    function_name = function_name or f"collapsed_{collapsed.nest.name}"
    parameter_list = "".join(f"{name}, " for name in collapsed.nest.parameters)
    iterators = ", ".join(collapsed.iterators)
    total_num, total_den = collapsed.total_polynomial.integer_form()
    total_src = total_num.to_python_source()
    if total_den != 1:
        total_src = f"({total_src}) // {total_den}"
    recovery = _recovery_lines(collapsed, guard)

    lines: List[str] = [
        f"def {function_name}(body, {parameter_list}first_pc=1, last_pc=None):",
        f'    """Collapsed form of the {collapsed.depth} outer loops of '
        f'{collapsed.nest.name!r} (auto-generated)."""',
        # the trip count is computed on the denominator-cleared integer form,
        # so it is exact Python-int arithmetic at any magnitude
        f"    total = {total_src}",
        "    if last_pc is None:",
        "        last_pc = total",
        "    last_pc = min(last_pc, total)",
        "    executed = 0",
    ]

    if strategy is RecoveryStrategy.PER_ITERATION:
        lines.append("    for pc in range(first_pc, last_pc + 1):")
        lines.append(_indent(recovery, 8))
        lines.append(f"        body({iterators})")
        lines.append("        executed += 1")
        lines.append("    return executed")
    else:
        increment = _increment_lines(collapsed)
        lines.append("    pc = first_pc")
        lines.append("    first_iteration = 1")
        lines.append("    while pc <= last_pc:")
        lines.append("        if first_iteration:")
        lines.append(_indent(recovery, 12))
        lines.append("            first_iteration = 0")
        lines.append(f"        body({iterators})")
        lines.append("        executed += 1")
        lines.append("        pc += 1")
        lines.append("        if pc <= last_pc:")
        lines.append(_indent(increment, 12))
        lines.append("    return executed")
    return "\n".join(lines) + "\n"


def compile_collapsed_loop(
    collapsed: CollapsedLoop,
    strategy: RecoveryStrategy = RecoveryStrategy.FIRST_THEN_INCREMENT,
    guard: bool = True,
) -> Callable:
    """Compile the generated source and return the resulting function object."""
    source = generate_python_source(collapsed, strategy, guard=guard)
    namespace = {"math": math, "cmath": cmath}
    exec(compile(source, f"<collapsed:{collapsed.nest.name}>", "exec"), namespace)
    return namespace[f"collapsed_{collapsed.nest.name}"]
