"""The end-to-end collapse transformation.

``collapse(nest, depth)`` bundles the whole pipeline of the paper:

1. check the preconditions (perfect nest with affine bounds — enforced by
   the IR — and, optionally, absence of carried dependences on the levels
   being collapsed),
2. build the ranking Ehrhart polynomial of the ``depth`` outer loops
   (Section III),
3. invert it into per-index recovery expressions (Section IV),
4. wrap everything into a :class:`CollapsedLoop`, the object the schedulers,
   code generators and executors consume.

The resulting single loop runs ``pc = 1 .. total`` and recovers
``(i1, ..., ic)`` from ``pc``; its iteration order is exactly the original
lexicographic order, which is what makes the transformation transparent to
the loop body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..ir import LoopNest, enumerate_iterations, may_carry_dependence
from ..symbolic import Polynomial
from .ranking import RankingPolynomial, ranking_polynomial
from .unranking import UnrankingFunction, build_unranking


class CollapseError(ValueError):
    """Raised when a nest cannot be collapsed at the requested depth."""


@dataclass(frozen=True)
class CollapsedLoop:
    """A collapsed (flattened) view of the ``depth`` outer loops of ``nest``."""

    nest: LoopNest
    depth: int
    ranking: RankingPolynomial
    unranking: UnrankingFunction
    pc_name: str = "pc"

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def iterators(self) -> Tuple[str, ...]:
        return self.nest.iterators[: self.depth]

    @property
    def total_polynomial(self) -> Polynomial:
        """Symbolic trip count of the collapsed loop (upper bound of ``pc``)."""
        return self.ranking.total

    def total_iterations(self, parameter_values: Mapping[str, int]) -> int:
        return self.ranking.total_iterations(parameter_values)

    def uses_only_closed_forms(self) -> bool:
        """True when every recovered index uses a paper-style closed form."""
        return self.unranking.uses_only_closed_forms()

    # ------------------------------------------------------------------ #
    # execution-order views
    # ------------------------------------------------------------------ #
    def recover_indices(self, pc: int, parameter_values: Mapping[str, int]) -> Tuple[int, ...]:
        """Original indices of the collapsed iteration ``pc`` (1-based)."""
        return self.unranking.recover(pc, parameter_values)

    def rank_of(self, indices, parameter_values: Mapping[str, int]) -> int:
        """Rank of an original iteration — the inverse of :meth:`recover_indices`."""
        return self.ranking.rank(indices, parameter_values)

    def iterations(self, parameter_values: Mapping[str, int]) -> Iterator[Tuple[int, ...]]:
        """Iterate the collapsed loop, recovering the indices at every ``pc``.

        This is the "costly recovery at every iteration" execution scheme
        (Fig. 3); the chunked schemes of Section V live in
        :mod:`repro.core.recovery`.
        """
        total = self.total_iterations(parameter_values)
        for pc in range(1, total + 1):
            yield self.recover_indices(pc, parameter_values)

    def validate(self, parameter_values: Mapping[str, int]) -> bool:
        """Semantic check: the collapsed order equals the original order."""
        original = list(enumerate_iterations(self.nest, parameter_values, self.depth))
        collapsed = list(self.iterations(parameter_values))
        return original == collapsed

    def describe(self) -> str:
        lines = [
            f"collapse of the {self.depth} outer loops of {self.nest.name!r}",
            f"  trip count: {self.total_polynomial}",
            f"  ranking   : {self.ranking.polynomial}",
        ]
        for recovery in self.unranking.recoveries:
            lines.append(f"  {recovery.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# memo cache
# ---------------------------------------------------------------------- #
# Building a CollapsedLoop is expensive (Faulhaber summation, symbolic root
# solving, sample-domain root selection), yet kernels, executors and
# benchmarks repeatedly collapse the *same* nest.  The cache is keyed by the
# structural identity of the nest plus every argument that influences the
# construction, so a hit returns the exact object an uncached call would
# have produced — and, through repro.core.batch's own memo, its compiled
# recoveries too.
_COLLAPSE_CACHE: Dict[tuple, CollapsedLoop] = {}
_COLLAPSE_CACHE_LIMIT = 256


def _collapse_cache_key(
    nest: LoopNest,
    depth: int,
    check_dependences: bool,
    sample_parameters: Optional[Mapping[str, int]],
    pc_name: str,
    guard: bool,
    allow_bisection_fallback: bool,
) -> tuple:
    return (
        nest.name,
        tuple((loop.iterator, loop.lower, loop.upper, loop.parallel) for loop in nest.loops),
        nest.statements,
        nest.parameters,
        depth,
        check_dependences,
        tuple(sorted(sample_parameters.items())) if sample_parameters is not None else None,
        pc_name,
        guard,
        allow_bisection_fallback,
    )


def clear_collapse_cache() -> None:
    """Drop every memoised :class:`CollapsedLoop` (mainly for tests)."""
    _COLLAPSE_CACHE.clear()


def collapse_cache_info() -> Dict[str, int]:
    """Size of the ``collapse()`` memo cache, for introspection and tests."""
    return {"entries": len(_COLLAPSE_CACHE), "limit": _COLLAPSE_CACHE_LIMIT}


def collapse(
    nest: LoopNest,
    depth: Optional[int] = None,
    *,
    check_dependences: bool = False,
    sample_parameters: Optional[Mapping[str, int]] = None,
    pc_name: str = "pc",
    guard: bool = True,
    allow_bisection_fallback: bool = True,
    use_cache: bool = True,
) -> CollapsedLoop:
    """Collapse the ``depth`` outermost loops of ``nest`` into a single loop.

    Parameters
    ----------
    nest:
        The perfect affine loop nest (Fig. 5 model).
    depth:
        Number of outer loops to collapse; defaults to the whole nest.  This
        is the argument of the OpenMP ``collapse(n)`` clause the paper
        extends to non-rectangular loops.
    check_dependences:
        When ``True``, run the polyhedral dependence test on the collapsed
        levels and refuse to collapse if a carried dependence may exist.
        (The paper relies on the parallelising compiler for this check.)
    sample_parameters:
        Concrete sizes used to select/validate the convenient symbolic roots.
    guard:
        Enable the exact-arithmetic bracket guard around the floating-point
        floor (recommended; see docs/recovery.md).
    allow_bisection_fallback:
        Allow levels whose inversion is outside the paper's degree-4 limit to
        fall back to exact bisection instead of failing.
    use_cache:
        Reuse the memoised result of a previous identical ``collapse()``
        (same bounds, statements, parameters and options).  The cache is what
        lets hot paths call ``collapse`` freely; pass ``False`` to force a
        fresh construction.
    """
    depth = nest.depth if depth is None else depth
    if not 1 <= depth <= nest.depth:
        raise CollapseError(f"collapse depth must be in 1..{nest.depth}, got {depth}")
    cache_key: Optional[tuple] = None
    if use_cache:
        cache_key = _collapse_cache_key(
            nest, depth, check_dependences, sample_parameters, pc_name, guard,
            allow_bisection_fallback,
        )
        cached = _COLLAPSE_CACHE.get(cache_key)
        if cached is not None:
            return cached
    if depth == 1:
        # collapsing one loop is the identity transformation, but it is still
        # useful to expose it uniformly (rank == pc == i1 - lower + 1)
        pass
    if check_dependences and may_carry_dependence(nest, depth):
        raise CollapseError(
            f"the {depth} outer loops of {nest.name!r} may carry a data dependence; "
            "collapsing them would not preserve the program's semantics"
        )
    ranking = ranking_polynomial(nest, depth)
    unranking = build_unranking(
        ranking,
        sample_parameters=sample_parameters,
        pc_name=pc_name,
        guard=guard,
        allow_bisection_fallback=allow_bisection_fallback,
    )
    collapsed = CollapsedLoop(
        nest=nest, depth=depth, ranking=ranking, unranking=unranking, pc_name=pc_name
    )
    if cache_key is not None:
        if len(_COLLAPSE_CACHE) >= _COLLAPSE_CACHE_LIMIT:
            _COLLAPSE_CACHE.pop(next(iter(_COLLAPSE_CACHE)))
        _COLLAPSE_CACHE[cache_key] = collapsed
    return collapsed
